//! Property-based tests for the workload space and sampling methods.

use mps_sampling::{
    BalancedRandomSampling, BenchmarkStratification, DrawnSample, Population, RandomSampling,
    Sampler, Workload, WorkloadSpace, WorkloadStratification,
};
use mps_stats::rng::Rng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rank_unrank_round_trip(b in 1usize..30, k in 1usize..7, seed in any::<u64>()) {
        let space = WorkloadSpace::new(b, k);
        let mut rng = Rng::new(seed);
        let r = rng.below_u128(space.population_size());
        let w = space.unrank(r);
        prop_assert_eq!(space.rank(&w), r);
        prop_assert_eq!(w.cores(), k);
        prop_assert!(w.benchmarks().iter().all(|&x| (x as usize) < b));
    }

    #[test]
    fn rank_is_order_preserving(b in 2usize..10, k in 1usize..5, seed in any::<u64>()) {
        let space = WorkloadSpace::new(b, k);
        let mut rng = Rng::new(seed);
        let r1 = rng.below_u128(space.population_size());
        let r2 = rng.below_u128(space.population_size());
        let w1 = space.unrank(r1);
        let w2 = space.unrank(r2);
        prop_assert_eq!(r1.cmp(&r2), w1.cmp(&w2));
    }

    #[test]
    fn workload_sorts_its_benchmarks(ids in prop::collection::vec(0u16..40, 1..9)) {
        let w = Workload::new(ids.clone());
        prop_assert!(w.benchmarks().windows(2).all(|p| p[0] <= p[1]));
        let counts = w.occurrence_counts(40);
        prop_assert_eq!(counts.iter().sum::<u32>() as usize, ids.len());
    }

    #[test]
    fn random_sampling_indices_in_range(
        w in 1usize..60,
        seed in any::<u64>(),
    ) {
        let pop = Population::full(6, 3);
        let mut rng = Rng::new(seed);
        let s = RandomSampling.draw(&pop, w, &mut rng);
        prop_assert_eq!(s.len(), w);
        prop_assert!(s.indices().iter().all(|&i| i < pop.len()));
    }

    #[test]
    fn balanced_sampling_occurrences_near_equal(
        w in 1usize..40,
        seed in any::<u64>(),
    ) {
        let b = 6;
        let k = 3;
        let pop = Population::full(b, k);
        let mut rng = Rng::new(seed);
        let s = BalancedRandomSampling.draw(&pop, w, &mut rng);
        prop_assert_eq!(s.len(), w);
        let mut occ = vec![0u32; b];
        for i in s.indices() {
            for &x in pop.workloads()[i].benchmarks() {
                occ[x as usize] += 1;
            }
        }
        let max = *occ.iter().max().unwrap();
        let min = *occ.iter().min().unwrap();
        prop_assert!(max - min <= 1, "occurrences {occ:?}");
        prop_assert_eq!(occ.iter().sum::<u32>() as usize, w * k);
    }

    #[test]
    fn benchmark_strata_partition(
        classes in prop::collection::vec(0usize..3, 5),
        seed in any::<u64>(),
    ) {
        let pop = Population::full(5, 3);
        let strat = BenchmarkStratification::new(classes);
        let strata = strat.strata_of(&pop);
        let mut seen = vec![false; pop.len()];
        for (_, members) in &strata {
            for &i in members {
                prop_assert!(!seen[i], "index {i} in two strata");
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // And sampling draws the requested count.
        let mut rng = Rng::new(seed);
        let s = strat.draw(&pop, 20, &mut rng);
        prop_assert_eq!(s.len(), 20);
        if let DrawnSample::Stratified(groups) = s {
            let total: f64 = groups.iter().map(|(w, _)| w).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        } else {
            prop_assert!(false, "benchmark stratification must stratify");
        }
    }

    #[test]
    fn workload_strata_partition_and_bounds(
        d in prop::collection::vec(-1.0f64..1.0, 30..300),
        tsd in 0.001f64..0.5,
        min_size in 1usize..40,
    ) {
        let ws = WorkloadStratification::build(&d, tsd, min_size);
        let sizes = ws.sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), d.len());
        // All strata except possibly the last respect the minimum size.
        for &s in &sizes[..sizes.len().saturating_sub(1)] {
            prop_assert!(s >= min_size, "{sizes:?}");
        }
    }

    #[test]
    fn stratified_draws_have_requested_size(
        d in prop::collection::vec(-1.0f64..1.0, 126),
        w in 1usize..126,
        seed in any::<u64>(),
    ) {
        let pop = Population::full(6, 4); // 126 workloads
        let ws = WorkloadStratification::build(&d, 0.05, 10);
        let mut rng = Rng::new(seed);
        let s = ws.draw(&pop, w, &mut rng);
        prop_assert_eq!(s.len(), w);
        prop_assert!(s.indices().iter().all(|&i| i < 126));
    }
}

//! The workload population.
//!
//! A workload is a size-`K` multiset over `B` benchmarks (cores are
//! identical and interchangeable, and a benchmark may be replicated), so
//! the population has `C(B+K−1, K)` members (paper Section II). The
//! population is totally ordered (lexicographic on the sorted benchmark
//! vector) and this module provides O(B·K) *rank/unrank* between workloads
//! and their positions, which gives exact uniform sampling even for
//! populations too large to materialize (8 cores: 4.3M workloads; the
//! formula scales far beyond).

use mps_stats::combinatorics::{multiset_coefficient, multisets};
use mps_stats::rng::Rng;

/// One multiprogrammed workload: a sorted multiset of benchmark ids.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Workload(Vec<u16>);

impl Workload {
    /// Creates a workload from benchmark ids (sorted internally).
    ///
    /// # Panics
    ///
    /// Panics if `benchmarks` is empty.
    pub fn new(mut benchmarks: Vec<u16>) -> Self {
        assert!(
            !benchmarks.is_empty(),
            "a workload needs at least one thread"
        );
        benchmarks.sort_unstable();
        Workload(benchmarks)
    }

    /// The benchmark ids, sorted non-decreasing.
    pub fn benchmarks(&self) -> &[u16] {
        &self.0
    }

    /// Number of threads (= cores).
    pub fn cores(&self) -> usize {
        self.0.len()
    }

    /// Occurrence count of each benchmark in `0..b`.
    pub fn occurrence_counts(&self, b: usize) -> Vec<u32> {
        let mut counts = vec![0u32; b];
        for &x in &self.0 {
            counts[x as usize] += 1;
        }
        counts
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, b) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, ")")
    }
}

/// The space of all workloads for `B` benchmarks on `K` cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSpace {
    b: usize,
    k: usize,
}

impl WorkloadSpace {
    /// Creates the space for `b` benchmarks on `k` cores.
    ///
    /// # Panics
    ///
    /// Panics if `b` or `k` is zero, or `b` exceeds `u16` range.
    pub fn new(b: usize, k: usize) -> Self {
        assert!(b > 0 && k > 0, "need at least one benchmark and one core");
        assert!(b <= u16::MAX as usize, "benchmark ids must fit in u16");
        WorkloadSpace { b, k }
    }

    /// Number of benchmarks `B`.
    pub fn benchmarks(&self) -> usize {
        self.b
    }

    /// Number of cores `K`.
    pub fn cores(&self) -> usize {
        self.k
    }

    /// Population size `N = C(B+K−1, K)`.
    ///
    /// # Panics
    ///
    /// Panics on populations beyond `u128` (astronomically unlikely in
    /// practice: 22 benchmarks on 64 cores still fits).
    pub fn population_size(&self) -> u128 {
        multiset_coefficient(self.b as u64, self.k as u64).expect("population size overflows u128")
    }

    /// Enumerates the whole population in rank order.
    pub fn iter(&self) -> impl Iterator<Item = Workload> {
        multisets(self.b, self.k).map(|v| Workload(v.into_iter().map(|x| x as u16).collect()))
    }

    /// The rank (0-based position in lexicographic order) of a workload.
    ///
    /// # Panics
    ///
    /// Panics if the workload's size or ids do not fit this space.
    pub fn rank(&self, w: &Workload) -> u128 {
        assert_eq!(w.cores(), self.k, "workload size must match core count");
        let mut rank: u128 = 0;
        let mut prev = 0u16;
        for (i, &wi) in w.benchmarks().iter().enumerate() {
            assert!((wi as usize) < self.b, "benchmark id {wi} out of range");
            let remaining = (self.k - 1 - i) as u64;
            for c in prev..wi {
                // Workloads with value c at position i and anything ≥ c after.
                rank += multiset_coefficient((self.b - c as usize) as u64, remaining)
                    .expect("rank term overflow");
            }
            prev = wi;
        }
        rank
    }

    /// The workload at a given rank (inverse of [`WorkloadSpace::rank`]).
    ///
    /// # Panics
    ///
    /// Panics if `rank >= population_size()`.
    pub fn unrank(&self, mut rank: u128) -> Workload {
        assert!(
            rank < self.population_size(),
            "rank {rank} out of range (population {})",
            self.population_size()
        );
        let mut out = Vec::with_capacity(self.k);
        let mut c = 0u16;
        for i in 0..self.k {
            let remaining = (self.k - 1 - i) as u64;
            loop {
                let block = multiset_coefficient((self.b - c as usize) as u64, remaining)
                    .expect("unrank term overflow");
                if rank < block {
                    out.push(c);
                    break;
                }
                rank -= block;
                c += 1;
            }
        }
        Workload(out)
    }

    /// Draws one exactly-uniform random workload.
    pub fn random_workload(&self, rng: &mut Rng) -> Workload {
        self.unrank(rng.below_u128(self.population_size()))
    }
}

/// A materialized workload population (full or subsampled) against which
/// per-workload throughputs are tabulated by index.
///
/// The paper simulates the full population with BADCO when possible (253
/// workloads for 2 cores, 12650 for 4 cores) and a 10000-workload random
/// subsample for 8 cores; either way downstream machinery works on indices
/// into this table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Population {
    space: WorkloadSpace,
    workloads: Vec<Workload>,
    full: bool,
}

impl Population {
    /// Materializes the full population of `b` benchmarks on `k` cores, in
    /// rank order (so `workloads()[i]` has rank `i`).
    ///
    /// # Panics
    ///
    /// Panics if the population exceeds 100 million workloads (use
    /// [`Population::subsampled`] instead).
    pub fn full(b: usize, k: usize) -> Self {
        let space = WorkloadSpace::new(b, k);
        let n = space.population_size();
        assert!(n <= 100_000_000, "population too large to materialize: {n}");
        Population {
            space,
            workloads: space.iter().collect(),
            full: true,
        }
    }

    /// Draws a random subsample of `n` *distinct* workloads (the paper's
    /// 8-core setup: 10000 workloads out of 4.3M).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the population size.
    pub fn subsampled(b: usize, k: usize, n: usize, rng: &mut Rng) -> Self {
        let space = WorkloadSpace::new(b, k);
        let pop = space.population_size();
        assert!(n > 0, "need a non-empty subsample");
        assert!((n as u128) <= pop, "subsample exceeds population");
        let mut seen = std::collections::BTreeSet::new();
        while seen.len() < n {
            seen.insert(rng.below_u128(pop));
        }
        Population {
            space,
            workloads: seen.into_iter().map(|r| space.unrank(r)).collect(),
            full: false,
        }
    }

    /// Reassembles a population from previously materialized parts — the
    /// artifact-store deserialization path (`mps-harness` persists
    /// population tables across processes). The workloads must be the
    /// exact rank-ordered list a [`Population::full`] or
    /// [`Population::subsampled`] call produced; `full` must record which.
    ///
    /// # Panics
    ///
    /// Panics if `workloads` is empty or a workload disagrees with the
    /// space's core count.
    pub fn from_parts(b: usize, k: usize, workloads: Vec<Workload>, full: bool) -> Self {
        assert!(!workloads.is_empty(), "a population cannot be empty");
        assert!(
            workloads.iter().all(|w| w.cores() == k),
            "every workload must have {k} cores"
        );
        Population {
            space: WorkloadSpace::new(b, k),
            workloads,
            full,
        }
    }

    /// The underlying workload space.
    pub fn space(&self) -> WorkloadSpace {
        self.space
    }

    /// The materialized workloads, in rank order.
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    /// Number of materialized workloads.
    pub fn len(&self) -> usize {
        self.workloads.len()
    }

    /// Whether the population table is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.workloads.is_empty()
    }

    /// Whether this table covers the entire population.
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// Index of a workload in this table, if present.
    ///
    /// O(log n) — the table is sorted by rank.
    pub fn index_of(&self, w: &Workload) -> Option<usize> {
        self.workloads.binary_search(w).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_population_sizes() {
        assert_eq!(WorkloadSpace::new(22, 2).population_size(), 253);
        assert_eq!(WorkloadSpace::new(22, 4).population_size(), 12650);
        assert_eq!(WorkloadSpace::new(22, 8).population_size(), 4_292_145);
    }

    #[test]
    fn rank_unrank_round_trip_small() {
        let space = WorkloadSpace::new(5, 3);
        for (i, w) in space.iter().enumerate() {
            assert_eq!(space.rank(&w), i as u128, "rank of {w}");
            assert_eq!(space.unrank(i as u128), w, "unrank {i}");
        }
    }

    #[test]
    fn rank_unrank_round_trip_paper_sizes() {
        let space = WorkloadSpace::new(22, 4);
        let mut rng = Rng::new(7);
        for _ in 0..500 {
            let r = rng.below_u128(space.population_size());
            let w = space.unrank(r);
            assert_eq!(space.rank(&w), r);
        }
    }

    #[test]
    fn rank_unrank_huge_space() {
        // 22 benchmarks, 16 cores: ~1e10 workloads, still exact.
        let space = WorkloadSpace::new(22, 16);
        let mut rng = Rng::new(8);
        for _ in 0..100 {
            let r = rng.below_u128(space.population_size());
            let w = space.unrank(r);
            assert_eq!(space.rank(&w), r);
            assert!(w.benchmarks().windows(2).all(|p| p[0] <= p[1]));
        }
    }

    #[test]
    fn enumeration_is_sorted_by_rank() {
        let space = WorkloadSpace::new(6, 3);
        let all: Vec<Workload> = space.iter().collect();
        assert_eq!(all.len() as u128, space.population_size());
        let mut sorted = all.clone();
        sorted.sort();
        assert_eq!(all, sorted);
    }

    #[test]
    fn random_workload_is_roughly_uniform() {
        let space = WorkloadSpace::new(3, 2); // population 6
        let mut rng = Rng::new(9);
        let mut counts = [0usize; 6];
        for _ in 0..60_000 {
            let w = space.random_workload(&mut rng);
            counts[space.rank(&w) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((c as i64 - 10_000).abs() < 600, "workload {i}: {c}");
        }
    }

    #[test]
    fn workload_is_sorted_and_displays() {
        let w = Workload::new(vec![3, 1, 2, 1]);
        assert_eq!(w.benchmarks(), &[1, 1, 2, 3]);
        assert_eq!(w.to_string(), "(1,1,2,3)");
        assert_eq!(w.cores(), 4);
    }

    #[test]
    fn occurrence_counts() {
        let w = Workload::new(vec![0, 2, 2, 4]);
        assert_eq!(w.occurrence_counts(5), vec![1, 0, 2, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn empty_workload_panics() {
        Workload::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unrank_out_of_range_panics() {
        WorkloadSpace::new(3, 2).unrank(6);
    }

    #[test]
    #[should_panic(expected = "must match core count")]
    fn rank_wrong_size_panics() {
        WorkloadSpace::new(3, 2).rank(&Workload::new(vec![0, 1, 2]));
    }

    #[test]
    fn full_population_is_rank_ordered() {
        let pop = Population::full(22, 2);
        assert_eq!(pop.len(), 253);
        assert!(pop.is_full());
        for (i, w) in pop.workloads().iter().enumerate() {
            assert_eq!(pop.space().rank(w), i as u128);
            assert_eq!(pop.index_of(w), Some(i));
        }
    }

    #[test]
    fn subsampled_population_is_distinct_and_sorted() {
        let mut rng = Rng::new(10);
        let pop = Population::subsampled(22, 8, 1000, &mut rng);
        assert_eq!(pop.len(), 1000);
        assert!(!pop.is_full());
        for pair in pop.workloads().windows(2) {
            assert!(pair[0] < pair[1], "distinct and sorted");
        }
        let absent = Workload::new(vec![0; 8]);
        // index_of finds present entries and not foreign ones.
        let w0 = pop.workloads()[17].clone();
        assert_eq!(pop.index_of(&w0), Some(17));
        if !pop.workloads().contains(&absent) {
            assert_eq!(pop.index_of(&absent), None);
        }
    }

    #[test]
    fn every_occurrence_is_equal_in_full_population() {
        // Sanity behind balanced sampling: in the full population each
        // benchmark occurs the same number of times (paper §VI-A).
        let pop = Population::full(5, 3);
        let mut occ = vec![0u64; 5];
        for w in pop.workloads() {
            for &x in w.benchmarks() {
                occ[x as usize] += 1;
            }
        }
        assert!(occ.windows(2).all(|p| p[0] == p[1]), "{occ:?}");
    }
}

//! Cluster-analysis-based workload selection.
//!
//! The paper's related work (§II-B) cites two automatic alternatives to
//! manual classification:
//!
//! * Van Biesbrouck, Eeckhout & Calder apply **cluster analysis directly
//!   on workloads** using microarchitecture-independent profiles;
//! * Vandierendonck & Seznec use cluster analysis to define **benchmark
//!   classes** automatically.
//!
//! This module provides both, on top of a small self-contained k-means
//! (k-means++ seeding, Lloyd iterations): [`ClusterSampling`] groups
//! workloads by feature vectors and samples cluster-proportionally (a
//! [`Sampler`] like the paper's own methods), and
//! [`benchmark_classes_from_features`] clusters benchmarks into classes
//! usable with [`crate::BenchmarkStratification`].

use crate::allocation::{allocate, Allocation};
use crate::sampler::{DrawnSample, Sampler};
use crate::space::Population;
use mps_stats::rng::Rng;

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster index of each input point.
    pub assignments: Vec<usize>,
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Lloyd's k-means with k-means++ seeding.
///
/// Deterministic for a given RNG state. `k` is clamped to the number of
/// points.
///
/// # Panics
///
/// Panics if `points` is empty, dimensions are inconsistent, any value is
/// NaN, or `k` is zero.
pub fn kmeans(points: &[Vec<f64>], k: usize, max_iters: usize, rng: &mut Rng) -> KMeansResult {
    let _span = mps_obs::span("sampling.kmeans");
    mps_obs::counter("sampling.kmeans_points").add(points.len() as u64);
    assert!(!points.is_empty(), "need at least one point");
    assert!(k > 0, "need at least one cluster");
    let dim = points[0].len();
    for p in points {
        assert_eq!(p.len(), dim, "inconsistent dimensions");
        assert!(p.iter().all(|x| !x.is_nan()), "NaN feature");
    }
    let k = k.min(points.len());

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.index(points.len())].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with existing centroids; pick any.
            rng.index(points.len())
        } else {
            let mut target = rng.next_f64() * total;
            let mut chosen = points.len() - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            chosen
        };
        centroids.push(points[next].clone());
        for (i, p) in points.iter().enumerate() {
            d2[i] = d2[i].min(sq_dist(p, centroids.last().expect("just pushed")));
        }
    }

    // Lloyd iterations.
    let mut assignments = vec![0usize; points.len()];
    for _ in 0..max_iters {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..centroids.len())
                .min_by(|&a, &b| {
                    sq_dist(p, &centroids[a])
                        .partial_cmp(&sq_dist(p, &centroids[b]))
                        .expect("no NaN")
                })
                .expect("k >= 1");
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Recompute centroids.
        let mut sums = vec![vec![0.0; dim]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (i, p) in points.iter().enumerate() {
            counts[assignments[i]] += 1;
            for (s, &x) in sums[assignments[i]].iter_mut().zip(p) {
                *s += x;
            }
        }
        for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if count > 0 {
                for (cc, &s) in c.iter_mut().zip(sum) {
                    *cc = s / count as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let inertia = points
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| sq_dist(p, &centroids[a]))
        .sum();
    KMeansResult {
        assignments,
        centroids,
        inertia,
    }
}

/// Workload selection by clustering (Van Biesbrouck et al., the automatic
/// alternative the paper's related work describes): cluster workloads by
/// feature vectors, then sample each cluster proportionally and estimate
/// with cluster weights — structurally a stratification whose strata come
/// from k-means instead of the `d(w)` sort.
#[derive(Debug, Clone)]
pub struct ClusterSampling {
    clusters: Vec<Vec<usize>>,
    population: usize,
}

impl ClusterSampling {
    /// Clusters `features[i]` (one vector per population workload) into
    /// `k` groups.
    ///
    /// # Panics
    ///
    /// Panics if `features` is empty or `k` is zero.
    pub fn build(features: &[Vec<f64>], k: usize, rng: &mut Rng) -> Self {
        let result = kmeans(features, k, 50, rng);
        let n_clusters = result.centroids.len();
        let mut clusters = vec![Vec::new(); n_clusters];
        for (i, &a) in result.assignments.iter().enumerate() {
            clusters[a].push(i);
        }
        clusters.retain(|c| !c.is_empty());
        ClusterSampling {
            clusters,
            population: features.len(),
        }
    }

    /// Convenience: clusters scalar per-workload values (e.g. approximate
    /// `d(w)`).
    pub fn from_scalar(values: &[f64], k: usize, rng: &mut Rng) -> Self {
        let features: Vec<Vec<f64>> = values.iter().map(|&v| vec![v]).collect();
        Self::build(&features, k, rng)
    }

    /// Number of (non-empty) clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Per-cluster sizes.
    pub fn sizes(&self) -> Vec<usize> {
        self.clusters.iter().map(Vec::len).collect()
    }
}

impl Sampler for ClusterSampling {
    fn name(&self) -> &'static str {
        "cluster"
    }

    fn draw(&self, pop: &Population, w: usize, rng: &mut Rng) -> DrawnSample {
        assert!(w > 0, "sample size must be positive");
        assert_eq!(
            pop.len(),
            self.population,
            "clustering was built for a different population"
        );
        let sizes = self.sizes();
        let alloc = allocate(Allocation::Proportional, &sizes, None, w);
        let sample = self
            .clusters
            .iter()
            .zip(&alloc)
            .filter(|(_, &n)| n > 0)
            .map(|(members, &n)| {
                let picked = if n <= members.len() {
                    rng.sample_indices(members.len(), n)
                        .into_iter()
                        .map(|i| members[i])
                        .collect()
                } else {
                    (0..n).map(|_| members[rng.index(members.len())]).collect()
                };
                (members.len() as f64 / self.population as f64, picked)
            })
            .collect();
        DrawnSample::Stratified(sample)
    }
}

/// Clusters benchmarks into `m` classes from per-benchmark feature vectors
/// (e.g. solo IPC, MPKI, branch misprediction rate) — the automatic
/// benchmark classification of Vandierendonck & Seznec. The result feeds
/// [`crate::BenchmarkStratification`].
///
/// Features are z-normalized per dimension before clustering so that
/// differently-scaled characteristics weigh equally.
pub fn benchmark_classes_from_features(
    features: &[Vec<f64>],
    m: usize,
    rng: &mut Rng,
) -> Vec<usize> {
    assert!(!features.is_empty(), "need at least one benchmark");
    let dim = features[0].len();
    // z-normalize.
    let mut normalized = features.to_vec();
    for d in 0..dim {
        let m0: mps_stats::Moments = features.iter().map(|f| f[d]).collect();
        let (mean, std) = (m0.mean(), m0.population_std().max(1e-12));
        for f in &mut normalized {
            f[d] = (f[d] - mean) / std;
        }
    }
    kmeans(&normalized, m, 100, rng).assignments
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> Vec<Vec<f64>> {
        let mut rng = Rng::new(5);
        let mut pts = Vec::new();
        for &(cx, cy) in &[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)] {
            for _ in 0..30 {
                pts.push(vec![
                    cx + 0.5 * rng.next_gaussian(),
                    cy + 0.5 * rng.next_gaussian(),
                ]);
            }
        }
        pts
    }

    #[test]
    fn kmeans_separates_well_separated_blobs() {
        let pts = three_blobs();
        let mut rng = Rng::new(1);
        let r = kmeans(&pts, 3, 100, &mut rng);
        assert_eq!(r.centroids.len(), 3);
        // Points within a blob share an assignment.
        for blob in 0..3 {
            let first = r.assignments[blob * 30];
            for i in 0..30 {
                assert_eq!(r.assignments[blob * 30 + i], first, "blob {blob}");
            }
        }
        // And the blobs are in distinct clusters.
        let set: std::collections::BTreeSet<_> =
            [r.assignments[0], r.assignments[30], r.assignments[60]]
                .into_iter()
                .collect();
        assert_eq!(set.len(), 3);
        assert!(r.inertia < 100.0, "inertia {}", r.inertia);
    }

    #[test]
    fn kmeans_k_clamped_to_points() {
        let pts = vec![vec![1.0], vec![2.0]];
        let mut rng = Rng::new(2);
        let r = kmeans(&pts, 10, 10, &mut rng);
        assert!(r.centroids.len() <= 2);
    }

    #[test]
    fn kmeans_identical_points_degenerate() {
        let pts = vec![vec![3.0, 3.0]; 20];
        let mut rng = Rng::new(3);
        let r = kmeans(&pts, 4, 10, &mut rng);
        assert!(r.inertia < 1e-18);
        assert!(r.assignments.iter().all(|&a| a == r.assignments[0]));
    }

    #[test]
    fn kmeans_is_deterministic_given_seed() {
        let pts = three_blobs();
        let a = kmeans(&pts, 3, 100, &mut Rng::new(7));
        let b = kmeans(&pts, 3, 100, &mut Rng::new(7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "NaN feature")]
    fn kmeans_rejects_nan() {
        kmeans(&[vec![f64::NAN]], 1, 5, &mut Rng::new(0));
    }

    #[test]
    fn cluster_sampling_partitions_and_draws() {
        let pop = Population::full(6, 3); // 56 workloads
        let mut rng = Rng::new(4);
        let d: Vec<f64> = (0..pop.len()).map(|i| (i as f64 * 0.7).sin()).collect();
        let cs = ClusterSampling::from_scalar(&d, 5, &mut rng);
        assert!(cs.num_clusters() >= 2);
        assert_eq!(cs.sizes().iter().sum::<usize>(), pop.len());
        let s = cs.draw(&pop, 12, &mut rng);
        assert_eq!(s.len(), 12);
        match s {
            DrawnSample::Stratified(groups) => {
                let total: f64 = groups.iter().map(|(w, _)| w).sum();
                assert!((total - 1.0).abs() < 1e-9);
            }
            _ => panic!("cluster sampling must stratify"),
        }
    }

    #[test]
    #[should_panic(expected = "different population")]
    fn cluster_sampling_population_mismatch_panics() {
        let pop = Population::full(6, 3);
        let mut rng = Rng::new(5);
        let cs = ClusterSampling::from_scalar(&[0.0; 10], 2, &mut rng);
        cs.draw(&pop, 5, &mut rng);
    }

    #[test]
    fn benchmark_classes_cluster_by_intensity() {
        // Synthetic benchmark features: (ipc, mpki) in three obvious bands.
        let features = vec![
            vec![2.0, 0.1],
            vec![1.9, 0.2],
            vec![1.8, 0.3], // compute-bound
            vec![1.0, 20.0],
            vec![0.9, 22.0], // medium
            vec![0.2, 55.0],
            vec![0.1, 60.0], // memory-bound
        ];
        // k-means is a local-search heuristic: accept any seed that finds
        // the obvious 3-way split, but it must do so for most seeds.
        let good = (0..10)
            .filter(|&seed| {
                let mut rng = Rng::new(seed);
                let c = benchmark_classes_from_features(&features, 3, &mut rng);
                c[0] == c[1]
                    && c[0] == c[2]
                    && c[3] == c[4]
                    && c[5] == c[6]
                    && c[0] != c[3]
                    && c[3] != c[5]
            })
            .count();
        assert!(good >= 6, "only {good}/10 seeds find the natural split");
    }
}

//! Speedup accuracy — the paper's open problem (§VIII).
//!
//! > "To our knowledge, the problem of defining workload samples that
//! > provide accurate speedups with high probability is still open."
//!
//! The confidence machinery elsewhere in this crate answers *"which
//! machine wins?"*. This module tackles the quantitative question: *how
//! accurate is the speedup `T_Y / T_X` estimated from a W-workload
//! sample?* With an approximate simulator the full-population throughput
//! tables are available, so the sampling distribution of the speedup
//! estimator can simply be measured by resampling (a parametric bootstrap
//! over the known population), yielding
//!
//! * [`speedup_interval`] — an empirical central interval for the
//!   W-sample speedup estimate, and
//! * [`sample_size_for_speedup_accuracy`] — the smallest `W` such that
//!   the estimate is within ±ε of the population speedup with the
//!   requested probability.

use crate::estimate::{sample_throughput_pair, PairData};
use crate::sampler::Sampler;
use crate::space::Population;
use mps_stats::rng::Rng;

/// Empirical sampling distribution summary of the W-sample speedup.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupInterval {
    /// Population ("true") speedup `T_Y / T_X` over the whole table.
    pub population_speedup: f64,
    /// Sample size the interval describes.
    pub w: usize,
    /// Central-interval coverage (e.g. 0.95).
    pub coverage: f64,
    /// Lower quantile of the W-sample speedup estimates.
    pub low: f64,
    /// Upper quantile of the W-sample speedup estimates.
    pub high: f64,
    /// Mean of the estimates (bias check against `population_speedup`).
    pub mean: f64,
}

impl SpeedupInterval {
    /// Half-width of the interval relative to the population speedup.
    pub fn relative_half_width(&self) -> f64 {
        ((self.high - self.low) / 2.0) / self.population_speedup
    }

    /// Largest relative deviation of either interval end from the
    /// population speedup.
    pub fn worst_relative_error(&self) -> f64 {
        let lo = (self.low / self.population_speedup - 1.0).abs();
        let hi = (self.high / self.population_speedup - 1.0).abs();
        lo.max(hi)
    }
}

/// The population speedup `T_Y / T_X` over the full data table.
pub fn population_speedup(data: &PairData) -> f64 {
    let mean = data.metric().mean();
    mean.of(data.t_y()) / mean.of(data.t_x())
}

/// Measures the sampling distribution of the W-sample speedup estimator
/// under the given sampling method, returning its central
/// `coverage`-interval.
///
/// # Panics
///
/// Panics if `resamples` < 10 or `coverage` is not in (0, 1).
pub fn speedup_interval(
    sampler: &dyn Sampler,
    pop: &Population,
    data: &PairData,
    w: usize,
    coverage: f64,
    resamples: usize,
    rng: &mut Rng,
) -> SpeedupInterval {
    assert!(resamples >= 10, "need at least 10 resamples");
    assert!(
        (0.0..1.0).contains(&coverage) && coverage > 0.0,
        "coverage must be in (0,1), got {coverage}"
    );
    assert_eq!(pop.len(), data.len(), "population and data must be aligned");
    let mut estimates: Vec<f64> = (0..resamples)
        .map(|_| {
            let s = sampler.draw(pop, w, rng);
            let (tx, ty) = sample_throughput_pair(data, &s);
            ty / tx
        })
        .collect();
    estimates.sort_by(|a, b| a.partial_cmp(b).expect("throughputs are finite"));
    let alpha = (1.0 - coverage) / 2.0;
    let lo_idx = ((resamples as f64) * alpha).floor() as usize;
    let hi_idx = (((resamples as f64) * (1.0 - alpha)).ceil() as usize).min(resamples) - 1;
    let mean = estimates.iter().sum::<f64>() / resamples as f64;
    SpeedupInterval {
        population_speedup: population_speedup(data),
        w,
        coverage,
        low: estimates[lo_idx],
        high: estimates[hi_idx],
        mean,
    }
}

/// Finds the smallest sample size `W` (by doubling + bisection) whose
/// W-sample speedup estimate stays within `±rel_err` of the population
/// speedup with probability at least `coverage`.
///
/// Returns `None` if even `max_w` workloads do not reach the accuracy.
///
/// # Example
///
/// ```
/// use mps_sampling::{sample_size_for_speedup_accuracy, PairData, Population, RandomSampling};
/// use mps_metrics::ThroughputMetric;
/// use mps_stats::rng::Rng;
///
/// let pop = Population::full(3, 2);
/// let t_x = vec![1.0, 0.9, 1.1, 0.95, 1.05, 1.0];
/// let t_y = vec![1.1, 1.0, 1.2, 1.05, 1.15, 1.1];
/// let data = PairData::new(ThroughputMetric::WeightedSpeedup, t_x, t_y);
/// let mut rng = Rng::new(1);
/// let w = sample_size_for_speedup_accuracy(
///     &RandomSampling, &pop, &data, 0.05, 0.9, 64, 200, &mut rng);
/// assert!(w.is_some());
/// ```
#[allow(clippy::too_many_arguments)]
pub fn sample_size_for_speedup_accuracy(
    sampler: &dyn Sampler,
    pop: &Population,
    data: &PairData,
    rel_err: f64,
    coverage: f64,
    max_w: usize,
    resamples: usize,
    rng: &mut Rng,
) -> Option<usize> {
    assert!(rel_err > 0.0, "need a positive error tolerance");
    let accurate = |w: usize, rng: &mut Rng| {
        let iv = speedup_interval(sampler, pop, data, w, coverage, resamples, rng);
        iv.worst_relative_error() <= rel_err
    };
    // Exponential search for an upper bound.
    let mut hi = 1usize;
    while hi <= max_w {
        if accurate(hi, rng) {
            break;
        }
        hi *= 2;
    }
    if hi > max_w {
        if accurate(max_w, rng) {
            hi = max_w;
        } else {
            return None;
        }
    }
    // Bisection down to the smallest accurate W.
    let mut lo = hi / 2;
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if accurate(mid, rng) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::RandomSampling;
    use mps_metrics::ThroughputMetric;

    fn toy(n: usize, ratio: f64, noise: f64) -> PairData {
        let mut rng = Rng::new(11);
        let t_x: Vec<f64> = (0..n).map(|_| 1.0 + 0.1 * rng.next_gaussian()).collect();
        let t_y: Vec<f64> = t_x
            .iter()
            .map(|&x| x * ratio * (1.0 + noise * rng.next_gaussian()))
            .collect();
        PairData::new(ThroughputMetric::WeightedSpeedup, t_x, t_y)
    }

    #[test]
    fn population_speedup_is_ratio_of_means() {
        let data = PairData::new(
            ThroughputMetric::WeightedSpeedup,
            vec![1.0, 2.0],
            vec![2.0, 4.0],
        );
        assert!((population_speedup(&data) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn interval_contains_population_speedup() {
        let pop = Population::full(8, 2); // 36
        let data = toy(pop.len(), 1.05, 0.02);
        let mut rng = Rng::new(12);
        let iv = speedup_interval(&RandomSampling, &pop, &data, 10, 0.95, 500, &mut rng);
        assert!(
            iv.low <= iv.population_speedup && iv.population_speedup <= iv.high,
            "{iv:?}"
        );
        assert!(iv.low <= iv.mean && iv.mean <= iv.high);
    }

    #[test]
    fn interval_shrinks_with_sample_size() {
        let pop = Population::full(10, 2); // 55
        let data = toy(pop.len(), 1.1, 0.05);
        let mut rng = Rng::new(13);
        let small = speedup_interval(&RandomSampling, &pop, &data, 5, 0.9, 800, &mut rng);
        let large = speedup_interval(&RandomSampling, &pop, &data, 40, 0.9, 800, &mut rng);
        assert!(
            large.relative_half_width() < small.relative_half_width(),
            "small {} vs large {}",
            small.relative_half_width(),
            large.relative_half_width()
        );
    }

    #[test]
    fn required_sample_size_grows_with_tightness() {
        let pop = Population::full(10, 2);
        let data = toy(pop.len(), 1.08, 0.06);
        let mut rng = Rng::new(14);
        let loose = sample_size_for_speedup_accuracy(
            &RandomSampling,
            &pop,
            &data,
            0.10,
            0.9,
            512,
            300,
            &mut rng,
        )
        .expect("loose tolerance reachable");
        let tight = sample_size_for_speedup_accuracy(
            &RandomSampling,
            &pop,
            &data,
            0.01,
            0.9,
            512,
            300,
            &mut rng,
        );
        // A tight tolerance may be unreachable (None) — that is also fine.
        if let Some(t) = tight {
            assert!(t >= loose, "tight {t} vs loose {loose}");
        }
        assert!(loose >= 1);
    }

    #[test]
    fn impossible_accuracy_returns_none() {
        let pop = Population::full(10, 2);
        let data = toy(pop.len(), 1.02, 0.5); // extremely noisy
        let mut rng = Rng::new(15);
        let w = sample_size_for_speedup_accuracy(
            &RandomSampling,
            &pop,
            &data,
            1e-6,
            0.99,
            64,
            100,
            &mut rng,
        );
        assert_eq!(w, None);
    }

    #[test]
    #[should_panic(expected = "coverage must be in")]
    fn bad_coverage_panics() {
        let pop = Population::full(3, 2);
        let data = toy(pop.len(), 1.0, 0.1);
        speedup_interval(&RandomSampling, &pop, &data, 5, 1.5, 100, &mut Rng::new(0));
    }
}

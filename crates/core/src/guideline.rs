//! The practical guideline (paper Section VII) and its overhead model.
//!
//! Once a fast, qualitatively accurate approximate simulator has produced
//! per-workload throughputs for both machines on a large workload sample,
//! the procedure is:
//!
//! 1. Estimate `cv` of `d(w)` on the large sample.
//! 2. `cv > 10` — declare the machines throughput-equivalent.
//! 3. `cv < 2` — a few tens of random workloads suffice (`W = 8·cv²`);
//!    prefer balanced random sampling.
//! 4. `2 ≤ cv ≤ 10` — use workload stratification.
//!
//! §VII-A quantifies the cost: the overhead model below reproduces its
//! CPU-hours arithmetic from the Table III simulation speeds.

use crate::estimate::PairData;
use mps_stats::confidence::CvRegime;

/// The §VII recommendation for a given comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Recommendation {
    /// `|cv| > 10` (or undefined): the machines offer the same average
    /// throughput; no sample will separate them.
    Equivalent {
        /// The estimated coefficient of variation.
        cv: f64,
    },
    /// `|cv| < 2`: use (balanced) random sampling of the given size.
    BalancedRandom {
        /// The estimated coefficient of variation.
        cv: f64,
        /// Required sample size `⌈8·cv²⌉`.
        sample_size: usize,
    },
    /// `2 ≤ |cv| ≤ 10`: build workload strata from the approximate
    /// `d(w)` distribution.
    WorkloadStratification {
        /// The estimated coefficient of variation.
        cv: f64,
        /// Random sampling would need this many workloads instead.
        random_equivalent: usize,
    },
}

impl Recommendation {
    /// The estimated `cv` the recommendation is based on.
    pub fn cv(&self) -> f64 {
        match *self {
            Recommendation::Equivalent { cv }
            | Recommendation::BalancedRandom { cv, .. }
            | Recommendation::WorkloadStratification { cv, .. } => cv,
        }
    }
}

/// Applies the §VII decision procedure to an estimated `cv`.
///
/// # Example
///
/// ```
/// use mps_sampling::{recommend, Recommendation};
///
/// assert!(matches!(recommend(1.0),
///     Recommendation::BalancedRandom { sample_size: 8, .. }));
/// assert!(matches!(recommend(5.0),
///     Recommendation::WorkloadStratification { .. }));
/// assert!(matches!(recommend(50.0), Recommendation::Equivalent { .. }));
/// ```
pub fn recommend(cv: f64) -> Recommendation {
    match CvRegime::classify(cv) {
        CvRegime::Equivalent => Recommendation::Equivalent { cv },
        CvRegime::SmallSampleSuffices => Recommendation::BalancedRandom {
            cv,
            sample_size: mps_stats::required_sample_size(cv),
        },
        CvRegime::StratificationRecommended => Recommendation::WorkloadStratification {
            cv,
            random_equivalent: mps_stats::required_sample_size(cv),
        },
    }
}

/// Applies the guideline directly to approximate-simulation data.
pub fn recommend_from_data(data: &PairData) -> Recommendation {
    recommend(data.comparison().cv)
}

/// CPU-hours accounting of a study (paper §VII-A).
///
/// All quantities in instructions and MIPS (million simulated instructions
/// per second); durations come out in CPU-hours.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadModel {
    /// Benchmarks in the suite (the paper: 22).
    pub benchmarks: usize,
    /// Cores per workload (instructions per workload = per-thread × cores).
    pub cores: usize,
    /// Instructions simulated per thread (the paper: 100 million).
    pub instructions_per_thread: f64,
    /// Detailed-simulator speed on K-core workloads, in MIPS.
    pub detailed_mips: f64,
    /// Detailed-simulator single-core speed (for model-building traces).
    pub detailed_single_core_mips: f64,
    /// Approximate-simulator speed on K-core workloads, in MIPS.
    pub approx_mips: f64,
    /// Training runs needed per benchmark to build its core model
    /// (BADCO: 2).
    pub traces_per_benchmark: usize,
}

impl OverheadModel {
    /// The paper's §VII-A numbers: 22 benchmarks, 4 cores, 100 M
    /// instructions per thread, Zesto at 0.049 MIPS (4-core) and
    /// 0.170 MIPS (single-core), BADCO at 1.89 MIPS, 2 traces per
    /// benchmark.
    pub fn ispass2013_example() -> Self {
        OverheadModel {
            benchmarks: 22,
            cores: 4,
            instructions_per_thread: 100e6,
            detailed_mips: 0.049,
            detailed_single_core_mips: 0.170,
            approx_mips: 1.89,
            traces_per_benchmark: 2,
        }
    }

    fn instructions_per_workload(&self) -> f64 {
        self.instructions_per_thread * self.cores as f64
    }

    /// CPU-hours of detailed simulation for `w` workloads on `machines`
    /// microarchitectures.
    ///
    /// §VII-A: 30 workloads × 2 policies ≈ 136 h; 120 × 2 ≈ 544 h.
    pub fn detailed_hours(&self, w: usize, machines: usize) -> f64 {
        machines as f64 * w as f64 * self.instructions_per_workload()
            / (self.detailed_mips * 1e6)
            / 3600.0
    }

    /// CPU-hours to build the approximate core models (detailed
    /// single-core runs: `benchmarks × traces × instructions`).
    ///
    /// §VII-A: 22 × 2 × 100 M at 0.17 MIPS ≈ 7 h.
    pub fn model_building_hours(&self) -> f64 {
        self.benchmarks as f64 * self.traces_per_benchmark as f64 * self.instructions_per_thread
            / (self.detailed_single_core_mips * 1e6)
            / 3600.0
    }

    /// CPU-hours of approximate simulation for `w` workloads on
    /// `machines` microarchitectures.
    ///
    /// §VII-A: 800 workloads × 2 policies at 1.89 MIPS ≈ 94 h.
    pub fn approx_hours(&self, w: usize, machines: usize) -> f64 {
        machines as f64 * w as f64 * self.instructions_per_workload()
            / (self.approx_mips * 1e6)
            / 3600.0
    }

    /// Total CPU-hours of the workload-stratification strategy: build
    /// models, run the large approximate sample, then `w_detailed`
    /// detailed workloads — all on `machines` microarchitectures.
    pub fn stratification_hours(
        &self,
        large_sample: usize,
        w_detailed: usize,
        machines: usize,
    ) -> f64 {
        self.model_building_hours()
            + self.approx_hours(large_sample, machines)
            + self.detailed_hours(w_detailed, machines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_metrics::ThroughputMetric;

    #[test]
    fn recommendation_bands() {
        assert!(matches!(
            recommend(0.5),
            Recommendation::BalancedRandom { .. }
        ));
        assert!(matches!(
            recommend(3.0),
            Recommendation::WorkloadStratification { .. }
        ));
        assert!(matches!(recommend(12.0), Recommendation::Equivalent { .. }));
        assert!(matches!(
            recommend(f64::NAN),
            Recommendation::Equivalent { .. }
        ));
        assert!(matches!(
            recommend(-3.0),
            Recommendation::WorkloadStratification { .. }
        ));
    }

    #[test]
    fn recommendation_reports_sample_sizes() {
        match recommend(1.5) {
            Recommendation::BalancedRandom { sample_size, cv } => {
                assert_eq!(sample_size, 18);
                assert_eq!(cv, 1.5);
            }
            other => panic!("unexpected {other:?}"),
        }
        match recommend(10.0) {
            Recommendation::WorkloadStratification {
                random_equivalent, ..
            } => assert_eq!(random_equivalent, 800),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cv_accessor() {
        assert_eq!(recommend(0.7).cv(), 0.7);
        assert_eq!(recommend(4.0).cv(), 4.0);
    }

    #[test]
    fn recommend_from_data_uses_cv() {
        // Constant positive gap: cv = 0 → small sample.
        let data = PairData::new(
            ThroughputMetric::IpcThroughput,
            vec![1.0, 2.0],
            vec![1.1, 2.1],
        );
        assert!(matches!(
            recommend_from_data(&data),
            Recommendation::BalancedRandom { sample_size: 1, .. }
        ));
    }

    #[test]
    fn paper_example_detailed_hours() {
        // §VII-A: "30 workloads ... roughly 30 × (400/0.049)/3600 cpu*hours
        // ... for each replacement policy, that is, 136 cpu*hours in total".
        let m = OverheadModel::ispass2013_example();
        let h30 = m.detailed_hours(30, 2);
        assert!((h30 - 136.0).abs() < 1.0, "h30={h30}");
        // "To reach 90% ... 120 workloads ... ≈ 544 cpu*hours".
        let h120 = m.detailed_hours(120, 2);
        assert!((h120 - 544.0).abs() < 2.0, "h120={h120}");
    }

    #[test]
    fn paper_example_model_building_hours() {
        // "22 × 2 × (100/0.17)/3600 = 7 cpu*hours".
        let m = OverheadModel::ispass2013_example();
        let h = m.model_building_hours();
        assert!((h - 7.19).abs() < 0.1, "h={h}");
    }

    #[test]
    fn paper_example_approx_hours() {
        // "2 × 800 × (400/1.89)/3600 = 94 cpu*hours".
        let m = OverheadModel::ispass2013_example();
        let h = m.approx_hours(800, 2);
        assert!((h - 94.0).abs() < 1.0, "h={h}");
    }

    #[test]
    fn paper_example_stratification_overhead_ratio() {
        // "Increasing the degree of confidence from 75% to 99% requires
        // (7+94)/136 ≈ 74% extra simulation with workload stratification"
        // and is ~4× cheaper than the +300% of random sampling.
        let m = OverheadModel::ispass2013_example();
        let base = m.detailed_hours(30, 2);
        let extra_strat = m.model_building_hours() + m.approx_hours(800, 2);
        let ratio = extra_strat / base;
        assert!((ratio - 0.74).abs() < 0.03, "ratio={ratio}");
        let extra_random = m.detailed_hours(120, 2) - base;
        assert!(extra_random / extra_strat > 3.5);
    }

    #[test]
    fn stratification_total_is_sum_of_parts() {
        let m = OverheadModel::ispass2013_example();
        let total = m.stratification_hours(800, 30, 2);
        let sum = m.model_building_hours() + m.approx_hours(800, 2) + m.detailed_hours(30, 2);
        assert!((total - sum).abs() < 1e-9);
    }
}

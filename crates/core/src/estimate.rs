//! Throughput estimation over drawn samples and degrees of confidence.
//!
//! A study compares machines X and Y: for each sampled workload we have
//! per-workload throughputs `t_X(w)` and `t_Y(w)` (computed by
//! `mps-metrics` from simulated IPCs). This module evaluates
//!
//! * the per-sample throughput `T` — plain (equation (2)) or stratified
//!   (equation (9)),
//! * whether a drawn sample concludes "Y wins",
//! * the **empirical degree of confidence**: the fraction of many
//!   independently drawn samples that conclude Y wins (how the paper
//!   evaluates every sampling method, Figures 3, 6, 7),
//! * the **analytical** degree of confidence for random sampling
//!   (equation (5)) from the `cv` of `d(w)`.

use crate::sampler::{DrawnSample, Sampler};
use crate::space::Population;
use mps_metrics::{pair_comparison, PairComparison, ThroughputMetric};
use mps_stats::rng::Rng;
use mps_stats::{Mean, WeightedMean};

/// Per-workload throughputs of a microarchitecture pair over a population,
/// under one metric. Index-aligned with the [`Population`] table.
#[derive(Debug, Clone, PartialEq)]
pub struct PairData {
    metric: ThroughputMetric,
    t_x: Vec<f64>,
    t_y: Vec<f64>,
}

impl PairData {
    /// Bundles the two aligned throughput vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors are empty or lengths differ.
    pub fn new(metric: ThroughputMetric, t_x: Vec<f64>, t_y: Vec<f64>) -> Self {
        assert!(!t_x.is_empty(), "need at least one workload");
        assert_eq!(t_x.len(), t_y.len(), "t_x and t_y must be aligned");
        PairData { metric, t_x, t_y }
    }

    /// The metric the throughputs were computed under.
    pub fn metric(&self) -> ThroughputMetric {
        self.metric
    }

    /// Number of workloads covered.
    pub fn len(&self) -> usize {
        self.t_x.len()
    }

    /// Whether the table is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.t_x.is_empty()
    }

    /// Baseline per-workload throughputs.
    pub fn t_x(&self) -> &[f64] {
        &self.t_x
    }

    /// Contender per-workload throughputs.
    pub fn t_y(&self) -> &[f64] {
        &self.t_y
    }

    /// The per-workload differences `d(w)` (equations (4)/(7)).
    pub fn differences(&self) -> Vec<f64> {
        self.t_x
            .iter()
            .zip(&self.t_y)
            .map(|(&x, &y)| mps_metrics::workload_difference(self.metric, x, y))
            .collect()
    }

    /// Full-population comparison statistics (µ, σ, cv, 1/cv of `d(w)`).
    pub fn comparison(&self) -> PairComparison {
        pair_comparison(self.metric, &self.t_x, &self.t_y)
    }
}

/// Evaluates the sample throughput of both machines over a drawn sample:
/// `(T_X, T_Y)` via equation (2) for plain samples and equation (9) for
/// stratified ones.
///
/// # Panics
///
/// Panics if the sample is empty or indexes outside the data.
pub fn sample_throughput_pair(data: &PairData, sample: &DrawnSample) -> (f64, f64) {
    assert!(!sample.is_empty(), "cannot evaluate an empty sample");
    let mean = data.metric.mean();
    match sample {
        DrawnSample::Plain(indices) => {
            let tx = mean.of_iter(indices.iter().map(|&i| data.t_x[i]));
            let ty = mean.of_iter(indices.iter().map(|&i| data.t_y[i]));
            (tx, ty)
        }
        DrawnSample::Stratified(strata) => {
            let stratified = |t: &[f64]| {
                let mut acc = WeightedMean::new(mean);
                for (weight, indices) in strata {
                    if *weight > 0.0 && !indices.is_empty() {
                        acc.push(mean.of_iter(indices.iter().map(|&i| t[i])), *weight);
                    }
                }
                acc.value()
            };
            (stratified(&data.t_x), stratified(&data.t_y))
        }
    }
}

/// Does this drawn sample conclude that Y outperforms X?
pub fn sample_decides_y_wins(data: &PairData, sample: &DrawnSample) -> bool {
    let (tx, ty) = sample_throughput_pair(data, sample);
    ty > tx
}

/// Empirical degree of confidence: draws `samples` independent samples of
/// size `w` with the given method and returns the fraction concluding
/// "Y wins" (the paper's experimental protocol: 1000 samples for Figure 3,
/// 10000 for Figure 6, 100 Zesto samples for Figure 7).
///
/// Equivalent to [`empirical_confidence_jobs`] with one worker; the
/// result is identical for every worker count.
///
/// # Panics
///
/// Panics if `samples` is zero, or the data and population disagree in
/// size.
pub fn empirical_confidence(
    sampler: &dyn Sampler,
    pop: &Population,
    data: &PairData,
    w: usize,
    samples: usize,
    rng: &mut Rng,
) -> f64 {
    empirical_confidence_jobs(sampler, pop, data, w, samples, rng, 1)
}

/// [`empirical_confidence`] with the resample loop fanned out over up to
/// `jobs` worker threads.
///
/// Each of the `samples` resamples derives its own generator from one
/// draw off the caller's stream and the *sample index* — never from
/// execution order — so the returned confidence is bit-identical for
/// every `jobs` value (including the sequential `jobs = 1` path), and the
/// caller's stream advances by exactly one draw regardless of `samples`.
///
/// # Panics
///
/// Panics if `samples` is zero, or the data and population disagree in
/// size.
pub fn empirical_confidence_jobs(
    sampler: &dyn Sampler,
    pop: &Population,
    data: &PairData,
    w: usize,
    samples: usize,
    rng: &mut Rng,
    jobs: usize,
) -> f64 {
    let base = rng.next_u64();
    empirical_confidence_seeded(sampler, pop, data, w, samples, base, jobs)
}

/// [`empirical_confidence_jobs`] with the single base draw made explicit.
///
/// The caller supplies the `base` value that would otherwise be drawn
/// from the stream. This is the checkpoint/resume entry point: an
/// experiment grid can advance its RNG stream past an already-completed
/// cell (one `next_u64` per cell) and skip the evaluation entirely,
/// while a cell that *is* evaluated — in the original run or a resumed
/// one — sees exactly the same `base` and therefore produces a
/// bit-identical confidence.
///
/// # Panics
///
/// Panics if `samples` is zero, or the data and population disagree in
/// size.
pub fn empirical_confidence_seeded(
    sampler: &dyn Sampler,
    pop: &Population,
    data: &PairData,
    w: usize,
    samples: usize,
    base: u64,
    jobs: usize,
) -> f64 {
    assert!(samples > 0, "need at least one sample");
    assert_eq!(
        pop.len(),
        data.len(),
        "population table and throughput data must be aligned"
    );
    let _span = mps_obs::span("estimate.empirical_confidence");
    let draws = mps_obs::counter("sampling.draws");
    let evaluated = mps_obs::counter("estimate.workloads_evaluated");
    let verdicts = mps_par::par_map_range(jobs, samples, |i| {
        // Weyl-sequence offset per sample index: decorrelated seeds whose
        // derivation is independent of which worker runs the sample.
        let mut sample_rng =
            Rng::new(base.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        let s = sampler.draw(pop, w, &mut sample_rng);
        draws.incr();
        evaluated.add(s.len() as u64);
        sample_decides_y_wins(data, &s)
    });
    let wins = verdicts.iter().filter(|&&v| v).count();
    wins as f64 / samples as f64
}

/// Analytical degree of confidence for simple random sampling
/// (equation (5)), using the `cv` of `d(w)` over the whole data table.
pub fn analytic_confidence(data: &PairData, w: usize) -> f64 {
    mps_obs::counter("estimate.analytic_evals").incr();
    let cmp = data.comparison();
    mps_stats::confidence::degree_of_confidence_inv_cv(cmp.inv_cv, w)
}

/// Mean helper re-export used by harness code.
pub fn metric_mean(metric: ThroughputMetric) -> Mean {
    metric.mean()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{BalancedRandomSampling, RandomSampling, WorkloadStratification};

    fn toy_data(n: usize, gap: f64, noise: f64) -> PairData {
        let mut rng = Rng::new(42);
        let t_x: Vec<f64> = (0..n).map(|_| 1.0 + 0.2 * rng.next_gaussian()).collect();
        let t_y: Vec<f64> = t_x
            .iter()
            .map(|&x| x + gap + noise * rng.next_gaussian())
            .collect();
        PairData::new(ThroughputMetric::WeightedSpeedup, t_x, t_y)
    }

    #[test]
    fn plain_sample_throughput_matches_manual_mean() {
        let data = PairData::new(
            ThroughputMetric::IpcThroughput,
            vec![1.0, 2.0, 3.0],
            vec![2.0, 3.0, 4.0],
        );
        let s = DrawnSample::Plain(vec![0, 2]);
        let (tx, ty) = sample_throughput_pair(&data, &s);
        assert!((tx - 2.0).abs() < 1e-12);
        assert!((ty - 3.0).abs() < 1e-12);
        assert!(sample_decides_y_wins(&data, &s));
    }

    #[test]
    fn stratified_sample_uses_weights() {
        let data = PairData::new(
            ThroughputMetric::IpcThroughput,
            vec![1.0, 10.0],
            vec![2.0, 1.0],
        );
        // Stratum 0 (weight .9) says Y wins; stratum 1 (weight .1) says X.
        let s = DrawnSample::Stratified(vec![(0.9, vec![0]), (0.1, vec![1])]);
        let (tx, ty) = sample_throughput_pair(&data, &s);
        assert!((tx - (0.9 + 1.0)).abs() < 1e-12); // 0.9*1 + 0.1*10
        assert!((ty - (1.8 + 0.1)).abs() < 1e-12);
        assert!(sample_decides_y_wins(&data, &s));
    }

    #[test]
    fn harmonic_metric_uses_weighted_harmonic() {
        let data = PairData::new(
            ThroughputMetric::HarmonicSpeedup,
            vec![2.0, 4.0],
            vec![2.0, 4.0],
        );
        let s = DrawnSample::Stratified(vec![(0.5, vec![0]), (0.5, vec![1])]);
        let (tx, _) = sample_throughput_pair(&data, &s);
        assert!((tx - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_confidence_tracks_effect_size() {
        let pop = Population::full(6, 2); // 21 workloads... need n matching
        let n = pop.len();
        // Clear win: high confidence even with few workloads.
        let clear = toy_data(n, 0.2, 0.02);
        let mut rng = Rng::new(1);
        let c = empirical_confidence(&RandomSampling, &pop, &clear, 5, 400, &mut rng);
        assert!(c > 0.95, "clear effect: {c}");
        // No effect: confidence near 0.5.
        let null = toy_data(n, 0.0, 0.1);
        let c = empirical_confidence(&RandomSampling, &pop, &null, 5, 400, &mut rng);
        assert!((0.2..=0.8).contains(&c), "null effect: {c}");
    }

    #[test]
    fn empirical_confidence_grows_with_sample_size() {
        let pop = Population::full(8, 2); // 36
        let data = toy_data(pop.len(), 0.05, 0.15);
        let mut rng = Rng::new(2);
        let c_small = empirical_confidence(&RandomSampling, &pop, &data, 3, 600, &mut rng);
        let c_large = empirical_confidence(&RandomSampling, &pop, &data, 30, 600, &mut rng);
        assert!(c_large > c_small, "small={c_small} large={c_large}");
    }

    #[test]
    fn analytic_matches_empirical_for_random_sampling() {
        // The validation of Figure 3, in miniature.
        let pop = Population::full(12, 2); // 78 workloads
        let data = toy_data(pop.len(), 0.06, 0.12);
        let mut rng = Rng::new(3);
        for w in [5, 15, 40] {
            let analytic = analytic_confidence(&data, w);
            let empirical = empirical_confidence(&RandomSampling, &pop, &data, w, 3000, &mut rng);
            assert!(
                (analytic - empirical).abs() < 0.06,
                "w={w}: analytic={analytic} empirical={empirical}"
            );
        }
    }

    #[test]
    fn workload_stratification_beats_random_at_equal_size() {
        // Construct a heterogeneous population: Y wins on 80% of
        // workloads by a small margin, loses on 20% by a large one —
        // exactly the situation stratification is built for (§VI-B).
        let n = 1000;
        let mut rng = Rng::new(4);
        let mut t_x = Vec::with_capacity(n);
        let mut t_y = Vec::with_capacity(n);
        for i in 0..n {
            let x = 1.0 + 0.05 * rng.next_gaussian();
            let d = if i % 5 == 0 {
                -0.10 + 0.005 * rng.next_gaussian()
            } else {
                0.04 + 0.005 * rng.next_gaussian()
            };
            t_x.push(x);
            t_y.push(x + d);
        }
        let data = PairData::new(ThroughputMetric::WeightedSpeedup, t_x, t_y);
        // True population verdict: mean d = 0.8*0.04 - 0.2*0.10 = +0.012.
        assert!(data.comparison().y_wins_on_average());

        let pop = Population::subsampled(50, 3, n, &mut rng);
        let ws = WorkloadStratification::build(&data.differences(), 0.01, 20);
        let w = 12;
        let c_random = empirical_confidence(&RandomSampling, &pop, &data, w, 2000, &mut rng);
        let c_strata = empirical_confidence(&ws, &pop, &data, w, 2000, &mut rng);
        assert!(
            c_strata > c_random + 0.05,
            "strata={c_strata} random={c_random}"
        );
        assert!(c_strata > 0.9, "strata={c_strata}");
    }

    #[test]
    fn balanced_random_is_consistent_with_random_on_full_population() {
        let pop = Population::full(6, 2);
        let data = toy_data(pop.len(), 0.08, 0.08);
        let mut rng = Rng::new(5);
        let c_bal = empirical_confidence(&BalancedRandomSampling, &pop, &data, 9, 1500, &mut rng);
        let c_rnd = empirical_confidence(&RandomSampling, &pop, &data, 9, 1500, &mut rng);
        // Both should agree on the direction with decent confidence.
        assert!(c_bal > 0.6 && c_rnd > 0.6, "bal={c_bal} rnd={c_rnd}");
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn mismatched_population_and_data_panic() {
        let pop = Population::full(6, 2);
        let data = toy_data(pop.len() + 1, 0.1, 0.1);
        empirical_confidence(&RandomSampling, &pop, &data, 5, 10, &mut Rng::new(6));
    }

    #[test]
    #[should_panic(expected = "cannot evaluate an empty sample")]
    fn empty_sample_panics() {
        let data = toy_data(5, 0.1, 0.1);
        sample_throughput_pair(&data, &DrawnSample::Plain(vec![]));
    }

    #[test]
    fn differences_match_metric_orientation() {
        let data = PairData::new(
            ThroughputMetric::HarmonicSpeedup,
            vec![1.0, 2.0],
            vec![1.25, 1.0],
        );
        let d = data.differences();
        assert!((d[0] - 0.2).abs() < 1e-12); // 1/1 − 1/1.25
        assert!(d[1] < 0.0);
    }
}

//! The four sampling methods the paper compares (Sections III and VI).
//!
//! All samplers draw *indices into a [`Population`] table*. Plain samples
//! are evaluated with the ordinary sample throughput (equation (2));
//! stratified samples carry per-stratum weights `Nh/N` and are evaluated
//! with the weighted estimator (equation (9)).

use crate::allocation::{allocate, strata_sigmas, Allocation};
use crate::space::{Population, Workload};
use mps_stats::moments::Moments;
use mps_stats::rng::Rng;

/// A drawn sample: either a flat list of population indices or a
/// stratified sample with per-stratum weights.
#[derive(Debug, Clone, PartialEq)]
pub enum DrawnSample {
    /// Equally weighted workloads (simple/balanced random).
    Plain(Vec<usize>),
    /// `(weight, indices)` per stratum; weights sum to ~1.
    Stratified(Vec<(f64, Vec<usize>)>),
}

impl DrawnSample {
    /// Total number of workloads in the sample.
    pub fn len(&self) -> usize {
        match self {
            DrawnSample::Plain(v) => v.len(),
            DrawnSample::Stratified(s) => s.iter().map(|(_, v)| v.len()).sum(),
        }
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over all indices regardless of structure.
    pub fn indices(&self) -> Vec<usize> {
        match self {
            DrawnSample::Plain(v) => v.clone(),
            DrawnSample::Stratified(s) => s.iter().flat_map(|(_, v)| v.clone()).collect(),
        }
    }
}

/// A workload sampling method.
///
/// `Sync` is a supertrait so samplers can be shared by the parallel
/// resample loop ([`crate::empirical_confidence_jobs`]); every method is
/// plain immutable data, all draw state lives in the caller's [`Rng`].
pub trait Sampler: std::fmt::Debug + Sync {
    /// Method name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Draws a sample of `w` workloads from the population.
    fn draw(&self, pop: &Population, w: usize, rng: &mut Rng) -> DrawnSample;
}

/// Simple random sampling: `w` i.i.d. uniform draws (with replacement —
/// "the same workload might be selected multiple times (though unlikely in
/// a small sample)", §VI-A).
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomSampling;

impl Sampler for RandomSampling {
    fn name(&self) -> &'static str {
        "random"
    }

    fn draw(&self, pop: &Population, w: usize, rng: &mut Rng) -> DrawnSample {
        assert!(w > 0, "sample size must be positive");
        DrawnSample::Plain((0..w).map(|_| rng.index(pop.len())).collect())
    }
}

/// Balanced random sampling (§VI-A): every benchmark occurs the same
/// number of times across the whole sample (up to a remainder when
/// `w × K` is not a multiple of `B`).
///
/// The construction builds a balanced pool of benchmark slots, shuffles
/// it, and chops it into workloads — each workload is an arbitrary
/// multiset, so this sampler requires a **full** population table to map
/// workloads back to indices (the paper hits the same restriction: its
/// footnote explains balanced sampling was only applied where the full
/// population was available).
#[derive(Debug, Clone, Copy, Default)]
pub struct BalancedRandomSampling;

impl Sampler for BalancedRandomSampling {
    fn name(&self) -> &'static str {
        "bal-random"
    }

    fn draw(&self, pop: &Population, w: usize, rng: &mut Rng) -> DrawnSample {
        assert!(w > 0, "sample size must be positive");
        assert!(
            pop.is_full(),
            "balanced random sampling needs the full population table"
        );
        let b = pop.space().benchmarks();
        let k = pop.space().cores();
        let slots = w * k;
        // Base occurrences plus randomly assigned remainder.
        let base = slots / b;
        let remainder = slots % b;
        let mut pool: Vec<u16> = Vec::with_capacity(slots);
        for bench in 0..b {
            for _ in 0..base {
                pool.push(bench as u16);
            }
        }
        let extra = rng.sample_indices(b, remainder);
        for bench in extra {
            pool.push(bench as u16);
        }
        rng.shuffle(&mut pool);
        let indices = pool
            .chunks(k)
            .map(|chunk| {
                let wl = Workload::new(chunk.to_vec());
                pop.index_of(&wl)
                    .expect("full population contains all workloads")
            })
            .collect();
        DrawnSample::Plain(indices)
    }
}

/// Draws `n` indices from `members` (without replacement when possible).
fn draw_within(members: &[usize], n: usize, rng: &mut Rng) -> Vec<usize> {
    if n <= members.len() {
        rng.sample_indices(members.len(), n)
            .into_iter()
            .map(|i| members[i])
            .collect()
    } else {
        (0..n).map(|_| members[rng.index(members.len())]).collect()
    }
}

/// Benchmark stratification (§VI-B-1): formalizes the common practice of
/// defining workloads from benchmark classes.
///
/// Given a class per benchmark (e.g. the MPKI classes of Table IV), the
/// strata are the distinct class-occurrence tuples `(c1, …, cM)` with
/// `Σci = K`: all workloads with the same per-class composition form one
/// stratum (for 3 classes and 4 cores: 15 strata). Sampling is stratified
/// with proportional allocation and the estimator uses weights `Nh/N`.
#[derive(Debug, Clone)]
pub struct BenchmarkStratification {
    /// `classes[bench]` = class index of that benchmark.
    classes: Vec<usize>,
}

impl BenchmarkStratification {
    /// Creates the stratification from per-benchmark class indices.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty.
    pub fn new(classes: Vec<usize>) -> Self {
        assert!(!classes.is_empty(), "need per-benchmark classes");
        BenchmarkStratification { classes }
    }

    /// The class-count tuple ("workload type") of a workload.
    fn stratum_key(&self, w: &Workload) -> Vec<u32> {
        let m = self.classes.iter().max().copied().unwrap_or(0) + 1;
        let mut key = vec![0u32; m];
        for &x in w.benchmarks() {
            key[self.classes[x as usize]] += 1;
        }
        key
    }

    /// Groups population indices into strata, returning `(key, members)`.
    pub fn strata_of(&self, pop: &Population) -> Vec<(Vec<u32>, Vec<usize>)> {
        let mut map: std::collections::BTreeMap<Vec<u32>, Vec<usize>> = Default::default();
        for (i, w) in pop.workloads().iter().enumerate() {
            map.entry(self.stratum_key(w)).or_default().push(i);
        }
        map.into_iter().collect()
    }
}

impl Sampler for BenchmarkStratification {
    fn name(&self) -> &'static str {
        "bench-strata"
    }

    fn draw(&self, pop: &Population, w: usize, rng: &mut Rng) -> DrawnSample {
        assert!(w > 0, "sample size must be positive");
        let strata = self.strata_of(pop);
        let sizes: Vec<usize> = strata.iter().map(|(_, m)| m.len()).collect();
        let total: usize = sizes.iter().sum();
        let alloc = allocate(Allocation::Proportional, &sizes, None, w);
        let sample = strata
            .iter()
            .zip(&alloc)
            .filter(|(_, &n)| n > 0)
            .map(|((_, members), &n)| {
                (
                    members.len() as f64 / total as f64,
                    draw_within(members, n, rng),
                )
            })
            .collect();
        DrawnSample::Stratified(sample)
    }
}

/// Workload stratification (§VI-B-2) — the paper's headline method.
///
/// Using per-workload values `d(w)` measured with the *fast approximate
/// simulator* on a large population sample, workloads are sorted by
/// `d(w)` and greedily cut into strata: a new stratum starts once the
/// current one has at least `min_size` (`W_T`) members **and** its standard
/// deviation exceeds `sd_threshold` (`T_SD`). The resulting strata are
/// internally homogeneous, so tiny per-stratum samples estimate the
/// population precisely.
///
/// A stratification is valid only for one microarchitecture pair and one
/// metric (the `d(w)` it was built from).
#[derive(Debug, Clone)]
pub struct WorkloadStratification {
    /// Per-stratum population indices (contiguous runs of the d-sorted order).
    strata: Vec<Vec<usize>>,
    /// Within-stratum standard deviations of the `d` values.
    sigmas: Vec<f64>,
    population: usize,
    allocation: Allocation,
}

impl WorkloadStratification {
    /// Paper defaults: `T_SD = 0.001`, `W_T = 50` (Figure 6).
    pub const DEFAULT_SD_THRESHOLD: f64 = 0.001;
    /// Paper default minimum stratum size.
    pub const DEFAULT_MIN_SIZE: usize = 50;

    /// Builds strata from the per-workload differences `d` (aligned with
    /// the population table the sampler will be used with).
    ///
    /// # Panics
    ///
    /// Panics if `d` is empty, contains NaN, or `min_size` is zero.
    pub fn build(d: &[f64], sd_threshold: f64, min_size: usize) -> Self {
        assert!(!d.is_empty(), "need per-workload differences");
        assert!(min_size > 0, "minimum stratum size must be positive");
        assert!(d.iter().all(|x| !x.is_nan()), "d(w) must not contain NaN");
        let mut order: Vec<usize> = (0..d.len()).collect();
        order.sort_by(|&a, &b| d[a].partial_cmp(&d[b]).expect("no NaN"));

        let mut strata: Vec<Vec<usize>> = Vec::new();
        let mut current: Vec<usize> = Vec::new();
        let mut moments = Moments::new();
        for &i in &order {
            // Close the stratum when it is big enough AND too spread out
            // to absorb the next workload (paper step 4).
            if current.len() >= min_size && moments.population_std() > sd_threshold {
                strata.push(std::mem::take(&mut current));
                moments = Moments::new();
            }
            current.push(i);
            moments.push(d[i]);
        }
        if !current.is_empty() {
            strata.push(current);
        }
        let sigmas = strata_sigmas(&strata, d);
        WorkloadStratification {
            strata,
            sigmas,
            population: d.len(),
            allocation: Allocation::Proportional,
        }
    }

    /// Switches the per-stratum draw allocation rule (the paper uses
    /// proportional; Neyman is the Cochran-optimal extension).
    pub fn with_allocation(mut self, allocation: Allocation) -> Self {
        self.allocation = allocation;
        self
    }

    /// The allocation rule in effect.
    pub fn allocation(&self) -> Allocation {
        self.allocation
    }

    /// Within-stratum standard deviations of the build-time `d` values.
    pub fn sigmas(&self) -> &[f64] {
        &self.sigmas
    }

    /// Builds with the paper's default `T_SD`/`W_T`.
    pub fn with_defaults(d: &[f64]) -> Self {
        Self::build(d, Self::DEFAULT_SD_THRESHOLD, Self::DEFAULT_MIN_SIZE)
    }

    /// Number of strata.
    pub fn num_strata(&self) -> usize {
        self.strata.len()
    }

    /// Per-stratum sizes.
    pub fn sizes(&self) -> Vec<usize> {
        self.strata.iter().map(Vec::len).collect()
    }
}

impl Sampler for WorkloadStratification {
    fn name(&self) -> &'static str {
        "workload-strata"
    }

    fn draw(&self, pop: &Population, w: usize, rng: &mut Rng) -> DrawnSample {
        assert!(w > 0, "sample size must be positive");
        assert_eq!(
            pop.len(),
            self.population,
            "stratification was built for a different population"
        );
        let sizes = self.sizes();
        let alloc = allocate(self.allocation, &sizes, Some(&self.sigmas), w);
        let sample = self
            .strata
            .iter()
            .zip(&alloc)
            .filter(|(_, &n)| n > 0)
            .map(|(members, &n)| {
                (
                    members.len() as f64 / self.population as f64,
                    draw_within(members, n, rng),
                )
            })
            .collect();
        DrawnSample::Stratified(sample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop_4core() -> Population {
        Population::full(6, 4) // 126 workloads
    }

    #[test]
    fn random_sampling_draws_w_indices() {
        let pop = pop_4core();
        let mut rng = Rng::new(1);
        let s = RandomSampling.draw(&pop, 30, &mut rng);
        assert_eq!(s.len(), 30);
        match s {
            DrawnSample::Plain(v) => assert!(v.iter().all(|&i| i < pop.len())),
            _ => panic!("random sampling must be plain"),
        }
    }

    #[test]
    fn balanced_sampling_equalizes_occurrences() {
        let pop = Population::full(6, 3);
        let mut rng = Rng::new(2);
        // w × k = 12 × 3 = 36 slots over 6 benchmarks: exactly 6 each.
        let s = BalancedRandomSampling.draw(&pop, 12, &mut rng);
        assert_eq!(s.len(), 12);
        let mut occ = vec![0u32; 6];
        for i in s.indices() {
            for &x in pop.workloads()[i].benchmarks() {
                occ[x as usize] += 1;
            }
        }
        assert!(occ.iter().all(|&c| c == 6), "{occ:?}");
    }

    #[test]
    fn balanced_sampling_with_remainder_is_near_equal() {
        let pop = Population::full(5, 2);
        let mut rng = Rng::new(3);
        // 7 × 2 = 14 slots over 5 benchmarks: counts 2 or 3.
        let s = BalancedRandomSampling.draw(&pop, 7, &mut rng);
        let mut occ = vec![0u32; 5];
        for i in s.indices() {
            for &x in pop.workloads()[i].benchmarks() {
                occ[x as usize] += 1;
            }
        }
        assert!(occ.iter().all(|&c| c == 2 || c == 3), "{occ:?}");
        assert_eq!(occ.iter().sum::<u32>(), 14);
    }

    #[test]
    #[should_panic(expected = "full population")]
    fn balanced_sampling_rejects_partial_population() {
        let mut rng = Rng::new(4);
        let pop = Population::subsampled(8, 3, 20, &mut rng);
        BalancedRandomSampling.draw(&pop, 5, &mut rng);
    }

    #[test]
    fn benchmark_strata_partition_the_population() {
        let pop = pop_4core();
        // 2 classes: benchmarks 0-2 class 0, benchmarks 3-5 class 1.
        let strat = BenchmarkStratification::new(vec![0, 0, 0, 1, 1, 1]);
        let strata = strat.strata_of(&pop);
        // Class tuples (c0, c1) with c0+c1=4: 5 strata.
        assert_eq!(strata.len(), 5);
        let mut seen = vec![false; pop.len()];
        for (_, members) in &strata {
            for &i in members {
                assert!(!seen[i], "index {i} in two strata");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "partition must cover population");
    }

    #[test]
    fn benchmark_strata_sizes_match_formula() {
        // Paper: Nh = Π multiset(bi, ci). For b0=3, b1=3, K=4:
        // stratum (4,0): multiset(3,4)=15; (3,1): multiset(3,3)*3=30;
        // (2,2): 6*6=36; (1,3): 30; (0,4): 15. Total 126 ✓.
        let pop = pop_4core();
        let strat = BenchmarkStratification::new(vec![0, 0, 0, 1, 1, 1]);
        let sizes: Vec<usize> = strat.strata_of(&pop).iter().map(|(_, m)| m.len()).collect();
        assert_eq!(sizes, vec![15, 30, 36, 30, 15]);
    }

    #[test]
    fn benchmark_stratified_draw_weights_sum_to_one() {
        let pop = pop_4core();
        let strat = BenchmarkStratification::new(vec![0, 1, 2, 0, 1, 2]);
        let mut rng = Rng::new(5);
        let s = strat.draw(&pop, 30, &mut rng);
        assert_eq!(s.len(), 30);
        match s {
            DrawnSample::Stratified(strata) => {
                let total: f64 = strata.iter().map(|(w, _)| w).sum();
                assert!((total - 1.0).abs() < 1e-9, "weights sum to {total}");
                for (_, members) in &strata {
                    assert!(!members.is_empty());
                }
            }
            _ => panic!("must be stratified"),
        }
    }

    #[test]
    fn workload_strata_partition_and_order() {
        let d: Vec<f64> = (0..500).map(|i| (i as f64 * 0.7).sin()).collect();
        let ws = WorkloadStratification::build(&d, 0.05, 20);
        assert!(ws.num_strata() > 1);
        let sizes = ws.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 500);
        assert!(sizes.iter().all(|&s| s >= 20), "{sizes:?}");
        // Strata are contiguous in d-sorted order: max(d of stratum h) ≤
        // min(d of stratum h+1).
        let maxmin: Vec<(f64, f64)> = ws
            .strata
            .iter()
            .map(|m| {
                let vals: Vec<f64> = m.iter().map(|&i| d[i]).collect();
                (
                    vals.iter().cloned().fold(f64::INFINITY, f64::min),
                    vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                )
            })
            .collect();
        for pair in maxmin.windows(2) {
            assert!(pair[0].1 <= pair[1].0 + 1e-12);
        }
    }

    #[test]
    fn homogeneous_d_yields_single_stratum() {
        let d = vec![0.5; 300];
        let ws = WorkloadStratification::with_defaults(&d);
        assert_eq!(ws.num_strata(), 1);
    }

    #[test]
    fn tight_threshold_yields_many_strata() {
        let d: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0).collect();
        let loose = WorkloadStratification::build(&d, 0.2, 10).num_strata();
        let tight = WorkloadStratification::build(&d, 0.001, 10).num_strata();
        assert!(tight > loose, "tight={tight} loose={loose}");
    }

    #[test]
    fn workload_stratified_draw_covers_strata() {
        let pop = pop_4core();
        let d: Vec<f64> = (0..pop.len()).map(|i| (i as f64 * 0.31).sin()).collect();
        let ws = WorkloadStratification::build(&d, 0.1, 10);
        let mut rng = Rng::new(6);
        let w = ws.num_strata() + 5;
        let s = ws.draw(&pop, w, &mut rng);
        assert_eq!(s.len(), w);
        match s {
            DrawnSample::Stratified(strata) => {
                assert_eq!(strata.len(), ws.num_strata());
            }
            _ => panic!("must be stratified"),
        }
    }

    #[test]
    fn draw_fewer_than_strata_uses_largest() {
        let pop = pop_4core();
        let d: Vec<f64> = (0..pop.len()).map(|i| i as f64).collect();
        let ws = WorkloadStratification::build(&d, 0.5, 10);
        assert!(ws.num_strata() > 3);
        let mut rng = Rng::new(7);
        let s = ws.draw(&pop, 2, &mut rng);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "different population")]
    fn stratification_population_mismatch_panics() {
        let pop = pop_4core();
        let ws = WorkloadStratification::with_defaults(&[0.0; 10]);
        ws.draw(&pop, 5, &mut Rng::new(8));
    }

    #[test]
    fn paper_strata_counts_shape() {
        // §VI-B-2: for 4 cores / WSU, DRRIP-FIFO yields 34 strata,
        // DRRIP-LRU 15, FIFO-RND 17 with defaults — i.e. tens of strata
        // from a 12650-workload population. Check the same order of
        // magnitude arises from a comparable synthetic d distribution.
        let mut rng = Rng::new(9);
        let d: Vec<f64> = (0..12650).map(|_| rng.next_gaussian() * 0.02).collect();
        let ws = WorkloadStratification::with_defaults(&d);
        assert!(
            (5..200).contains(&ws.num_strata()),
            "strata = {}",
            ws.num_strata()
        );
    }
}

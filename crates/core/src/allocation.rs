//! Sample allocation across strata.
//!
//! The paper's stratified samplers allocate draws *proportionally* to
//! stratum sizes (`Wh ∝ Nh`). Classical sampling theory (Cochran, the
//! paper's reference [15]) also defines **Neyman allocation**,
//! `Wh ∝ Nh·σh`, which is variance-optimal when the within-stratum
//! standard deviations `σh` are known — and with an approximate simulator
//! they *are* known. This module makes the allocation rule a pluggable
//! strategy; the workload-stratified sampler accepts either.

use mps_stats::Moments;

/// How a stratified sampler splits `w` draws across strata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Allocation {
    /// `Wh ∝ Nh` — the paper's choice (needs only stratum sizes).
    #[default]
    Proportional,
    /// `Wh ∝ Nh·σh` — Cochran's variance-optimal rule (needs the
    /// within-stratum standard deviations, available from the approximate
    /// simulation that built the strata).
    Neyman,
}

/// Computes per-stratum draw counts for `w` total draws.
///
/// `sizes[h]` is the stratum population size; `sigmas[h]` its
/// within-stratum standard deviation (used by Neyman only; pass `None`
/// for proportional). Guarantees:
///
/// * the counts sum to exactly `w`,
/// * every non-empty stratum gets at least one draw when `w` allows,
/// * no stratum is allocated more draws than members while any other
///   stratum has room.
///
/// # Panics
///
/// Panics if all strata are empty, or Neyman allocation is requested
/// without sigmas, or the arrays disagree in length.
pub fn allocate(
    allocation: Allocation,
    sizes: &[usize],
    sigmas: Option<&[f64]>,
    w: usize,
) -> Vec<usize> {
    let total: usize = sizes.iter().sum();
    assert!(total > 0, "strata must cover at least one workload");
    let weights: Vec<f64> = match allocation {
        Allocation::Proportional => sizes.iter().map(|&n| n as f64).collect(),
        Allocation::Neyman => {
            let sigmas = sigmas.expect("Neyman allocation needs per-stratum sigmas");
            assert_eq!(sigmas.len(), sizes.len(), "one sigma per stratum required");
            sizes
                .iter()
                .zip(sigmas)
                .map(|(&n, &s)| {
                    assert!(s >= 0.0 && !s.is_nan(), "sigma must be non-negative");
                    // A zero-variance stratum still needs one sample to
                    // contribute its mean; give it a tiny weight.
                    n as f64 * s.max(1e-12)
                })
                .collect()
        }
    };
    allocate_by_weight(sizes, &weights, w)
}

/// Deficit-greedy allocation toward ideal shares `w·weight/Σweights`.
fn allocate_by_weight(sizes: &[usize], weights: &[f64], w: usize) -> Vec<usize> {
    let live: Vec<usize> = (0..sizes.len()).filter(|&h| sizes[h] > 0).collect();
    let mut alloc = vec![0usize; sizes.len()];
    if w < live.len() {
        let mut by_weight = live.clone();
        by_weight.sort_by(|&a, &b| {
            weights[b]
                .partial_cmp(&weights[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for &h in by_weight.iter().take(w) {
            alloc[h] = 1;
        }
        return alloc;
    }
    for &h in &live {
        alloc[h] = 1;
    }
    let weight_sum: f64 = live.iter().map(|&h| weights[h]).sum();
    let ideal = |h: usize| w as f64 * weights[h] / weight_sum.max(f64::MIN_POSITIVE);
    let cmp = |a: &f64, b: &f64| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal);
    for _ in live.len()..w {
        let deficit = |h: usize, alloc: &[usize]| ideal(h) - alloc[h] as f64;
        let pick = live
            .iter()
            .copied()
            .filter(|&h| alloc[h] < sizes[h])
            .max_by(|&a, &b| cmp(&deficit(a, &alloc), &deficit(b, &alloc)))
            .or_else(|| {
                live.iter()
                    .copied()
                    .max_by(|&a, &b| cmp(&deficit(a, &alloc), &deficit(b, &alloc)))
            })
            .expect("at least one live stratum");
        alloc[pick] += 1;
    }
    alloc
}

/// Convenience: per-stratum standard deviations of `d` values grouped by
/// the given strata (population σ).
pub fn strata_sigmas(strata: &[Vec<usize>], d: &[f64]) -> Vec<f64> {
    strata
        .iter()
        .map(|members| {
            let m: Moments = members.iter().map(|&i| d[i]).collect();
            if m.count() == 0 {
                0.0
            } else {
                m.population_std()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_matches_shares() {
        let a = allocate(Allocation::Proportional, &[50, 30, 20], None, 10);
        assert_eq!(a, vec![5, 3, 2]);
    }

    #[test]
    fn neyman_shifts_draws_to_noisy_strata() {
        // Equal sizes, very different sigmas: the noisy stratum gets most
        // of the budget.
        let a = allocate(Allocation::Neyman, &[100, 100], Some(&[0.001, 0.1]), 20);
        assert_eq!(a.iter().sum::<usize>(), 20);
        assert!(a[1] > 3 * a[0], "{a:?}");
    }

    #[test]
    fn neyman_with_equal_sigmas_is_proportional() {
        let p = allocate(Allocation::Proportional, &[60, 40], None, 10);
        let n = allocate(Allocation::Neyman, &[60, 40], Some(&[0.5, 0.5]), 10);
        assert_eq!(p, n);
    }

    #[test]
    fn zero_sigma_stratum_still_sampled_once() {
        let a = allocate(Allocation::Neyman, &[100, 100], Some(&[0.0, 1.0]), 10);
        assert_eq!(a.iter().sum::<usize>(), 10);
        assert!(a[0] >= 1);
    }

    #[test]
    fn totals_and_caps_respected() {
        let a = allocate(Allocation::Proportional, &[2, 2, 96], None, 50);
        assert_eq!(a.iter().sum::<usize>(), 50);
        assert!(a[0] <= 2 && a[1] <= 2);
        let a = allocate(Allocation::Neyman, &[1, 1, 98], Some(&[5.0, 5.0, 0.01]), 30);
        assert_eq!(a.iter().sum::<usize>(), 30);
        assert!(a[0] <= 1 && a[1] <= 1);
    }

    #[test]
    fn fewer_draws_than_strata_picks_heaviest() {
        let a = allocate(Allocation::Neyman, &[10, 10, 10], Some(&[0.1, 5.0, 1.0]), 2);
        assert_eq!(a.iter().sum::<usize>(), 2);
        assert_eq!(a[1], 1);
        assert_eq!(a[2], 1);
        assert_eq!(a[0], 0);
    }

    #[test]
    #[should_panic(expected = "needs per-stratum sigmas")]
    fn neyman_without_sigmas_panics() {
        allocate(Allocation::Neyman, &[10], None, 5);
    }

    #[test]
    fn strata_sigmas_computes_groupwise() {
        let d = [1.0, 1.0, 5.0, 9.0];
        let strata = vec![vec![0, 1], vec![2, 3]];
        let s = strata_sigmas(&strata, &d);
        assert_eq!(s[0], 0.0);
        assert!((s[1] - 2.0).abs() < 1e-12);
    }
}

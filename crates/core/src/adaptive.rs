//! Adaptive sample sizing: the §VII procedure as an executable algorithm.
//!
//! The paper's guideline is a human recipe: simulate a pilot, estimate
//! `cv`, pick the method. This module mechanizes it two ways:
//!
//! * [`two_stage_study`] — the literal §VII two-stage procedure: a pilot
//!   random sample estimates `cv`; the rule `W = 8·cv²` sizes (and draws)
//!   the final sample; the verdict comes from the final sample only.
//! * [`SequentialComparison`] — a sequential alternative: workloads are
//!   drawn one at a time and the study stops as soon as the running CLT
//!   confidence leaves the `[α, 1−α]` indifference band (or a budget is
//!   exhausted) — often far earlier than the fixed-size rule when the
//!   effect is large, while never exceeding the budget when machines are
//!   equivalent.
//!
//! Both operate on a [`PairData`] table (normally produced by approximate
//! simulation), drawing workloads through any RNG stream, so their
//! operating characteristics (expected sample size, error rate) can be
//! measured by replication — see the tests.

use crate::estimate::PairData;
use crate::space::Population;
use mps_stats::confidence::degree_of_confidence_inv_cv;
use mps_stats::rng::Rng;
use mps_stats::Moments;

/// Outcome of an adaptive study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// Y concluded better than X.
    YWins,
    /// X concluded better than Y.
    XWins,
    /// No conclusion within the budget (machines likely equivalent).
    Undecided,
}

/// Result of a [`two_stage_study`] or a sequential run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudyOutcome {
    /// The conclusion.
    pub verdict: Verdict,
    /// Workloads actually simulated (pilot + final, or sequential draws).
    pub workloads_used: usize,
    /// Final confidence that Y beats X (CLT estimate on the used sample).
    pub confidence: f64,
}

/// The §VII two-stage procedure: `pilot` random workloads estimate `cv`,
/// then the final sample of `min(8·cv², budget)` fresh random workloads
/// decides. A pilot `|cv| > 10` short-circuits to [`Verdict::Undecided`].
///
/// # Panics
///
/// Panics if `pilot` is zero or the population and data disagree.
pub fn two_stage_study(
    pop: &Population,
    data: &PairData,
    pilot: usize,
    budget: usize,
    rng: &mut Rng,
) -> StudyOutcome {
    assert!(pilot > 0, "need a non-empty pilot");
    assert_eq!(pop.len(), data.len(), "population and data must align");
    let d = data.differences();
    let mut pilot_m = Moments::new();
    for _ in 0..pilot {
        pilot_m.push(d[rng.index(pop.len())]);
    }
    let cv = pilot_m.cv().abs();
    if !cv.is_finite() && pilot_m.mean() == 0.0 {
        return StudyOutcome {
            verdict: Verdict::Undecided,
            workloads_used: pilot,
            confidence: 0.5,
        };
    }
    if cv > 10.0 {
        return StudyOutcome {
            verdict: Verdict::Undecided,
            workloads_used: pilot,
            confidence: 0.5,
        };
    }
    let w = mps_stats::required_sample_size(cv).clamp(1, budget);
    let mut final_m = Moments::new();
    for _ in 0..w {
        final_m.push(d[rng.index(pop.len())]);
    }
    let confidence = degree_of_confidence_inv_cv(final_m.inv_cv(), w);
    StudyOutcome {
        verdict: if final_m.mean() > 0.0 {
            Verdict::YWins
        } else if final_m.mean() < 0.0 {
            Verdict::XWins
        } else {
            Verdict::Undecided
        },
        workloads_used: pilot + w,
        confidence,
    }
}

/// Sequential comparison with a CLT stopping rule.
///
/// Feed per-workload differences one at a time with
/// [`SequentialComparison::observe`]; [`SequentialComparison::decision`]
/// returns a verdict once the running confidence leaves the indifference
/// band. A `min_observations` floor guards the CLT against tiny-sample
/// flukes.
#[derive(Debug, Clone)]
pub struct SequentialComparison {
    moments: Moments,
    /// One-sided error target α: stop when confidence ≥ 1−α (Y wins) or
    /// ≤ α (X wins).
    alpha: f64,
    min_observations: u64,
}

impl SequentialComparison {
    /// Creates a sequential test with error target `alpha` (e.g. 0.01)
    /// and a minimum number of observations before stopping is allowed.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha < 0.5` and `min_observations ≥ 2`.
    pub fn new(alpha: f64, min_observations: u64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 0.5,
            "alpha must be in (0, 0.5), got {alpha}"
        );
        assert!(min_observations >= 2, "need at least 2 observations");
        SequentialComparison {
            moments: Moments::new(),
            alpha,
            min_observations,
        }
    }

    /// Adds one per-workload difference `d(w)`.
    pub fn observe(&mut self, d: f64) {
        self.moments.push(d);
    }

    /// Observations so far.
    pub fn observations(&self) -> u64 {
        self.moments.count()
    }

    /// Running confidence that Y beats X.
    pub fn confidence(&self) -> f64 {
        if self.moments.count() < 2 {
            return 0.5;
        }
        degree_of_confidence_inv_cv(self.moments.inv_cv(), self.moments.count() as usize)
    }

    /// The current decision, if the stopping rule fires.
    pub fn decision(&self) -> Option<Verdict> {
        if self.moments.count() < self.min_observations {
            return None;
        }
        let c = self.confidence();
        if c >= 1.0 - self.alpha {
            Some(Verdict::YWins)
        } else if c <= self.alpha {
            Some(Verdict::XWins)
        } else {
            None
        }
    }

    /// Runs the sequential study on a data table, drawing random
    /// workloads until a decision or `budget` draws.
    pub fn run(
        mut self,
        pop: &Population,
        data: &PairData,
        budget: usize,
        rng: &mut Rng,
    ) -> StudyOutcome {
        assert_eq!(pop.len(), data.len(), "population and data must align");
        let d = data.differences();
        for _ in 0..budget {
            self.observe(d[rng.index(pop.len())]);
            if let Some(verdict) = self.decision() {
                return StudyOutcome {
                    verdict,
                    workloads_used: self.observations() as usize,
                    confidence: self.confidence(),
                };
            }
        }
        StudyOutcome {
            verdict: Verdict::Undecided,
            workloads_used: self.observations() as usize,
            confidence: self.confidence(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_metrics::ThroughputMetric;

    fn data(n: usize, gap: f64, noise: f64, seed: u64) -> (Population, PairData) {
        let mut rng = Rng::new(seed);
        let pop = Population::full(10, 2); // 55
        let n = n.max(pop.len());
        let _ = n;
        let t_x: Vec<f64> = (0..pop.len())
            .map(|_| 1.0 + 0.1 * rng.next_gaussian())
            .collect();
        let t_y: Vec<f64> = t_x
            .iter()
            .map(|&x| x + gap + noise * rng.next_gaussian())
            .collect();
        (
            pop,
            PairData::new(ThroughputMetric::WeightedSpeedup, t_x, t_y),
        )
    }

    #[test]
    fn two_stage_decides_clear_effects_quickly() {
        let (pop, d) = data(0, 0.2, 0.02, 1);
        let mut rng = Rng::new(2);
        let out = two_stage_study(&pop, &d, 10, 500, &mut rng);
        assert_eq!(out.verdict, Verdict::YWins);
        assert!(out.workloads_used < 30, "{out:?}");
        assert!(out.confidence > 0.95);
    }

    #[test]
    fn two_stage_undecided_for_equivalent_machines() {
        let (pop, d) = data(0, 0.0, 0.05, 3);
        let mut rng = Rng::new(4);
        let mut undecided = 0;
        for _ in 0..20 {
            let out = two_stage_study(&pop, &d, 15, 300, &mut rng);
            if out.verdict == Verdict::Undecided || out.confidence < 0.99 {
                undecided += 1;
            }
        }
        assert!(
            undecided >= 15,
            "equivalent machines mostly undecided: {undecided}/20"
        );
    }

    #[test]
    fn sequential_stops_earlier_on_bigger_effects() {
        let mut rng = Rng::new(5);
        let mut used = |gap: f64| {
            let (pop, d) = data(0, gap, 0.1, 6);
            let mut total = 0;
            for _ in 0..30 {
                let s = SequentialComparison::new(0.01, 5);
                total += s.run(&pop, &d, 2_000, &mut rng).workloads_used;
            }
            total / 30
        };
        let big = used(0.3);
        let small = used(0.05);
        assert!(
            big < small,
            "bigger effect must stop earlier: {big} vs {small}"
        );
    }

    #[test]
    fn sequential_is_rarely_wrong_on_real_effects() {
        let (pop, d) = data(0, 0.08, 0.1, 7);
        let mut rng = Rng::new(8);
        let mut wrong = 0;
        let mut undecided = 0;
        for _ in 0..50 {
            let s = SequentialComparison::new(0.01, 5);
            match s.run(&pop, &d, 3_000, &mut rng).verdict {
                Verdict::YWins => {}
                Verdict::XWins => wrong += 1,
                Verdict::Undecided => undecided += 1,
            }
        }
        assert!(wrong <= 2, "wrong verdicts: {wrong}/50");
        assert!(undecided <= 10, "undecided: {undecided}/50");
    }

    #[test]
    fn sequential_respects_minimum_observations() {
        let mut s = SequentialComparison::new(0.05, 10);
        for _ in 0..9 {
            s.observe(1.0); // wildly decisive, but below the floor
        }
        assert_eq!(s.decision(), None);
        s.observe(1.0);
        assert_eq!(s.decision(), Some(Verdict::YWins));
    }

    #[test]
    fn confidence_is_half_before_data() {
        let s = SequentialComparison::new(0.1, 2);
        assert_eq!(s.confidence(), 0.5);
        assert_eq!(s.observations(), 0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn bad_alpha_panics() {
        SequentialComparison::new(0.7, 5);
    }

    #[test]
    fn sequential_beats_fixed_rule_on_average_for_large_gaps() {
        // The whole point of the sequential extension: with cv ≈ 1 the
        // fixed rule uses 8·cv² ≈ 8-plus-pilot; with cv ≈ 0.3 it still
        // pays the pilot, while the sequential test stops at the floor.
        let (pop, d) = data(0, 0.5, 0.1, 9);
        let mut rng = Rng::new(10);
        let mut seq_total = 0;
        let mut fixed_total = 0;
        for _ in 0..20 {
            let s = SequentialComparison::new(0.01, 5);
            seq_total += s.run(&pop, &d, 1_000, &mut rng).workloads_used;
            fixed_total += two_stage_study(&pop, &d, 10, 1_000, &mut rng).workloads_used;
        }
        assert!(
            seq_total < fixed_total,
            "sequential {seq_total} vs two-stage {fixed_total}"
        );
    }
}

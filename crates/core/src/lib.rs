//! Workload sampling for multicore throughput evaluation — the primary
//! contribution of *"Selecting Benchmark Combinations for the Evaluation of
//! Multicore Throughput"* (Velásquez, Michaud, Seznec — ISPASS 2013).
//!
//! Given `B` single-thread benchmarks and `K` identical cores, the
//! population of multiprogrammed workloads (size-`K` multisets of
//! benchmarks) has `N = C(B+K−1, K)` members — far too many to simulate in
//! detail. This crate implements everything the paper proposes for picking
//! a *representative* sample:
//!
//! * [`space`] — the workload population: enumeration, exact uniform
//!   sampling via multiset rank/unrank, and [`Population`] tables,
//! * [`sampler`] — the four sampling methods compared in the paper:
//!   simple random, **balanced random** (every benchmark occurs equally
//!   often), **benchmark stratification** (strata from per-benchmark
//!   classes) and **workload stratification** (strata cut from the
//!   distribution of the approximate per-workload difference `d(w)`),
//! * [`estimate`] — per-sample throughput estimators (equations (2) and
//!   (9)), the empirical degree of confidence, and the analytical model
//!   (equation (5)),
//! * [`guideline`] — the practical §VII decision procedure and the
//!   CPU-hours overhead model of §VII-A.
//!
//! # Example: how many random workloads do I need?
//!
//! ```
//! use mps_sampling::{Population, PairData, analytic_confidence};
//! use mps_metrics::ThroughputMetric;
//!
//! // A toy 3-benchmark, 2-core study: per-workload throughputs of two
//! // machines measured with a fast approximate simulator.
//! let pop = Population::full(3, 2);
//! let t_x = vec![1.00, 0.80, 0.90, 0.70, 0.60, 0.50];
//! let t_y = vec![1.05, 0.88, 0.92, 0.76, 0.61, 0.58];
//! let data = PairData::new(ThroughputMetric::IpcThroughput, t_x, t_y);
//!
//! // Y wins everywhere: few workloads needed.
//! assert!(data.comparison().required_sample_size() < 20);
//! assert!(analytic_confidence(&data, 10) > 0.9);
//! # let _ = pop;
//! ```

pub mod adaptive;
pub mod allocation;
pub mod cluster;
pub mod estimate;
pub mod guideline;
pub mod sampler;
pub mod space;
pub mod speedup;

pub use adaptive::{two_stage_study, SequentialComparison, StudyOutcome, Verdict};
pub use allocation::{allocate, Allocation};
pub use cluster::{benchmark_classes_from_features, kmeans, ClusterSampling, KMeansResult};
pub use estimate::{
    analytic_confidence, empirical_confidence, empirical_confidence_jobs,
    empirical_confidence_seeded, sample_decides_y_wins, sample_throughput_pair, PairData,
};
pub use guideline::{recommend, OverheadModel, Recommendation};
pub use sampler::{
    BalancedRandomSampling, BenchmarkStratification, DrawnSample, RandomSampling, Sampler,
    WorkloadStratification,
};
pub use space::{Population, Workload, WorkloadSpace};
pub use speedup::{
    population_speedup, sample_size_for_speedup_accuracy, speedup_interval, SpeedupInterval,
};

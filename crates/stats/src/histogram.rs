//! Equi-width histograms.
//!
//! Workload stratification is, at heart, a statement about the *shape* of
//! the `d(w)` distribution — heavy tails and multimodality are what make
//! random sampling expensive and stratification cheap. This histogram is
//! the diagnostic used by the harness to show that shape, and a reusable
//! building block for any empirical-distribution inspection.

/// An equi-width histogram over a closed range.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or the range is empty/NaN.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(lo < hi, "range [{lo}, {hi}] is empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            underflow: 0,
            overflow: 0,
        }
    }

    /// Creates a histogram spanning the data's own range and fills it.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or contains NaN.
    pub fn of(xs: &[f64], bins: usize) -> Self {
        assert!(!xs.is_empty(), "cannot histogram an empty slice");
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in xs {
            assert!(!x.is_nan(), "NaN in histogram input");
            lo = lo.min(x);
            hi = hi.max(x);
        }
        if lo == hi {
            // Degenerate distribution: widen symmetrically.
            lo -= 0.5;
            hi += 0.5;
        }
        let mut h = Histogram::new(lo, hi, bins);
        for &x in xs {
            h.push(x);
        }
        h
    }

    /// Adds an observation; out-of-range values are counted separately.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x > self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `(underflow, overflow)` counts.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Centre of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Index of the fullest bin.
    pub fn mode_bin(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(i, _)| i)
            .expect("bins is non-zero")
    }

    /// A compact multi-line text rendering, one row per bin.
    pub fn render(&self, width: usize) -> String {
        let max = *self.counts.iter().max().unwrap_or(&1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = if max == 0 {
                0
            } else {
                (c as f64 / max as f64 * width as f64).round() as usize
            };
            out.push_str(&format!(
                "{:>12.5} | {:<width$} {}\n",
                self.bin_center(i),
                "#".repeat(bar),
                c,
                width = width
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_land_in_the_right_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.6, 9.9, 10.0] {
            h.push(x);
        }
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 2, "right edge is inclusive");
        assert_eq!(h.total(), 5);
        assert_eq!(h.out_of_range(), (0, 0));
    }

    #[test]
    fn out_of_range_is_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(-1.0);
        h.push(2.0);
        h.push(0.5);
        assert_eq!(h.out_of_range(), (1, 1));
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts().iter().sum::<u64>(), 1);
    }

    #[test]
    fn of_spans_the_data() {
        let xs = [3.0, 5.0, 4.0, 3.5];
        let h = Histogram::of(&xs, 4);
        assert_eq!(h.total(), 4);
        assert_eq!(h.out_of_range(), (0, 0));
        assert_eq!(h.counts().iter().sum::<u64>(), 4);
    }

    #[test]
    fn degenerate_data_widens() {
        let h = Histogram::of(&[7.0; 10], 3);
        assert_eq!(h.total(), 10);
        assert_eq!(h.counts().iter().sum::<u64>(), 10);
    }

    #[test]
    fn mode_and_centers() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        for _ in 0..5 {
            h.push(1.5);
        }
        h.push(0.1);
        assert_eq!(h.mode_bin(), 1);
        assert!((h.bin_center(1) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn render_scales_bars() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        for _ in 0..10 {
            h.push(0.5);
        }
        h.push(1.5);
        let r = h.render(20);
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].matches('#').count() > lines[1].matches('#').count());
        assert!(lines[0].ends_with("10"));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_input_panics() {
        Histogram::of(&[], 3);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_input_panics() {
        Histogram::of(&[1.0, f64::NAN], 3);
    }
}

//! The analytical random-sampling confidence model (paper Section III).
//!
//! When `W` workloads are drawn at random, the sample throughput difference
//! `D = A-mean_w d(w)` is approximately normal by the CLT. The degree of
//! confidence that microarchitecture Y beats X is (paper equation (5)):
//!
//! ```text
//! Pr(D ≥ 0) = ½ · [1 + erf( (1/cv) · √(W/2) )]
//! ```
//!
//! with `cv = σ/µ` the coefficient of variation of the per-workload
//! difference `d(w)`. Confidence saturates (→0 or →1) at
//! `|1/cv|·√(W/2) = 2`, giving the sample-size rule `W = 8·cv²`
//! (paper equation (8)).

use crate::erf::{erf, inverse_erf};

/// Degree of confidence that Y outperforms X for a random sample of `w`
/// workloads, given `cv` of the per-workload difference `d(w)`
/// (paper equation (5)).
///
/// A positive `cv` (i.e. positive mean difference) gives confidence > ½;
/// a negative one gives confidence < ½. A `cv` of exactly 0 (all `d(w)`
/// identical and nonzero would make `cv = 0`) yields full confidence in the
/// direction of the mean — the model receives that as ±0, so callers should
/// use [`degree_of_confidence_inv_cv`] with ±∞ instead if they have `1/cv`.
///
/// # Example
///
/// ```
/// use mps_stats::degree_of_confidence;
///
/// // cv = 1, W = 8 (the paper's LRU-vs-FIFO example): ½(1+erf(2)) ≈ 0.9977
/// let c = degree_of_confidence(1.0, 8);
/// assert!((c - 0.9977).abs() < 1e-3);
/// ```
pub fn degree_of_confidence(cv: f64, w: usize) -> f64 {
    degree_of_confidence_inv_cv(1.0 / cv, w)
}

/// Same as [`degree_of_confidence`] but parameterized by `1/cv = µ/σ`,
/// the quantity the paper plots in Figures 4 and 5.
///
/// `1/cv = +∞` (zero variance, positive mean) gives 1; `−∞` gives 0.
pub fn degree_of_confidence_inv_cv(inv_cv: f64, w: usize) -> f64 {
    if inv_cv.is_nan() {
        return f64::NAN;
    }
    let x = inv_cv * (w as f64 / 2.0).sqrt();
    0.5 * (1.0 + erf(x))
}

/// Required random-sample size `W = ⌈8·cv²⌉` (paper equation (8)): the size
/// at which confidence becomes "very close to 0 or 1"
/// (`|1/cv|·√(W/2) = 2`, i.e. confidence ≈ 0.9977 when Y truly wins).
///
/// # Example
///
/// ```
/// use mps_stats::required_sample_size;
///
/// assert_eq!(required_sample_size(1.0), 8);   // LRU vs FIFO
/// assert_eq!(required_sample_size(2.5), 50);  // RND vs FIFO under IPCT
/// ```
pub fn required_sample_size(cv: f64) -> usize {
    let w = 8.0 * cv * cv;
    if !w.is_finite() {
        return usize::MAX;
    }
    (w.ceil() as usize).max(1)
}

/// Sample size needed to reach a given one-sided confidence level,
/// inverting equation (5): `W = 2·(cv · erf⁻¹(2c−1))²`.
///
/// This generalizes the paper's fixed rule (which corresponds to
/// `c = ½(1+erf(2)) ≈ 0.99766`). Returns at least 1.
///
/// # Example
///
/// ```
/// use mps_stats::confidence::sample_size_for_confidence;
///
/// // Matching the paper's rule-of-thumb target recovers W ≈ 8·cv²
/// // (9 rather than 8 is possible from ceiling after round-tripping erf).
/// let target = 0.5 * (1.0 + mps_stats::erf(2.0));
/// let w = sample_size_for_confidence(1.0, target);
/// assert!((8..=9).contains(&w));
/// ```
pub fn sample_size_for_confidence(cv: f64, confidence: f64) -> usize {
    assert!(
        (0.5..1.0).contains(&confidence),
        "confidence must be in [0.5, 1), got {confidence}"
    );
    let z = inverse_erf(2.0 * confidence - 1.0);
    let w = 2.0 * (cv * z) * (cv * z);
    if !w.is_finite() {
        return usize::MAX;
    }
    (w.ceil() as usize).max(1)
}

/// The abscissa of the paper's Figure 1: `(1/cv)·√(W/2)`.
pub fn confidence_abscissa(inv_cv: f64, w: usize) -> f64 {
    inv_cv * (w as f64 / 2.0).sqrt()
}

/// Verdict of the paper's §VII practical guideline given an estimated `cv`.
///
/// * `cv > 10` — the two machines are throughput-equivalent on average;
///   no reasonable sample size separates them.
/// * `cv < 2` — a few tens of random workloads suffice; use balanced random
///   sampling.
/// * `2 ≤ cv ≤ 10` — use workload stratification.
///
/// This enum only encodes the statistical verdict; the full guideline
/// engine, including overhead estimates, lives in the `mps-sampling` crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CvRegime {
    /// `|cv| < 2`: random / balanced-random sampling is practical.
    SmallSampleSuffices,
    /// `2 ≤ |cv| ≤ 10`: use workload stratification.
    StratificationRecommended,
    /// `|cv| > 10`: declare the machines equivalent.
    Equivalent,
}

impl CvRegime {
    /// Classifies a coefficient of variation per the paper's §VII bounds.
    ///
    /// Non-finite `cv` (zero mean difference) classifies as [`CvRegime::Equivalent`].
    pub fn classify(cv: f64) -> Self {
        let a = cv.abs();
        if !a.is_finite() || a > 10.0 {
            CvRegime::Equivalent
        } else if a < 2.0 {
            CvRegime::SmallSampleSuffices
        } else {
            CvRegime::StratificationRecommended
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confidence_is_half_at_zero_mean() {
        assert!((degree_of_confidence_inv_cv(0.0, 100) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn confidence_monotone_in_w() {
        let mut prev = 0.5;
        for w in [1, 2, 4, 8, 16, 32, 64, 128] {
            let c = degree_of_confidence(2.0, w);
            assert!(c >= prev, "w={w}");
            prev = c;
        }
    }

    #[test]
    fn confidence_monotone_in_inv_cv() {
        let mut prev = 0.0;
        for icv in [-2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0] {
            let c = degree_of_confidence_inv_cv(icv, 10);
            assert!(c >= prev, "icv={icv}");
            prev = c;
        }
    }

    #[test]
    fn negative_inv_cv_mirrors_positive() {
        for w in [5, 50, 500] {
            let up = degree_of_confidence_inv_cv(0.7, w);
            let down = degree_of_confidence_inv_cv(-0.7, w);
            assert!((up + down - 1.0).abs() < 1e-12, "w={w}");
        }
    }

    #[test]
    fn paper_rule_of_thumb_confidence() {
        // At W = 8·cv², the abscissa is exactly 2 and confidence is
        // ½(1+erf(2)) ≈ 0.99766.
        for cv in [0.5f64, 1.0, 2.0, 5.0] {
            let w = (8.0 * cv * cv).round() as usize;
            let c = degree_of_confidence(cv, w);
            assert!((c - 0.5 * (1.0 + erf(2.0))).abs() < 1e-3, "cv={cv}");
        }
    }

    #[test]
    fn required_sample_size_examples_from_paper() {
        // §V-B: LRU vs FIFO has cv ≈ 1 → ~8 workloads.
        assert_eq!(required_sample_size(1.0), 8);
        // §V-C: RND vs FIFO, IPCT: |1/cv| ≈ 0.4 → cv = 2.5 → 50 workloads;
        // HSU: |1/cv| ≈ 0.5 → cv = 2 → 32 workloads.
        assert_eq!(required_sample_size(2.5), 50);
        assert_eq!(required_sample_size(2.0), 32);
    }

    #[test]
    fn required_sample_size_is_at_least_one() {
        assert_eq!(required_sample_size(0.0), 1);
        assert_eq!(required_sample_size(0.1), 1);
    }

    #[test]
    fn required_sample_size_infinite_cv() {
        assert_eq!(required_sample_size(f64::INFINITY), usize::MAX);
    }

    #[test]
    fn sample_size_for_confidence_monotone() {
        let mut prev = 0;
        for c in [0.6, 0.75, 0.9, 0.99, 0.999] {
            let w = sample_size_for_confidence(3.0, c);
            assert!(w >= prev, "c={c}");
            prev = w;
        }
    }

    #[test]
    fn sample_size_for_confidence_round_trips() {
        let cv = 3.0;
        for target in [0.75, 0.9, 0.99] {
            let w = sample_size_for_confidence(cv, target);
            let c = degree_of_confidence(cv, w);
            assert!(c >= target - 1e-9, "target={target} got={c}");
            if w > 1 {
                let c_less = degree_of_confidence(cv, w - 1);
                assert!(c_less < target + 1e-2, "target={target}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "confidence must be in")]
    fn sample_size_for_confidence_rejects_bad_target() {
        sample_size_for_confidence(1.0, 1.0);
    }

    #[test]
    fn cv_regime_boundaries() {
        assert_eq!(CvRegime::classify(0.5), CvRegime::SmallSampleSuffices);
        assert_eq!(CvRegime::classify(1.99), CvRegime::SmallSampleSuffices);
        assert_eq!(CvRegime::classify(2.0), CvRegime::StratificationRecommended);
        assert_eq!(
            CvRegime::classify(10.0),
            CvRegime::StratificationRecommended
        );
        assert_eq!(CvRegime::classify(10.1), CvRegime::Equivalent);
        assert_eq!(
            CvRegime::classify(-3.0),
            CvRegime::StratificationRecommended
        );
        assert_eq!(CvRegime::classify(f64::INFINITY), CvRegime::Equivalent);
        assert_eq!(CvRegime::classify(f64::NAN), CvRegime::Equivalent);
    }

    #[test]
    fn figure1_shape() {
        // Reproduce the shape of Figure 1: confidence as a function of the
        // abscissa, crossing 0.5 at 0 and saturating by ±2.
        let at = |x: f64| 0.5 * (1.0 + erf(x));
        assert!(at(-2.0) < 0.01);
        assert!((at(0.0) - 0.5).abs() < 1e-15);
        assert!(at(2.0) > 0.99);
    }
}

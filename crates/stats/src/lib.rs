//! Statistics substrate for the multicore-throughput sampling study.
//!
//! This crate gathers every piece of numerical machinery the ISPASS 2013
//! methodology needs, with no simulator dependencies:
//!
//! * [`erf`]/[`erfc`] — the error function used by the random-sampling
//!   confidence model (paper equation (5)),
//! * [`moments`] — streaming (Welford) and slice-based moments, including the
//!   coefficient of variation `cv = σ/µ` that drives the sample-size rule,
//! * [`confidence`] — the analytical degree-of-confidence model and the
//!   `W = 8·cv²` sample-size rule (paper equations (5) and (8)),
//! * [`error_bounds`] — relative-error summaries ([`ErrorStats`]) and
//!   Kendall rank agreement ([`RankAgreement`]) for the BADCO-vs-detailed
//!   model-validation gate (`mps-harness validate`),
//! * [`estimator`] — streaming convergence diagnostics ([`Convergence`]):
//!   running cv, 95% CI half-width, achieved confidence and required `W`
//!   as a pure function of a [`Moments`] snapshot,
//! * [`means`] — arithmetic / harmonic / geometric and their weighted
//!   variants (paper equations (2) and (9)),
//! * [`combinatorics`] — binomial and multiset coefficients used to count
//!   workload populations (`N = C(B+K-1, K)`),
//! * [`rng`] — small deterministic RNG utilities (SplitMix64 / xoshiro256**)
//!   so the whole reproduction is seed-stable without external crates.
//!
//! # Example
//!
//! ```
//! use mps_stats::confidence::{degree_of_confidence, required_sample_size};
//!
//! // LRU vs FIFO in the paper has cv ≈ 1: eight workloads are enough.
//! let w = required_sample_size(1.0);
//! assert_eq!(w, 8);
//! let conf = degree_of_confidence(1.0, w);
//! assert!(conf > 0.97);
//! ```

pub mod combinatorics;
pub mod confidence;
pub mod erf;
pub mod error_bounds;
pub mod estimator;
pub mod histogram;
pub mod means;
pub mod moments;
pub mod quantile;
pub mod rng;

pub use combinatorics::{binomial, multiset_coefficient};
pub use confidence::{degree_of_confidence, required_sample_size};
pub use erf::{erf, erfc, inverse_erf};
pub use error_bounds::{kendall, relative_errors, ErrorStats, RankAgreement};
pub use estimator::Convergence;
pub use histogram::Histogram;
pub use means::{Mean, WeightedMean};
pub use moments::{Moments, SliceStats};
pub use quantile::{bootstrap_interval, central_interval, median, quantile, Interval};

//! Streaming and slice-based sample moments.
//!
//! The sampling methodology revolves around the mean `µ`, variance `σ²` and
//! coefficient of variation `cv = σ/µ` of the per-workload throughput
//! difference `d(w)` (paper Section III). [`Moments`] accumulates these in a
//! single numerically stable pass (Welford's algorithm) and supports merging
//! partial accumulations, which the stratified estimators rely on.

/// Streaming accumulator of count / mean / variance (Welford).
///
/// # Example
///
/// ```
/// use mps_stats::Moments;
///
/// let m: Moments = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().collect();
/// assert_eq!(m.count(), 8);
/// assert!((m.mean() - 5.0).abs() < 1e-12);
/// assert!((m.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Moments {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Moments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    ///
    /// The result is identical (up to rounding) to having pushed all the
    /// observations into a single accumulator.
    pub fn merge(&mut self, other: &Moments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; `NaN` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Population variance (divide by `n`); `NaN` when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample variance (divide by `n − 1`); `NaN` for fewer than
    /// two observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            f64::NAN
        } else {
            self.m2 / (self.count as f64 - 1.0)
        }
    }

    /// Population standard deviation.
    pub fn population_std(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Coefficient of variation `cv = σ/µ` (population σ).
    ///
    /// The sign carries information: the paper plots `1/cv` whose sign
    /// indicates which microarchitecture of a pair wins. Returns `NaN` when
    /// empty and ±∞ when the mean is zero but the deviation is not.
    pub fn cv(&self) -> f64 {
        self.population_std() / self.mean()
    }

    /// Inverse coefficient of variation `1/cv = µ/σ` (the quantity shown in
    /// the paper's Figures 4 and 5).
    ///
    /// Returns 0 when σ overwhelms µ and ±∞ when all observations are equal
    /// but nonzero.
    pub fn inv_cv(&self) -> f64 {
        self.mean() / self.population_std()
    }
}

impl core::iter::FromIterator<f64> for Moments {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut m = Moments::new();
        for x in iter {
            m.push(x);
        }
        m
    }
}

impl<'a> core::iter::FromIterator<&'a f64> for Moments {
    fn from_iter<I: IntoIterator<Item = &'a f64>>(iter: I) -> Self {
        iter.into_iter().copied().collect()
    }
}

impl core::iter::Extend<f64> for Moments {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Convenience one-shot statistics over a slice.
///
/// # Example
///
/// ```
/// use mps_stats::SliceStats;
///
/// let s = SliceStats::of(&[1.0, 2.0, 3.0]);
/// assert!((s.mean - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SliceStats {
    /// Number of elements.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance.
    pub variance: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Coefficient of variation `σ/µ`.
    pub cv: f64,
    /// Minimum value (`NaN` if empty).
    pub min: f64,
    /// Maximum value (`NaN` if empty).
    pub max: f64,
}

impl SliceStats {
    /// Computes statistics of `xs` in one pass.
    pub fn of(xs: &[f64]) -> Self {
        let m: Moments = xs.iter().collect();
        let (mut min, mut max) = (f64::NAN, f64::NAN);
        for &x in xs {
            if min.is_nan() || x < min {
                min = x;
            }
            if max.is_nan() || x > max {
                max = x;
            }
        }
        SliceStats {
            count: xs.len(),
            mean: m.mean(),
            variance: m.population_variance(),
            std: m.population_std(),
            cv: m.cv(),
            min,
            max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_moments_are_nan() {
        let m = Moments::new();
        assert_eq!(m.count(), 0);
        assert!(m.mean().is_nan());
        assert!(m.population_variance().is_nan());
        assert!(m.cv().is_nan());
    }

    #[test]
    fn single_observation() {
        let mut m = Moments::new();
        m.push(3.5);
        assert_eq!(m.count(), 1);
        assert_eq!(m.mean(), 3.5);
        assert_eq!(m.population_variance(), 0.0);
        assert!(m.sample_variance().is_nan());
    }

    #[test]
    fn known_variance() {
        let m: Moments = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().collect();
        assert!((m.mean() - 5.0).abs() < 1e-12);
        assert!((m.population_variance() - 4.0).abs() < 1e-12);
        assert!((m.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert!((m.population_std() - 2.0).abs() < 1e-12);
        assert!((m.cv() - 0.4).abs() < 1e-12);
        assert!((m.inv_cv() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let whole: Moments = data.iter().collect();
        let mut a: Moments = data[..37].iter().collect();
        let b: Moments = data[37..].iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.population_variance() - whole.population_variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut m: Moments = [1.0, 2.0].iter().collect();
        let before = m;
        m.merge(&Moments::new());
        assert_eq!(m, before);
        let mut e = Moments::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn welford_is_stable_for_large_offsets() {
        // Classic catastrophic-cancellation case for naive sum-of-squares.
        let m: Moments = [1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0]
            .iter()
            .collect();
        assert!((m.sample_variance() - 30.0).abs() < 1e-6);
    }

    #[test]
    fn inv_cv_sign_tracks_mean_sign() {
        let pos: Moments = [1.0, 2.0, 3.0].iter().collect();
        let neg: Moments = [-1.0, -2.0, -3.0].iter().collect();
        assert!(pos.inv_cv() > 0.0);
        assert!(neg.inv_cv() < 0.0);
    }

    #[test]
    fn constant_series_has_infinite_inv_cv() {
        let m: Moments = [2.0, 2.0, 2.0].iter().collect();
        assert!(m.inv_cv().is_infinite());
        assert_eq!(m.cv(), 0.0);
    }

    #[test]
    fn slice_stats_min_max() {
        let s = SliceStats::of(&[3.0, -1.0, 4.0, 1.5]);
        assert_eq!(s.min, -1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.count, 4);
        let empty = SliceStats::of(&[]);
        assert!(empty.min.is_nan() && empty.max.is_nan());
    }

    #[test]
    fn extend_matches_push() {
        let mut a = Moments::new();
        a.extend([1.0, 2.0, 3.0]);
        let b: Moments = [1.0, 2.0, 3.0].iter().collect();
        assert_eq!(a, b);
    }
}

//! Streaming convergence diagnostics: the §VII quantities derived from a
//! running [`Moments`] accumulation.
//!
//! The paper's practical guideline asks an architect to estimate the
//! coefficient of variation `cv` of the per-workload throughput
//! difference `d(w)` and derive from it the required random-sample size
//! `W = 8·cv²` (equation (8)) and the degree of confidence
//! `Pr(D≥0) = ½·[1+erf((1/cv)·√(W/2))]` (equation (5)). [`Convergence`]
//! packages all of those as a pure function of a [`Moments`] snapshot, so
//! a live estimator (the `mps-obs` `Estimator` instrument) and an offline
//! analysis compute byte-identical figures from the same observations.

use crate::confidence::{degree_of_confidence, required_sample_size};
use crate::erf::inverse_erf;
use crate::moments::Moments;

/// Derived convergence statistics of one streaming estimate.
///
/// All fields are pure functions of the underlying [`Moments`]: feeding
/// the same observations in any order (Welford push or Chan merge) yields
/// the same summary up to rounding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Convergence {
    /// Observations accumulated so far (the actual `W` drawn).
    pub count: u64,
    /// Running sample mean (`NaN` when empty).
    pub mean: f64,
    /// Running population standard deviation (`NaN` when empty).
    pub std: f64,
    /// Coefficient of variation `cv = σ/µ` (population σ; signed, like
    /// [`Moments::cv`]).
    pub cv: f64,
    /// Half-width of the 95% normal confidence interval on the mean,
    /// `z·s/√n` with `z = √2·erf⁻¹(0.95)` and `s` the *sample* standard
    /// deviation (`NaN` below two observations).
    pub ci_half_width: f64,
    /// Degree of confidence at the current count: equation (5) evaluated
    /// at `W = count`.
    pub confidence: f64,
    /// Required random-sample size `⌈8·cv²⌉` (equation (8));
    /// `usize::MAX` when `cv` is not finite.
    pub required_w: usize,
}

/// The 95% two-sided normal quantile `z = √2·erf⁻¹(0.95)` ≈ 1.95996.
pub fn z95() -> f64 {
    std::f64::consts::SQRT_2 * inverse_erf(0.95)
}

impl Convergence {
    /// Computes every derived quantity from a moments snapshot.
    ///
    /// # Example
    ///
    /// ```
    /// use mps_stats::{estimator::Convergence, Moments};
    ///
    /// let m: Moments = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().collect();
    /// let c = Convergence::of(&m);
    /// assert_eq!(c.count, 8);
    /// assert!((c.cv - 0.4).abs() < 1e-12);
    /// assert_eq!(c.required_w, 2); // ⌈8·0.16⌉
    /// ```
    pub fn of(m: &Moments) -> Self {
        let cv = m.cv();
        let n = m.count();
        Convergence {
            count: n,
            mean: m.mean(),
            std: m.population_std(),
            cv,
            ci_half_width: if n >= 2 {
                z95() * m.sample_std() / (n as f64).sqrt()
            } else {
                f64::NAN
            },
            confidence: degree_of_confidence(cv, n as usize),
            required_w: required_sample_size(cv),
        }
    }

    /// Whether the accumulated count already meets the `8·cv²` rule.
    pub fn converged(&self) -> bool {
        self.required_w != usize::MAX && self.count as usize >= self.required_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::erf::erf;

    #[test]
    fn empty_moments_give_nan_everything() {
        let c = Convergence::of(&Moments::new());
        assert_eq!(c.count, 0);
        assert!(c.mean.is_nan());
        assert!(c.cv.is_nan());
        assert!(c.ci_half_width.is_nan());
        assert!(c.confidence.is_nan());
        assert_eq!(c.required_w, usize::MAX);
        assert!(!c.converged());
    }

    #[test]
    fn matches_closed_forms_for_known_series() {
        // cv = 0.4 exactly (mean 5, population σ 2): the golden series the
        // moments tests pin.
        let m: Moments = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().collect();
        let c = Convergence::of(&m);
        assert_eq!(c.required_w, required_sample_size(0.4));
        assert_eq!(c.required_w, 2);
        assert!((c.confidence - degree_of_confidence(0.4, 8)).abs() < 1e-15);
        // Closed form: ½(1+erf((1/0.4)·√(8/2))) = ½(1+erf(5)).
        let closed = 0.5 * (1.0 + erf((1.0 / 0.4) * 2.0));
        assert!((c.confidence - closed).abs() < 1e-15);
        assert!(c.converged(), "8 observations ≥ required 2");
    }

    #[test]
    fn ci_half_width_uses_sample_std() {
        let m: Moments = [1.0, 3.0].iter().collect();
        let c = Convergence::of(&m);
        // s = √2, n = 2: half width = z·√2/√2 = z.
        assert!((c.ci_half_width - z95()).abs() < 1e-12);
        let single: Moments = [1.0].iter().collect();
        assert!(Convergence::of(&single).ci_half_width.is_nan());
    }

    #[test]
    fn z95_matches_the_textbook_value() {
        assert!((z95() - 1.959964).abs() < 1e-5, "{}", z95());
    }

    #[test]
    fn convergence_is_order_invariant() {
        let data = [0.3, -1.2, 2.5, 0.9, 4.1, -0.7];
        let fwd: Moments = data.iter().collect();
        let rev: Moments = data.iter().rev().collect();
        let a = Convergence::of(&fwd);
        let b = Convergence::of(&rev);
        assert_eq!(a.count, b.count);
        assert!((a.cv - b.cv).abs() < 1e-12);
        assert_eq!(a.required_w, b.required_w);
    }

    #[test]
    fn constant_positive_series_is_instantly_converged() {
        let m: Moments = [2.0, 2.0, 2.0].iter().collect();
        let c = Convergence::of(&m);
        assert_eq!(c.cv, 0.0);
        assert_eq!(c.required_w, 1);
        assert!(c.converged());
        assert!((c.confidence - 1.0).abs() < 1e-12);
    }
}

//! Plain and weighted means.
//!
//! Throughput metrics are built from two nested means (paper equation (1)
//! and (2)): an `X-mean` across cores and an `X-mean` across workloads,
//! where `X` is arithmetic for IPC throughput and weighted speedup, harmonic
//! for the harmonic mean of speedups, and geometric for the geometric-mean
//! variant discussed in the paper's footnote 3. Stratified sampling replaces
//! the outer mean with a *weighted* mean whose weights are the stratum
//! population shares `Nh/N` (paper equation (9)).

/// The kind of mean to apply (the `X` in the paper's `X-mean`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mean {
    /// Arithmetic mean (paper `A-mean`).
    Arithmetic,
    /// Harmonic mean (paper `H-mean`).
    Harmonic,
    /// Geometric mean (paper footnote 3).
    Geometric,
}

impl Mean {
    /// Computes the mean of `xs`.
    ///
    /// Returns `NaN` for an empty slice. The harmonic mean of a sequence
    /// containing zero is 0; the geometric mean of a sequence containing a
    /// negative number is `NaN`.
    ///
    /// # Example
    ///
    /// ```
    /// use mps_stats::Mean;
    ///
    /// assert!((Mean::Arithmetic.of(&[1.0, 4.0]) - 2.5).abs() < 1e-12);
    /// assert!((Mean::Harmonic.of(&[1.0, 4.0]) - 1.6).abs() < 1e-12);
    /// assert!((Mean::Geometric.of(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    /// ```
    pub fn of(self, xs: &[f64]) -> f64 {
        if xs.is_empty() {
            return f64::NAN;
        }
        let n = xs.len() as f64;
        match self {
            Mean::Arithmetic => xs.iter().sum::<f64>() / n,
            Mean::Harmonic => {
                if xs.contains(&0.0) {
                    return 0.0;
                }
                n / xs.iter().map(|&x| 1.0 / x).sum::<f64>()
            }
            Mean::Geometric => (xs.iter().map(|&x| x.ln()).sum::<f64>() / n).exp(),
        }
    }

    /// Computes the mean of an iterator without collecting it.
    pub fn of_iter<I: IntoIterator<Item = f64>>(self, xs: I) -> f64 {
        let mut acc = 0.0;
        let mut n = 0u64;
        let mut saw_zero = false;
        for x in xs {
            n += 1;
            match self {
                Mean::Arithmetic => acc += x,
                Mean::Harmonic => {
                    if x == 0.0 {
                        saw_zero = true;
                    } else {
                        acc += 1.0 / x;
                    }
                }
                Mean::Geometric => acc += x.ln(),
            }
        }
        if n == 0 {
            return f64::NAN;
        }
        let n = n as f64;
        match self {
            Mean::Arithmetic => acc / n,
            Mean::Harmonic => {
                if saw_zero {
                    0.0
                } else {
                    n / acc
                }
            }
            Mean::Geometric => (acc / n).exp(),
        }
    }
}

/// A weighted mean accumulator (the paper's `WX-mean` of equation (9)).
///
/// Weights need not be normalized; they are divided by their sum.
///
/// # Example
///
/// ```
/// use mps_stats::{Mean, WeightedMean};
///
/// let mut wm = WeightedMean::new(Mean::Arithmetic);
/// wm.push(10.0, 0.8); // stratum 1: weight N1/N = 0.8
/// wm.push(20.0, 0.2); // stratum 2: weight N2/N = 0.2
/// assert!((wm.value() - 12.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedMean {
    kind: Mean,
    acc: f64,
    weight_sum: f64,
    saw_zero: bool,
}

impl WeightedMean {
    /// Creates an empty accumulator for the given mean kind.
    pub fn new(kind: Mean) -> Self {
        WeightedMean {
            kind,
            acc: 0.0,
            weight_sum: 0.0,
            saw_zero: false,
        }
    }

    /// Adds a value with the given non-negative weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or NaN.
    pub fn push(&mut self, value: f64, weight: f64) {
        assert!(weight >= 0.0, "weight must be non-negative, got {weight}");
        if weight == 0.0 {
            return;
        }
        self.weight_sum += weight;
        match self.kind {
            Mean::Arithmetic => self.acc += weight * value,
            Mean::Harmonic => {
                if value == 0.0 {
                    self.saw_zero = true;
                } else {
                    self.acc += weight / value;
                }
            }
            Mean::Geometric => self.acc += weight * value.ln(),
        }
    }

    /// The weighted mean accumulated so far; `NaN` when no weight was added.
    pub fn value(&self) -> f64 {
        if self.weight_sum == 0.0 {
            return f64::NAN;
        }
        match self.kind {
            Mean::Arithmetic => self.acc / self.weight_sum,
            Mean::Harmonic => {
                if self.saw_zero {
                    0.0
                } else {
                    self.weight_sum / self.acc
                }
            }
            Mean::Geometric => (self.acc / self.weight_sum).exp(),
        }
    }

    /// The kind of mean this accumulator computes.
    pub fn kind(&self) -> Mean {
        self.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_mean() {
        assert_eq!(Mean::Arithmetic.of(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn harmonic_mean() {
        let h = Mean::Harmonic.of(&[1.0, 2.0, 4.0]);
        assert!((h - 3.0 / (1.0 + 0.5 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean() {
        let g = Mean::Geometric.of(&[2.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn means_are_ordered_hm_le_gm_le_am() {
        let xs = [0.5, 1.3, 2.2, 4.0, 0.9];
        let h = Mean::Harmonic.of(&xs);
        let g = Mean::Geometric.of(&xs);
        let a = Mean::Arithmetic.of(&xs);
        assert!(h <= g && g <= a, "h={h} g={g} a={a}");
    }

    #[test]
    fn empty_means_are_nan() {
        assert!(Mean::Arithmetic.of(&[]).is_nan());
        assert!(Mean::Harmonic.of(&[]).is_nan());
        assert!(Mean::Geometric.of(&[]).is_nan());
    }

    #[test]
    fn harmonic_with_zero_is_zero() {
        assert_eq!(Mean::Harmonic.of(&[0.0, 1.0]), 0.0);
    }

    #[test]
    fn of_iter_matches_of() {
        let xs = [0.7, 1.9, 3.3, 2.1];
        for kind in [Mean::Arithmetic, Mean::Harmonic, Mean::Geometric] {
            let a = kind.of(&xs);
            let b = kind.of_iter(xs.iter().copied());
            assert!((a - b).abs() < 1e-12, "{kind:?}");
        }
    }

    #[test]
    fn weighted_mean_with_equal_weights_matches_plain() {
        let xs = [1.0, 2.0, 5.0];
        for kind in [Mean::Arithmetic, Mean::Harmonic, Mean::Geometric] {
            let mut wm = WeightedMean::new(kind);
            for &x in &xs {
                wm.push(x, 0.25);
            }
            assert!((wm.value() - kind.of(&xs)).abs() < 1e-12, "{kind:?}");
        }
    }

    #[test]
    fn weighted_arithmetic_example() {
        let mut wm = WeightedMean::new(Mean::Arithmetic);
        wm.push(10.0, 3.0);
        wm.push(20.0, 1.0);
        assert!((wm.value() - 12.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_harmonic_example() {
        // WH-mean of {2 (w=1), 4 (w=1)} = 2 / (1/2 + 1/4) = 8/3
        let mut wm = WeightedMean::new(Mean::Harmonic);
        wm.push(2.0, 1.0);
        wm.push(4.0, 1.0);
        assert!((wm.value() - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_is_ignored() {
        let mut wm = WeightedMean::new(Mean::Arithmetic);
        wm.push(1000.0, 0.0);
        wm.push(3.0, 1.0);
        assert_eq!(wm.value(), 3.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        WeightedMean::new(Mean::Arithmetic).push(1.0, -0.5);
    }

    #[test]
    fn empty_weighted_mean_is_nan() {
        assert!(WeightedMean::new(Mean::Harmonic).value().is_nan());
    }
}

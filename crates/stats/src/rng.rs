//! Small deterministic PRNG (xoshiro256**, seeded via SplitMix64).
//!
//! Every experiment in this reproduction must be exactly reproducible from a
//! seed — the paper relies on reproducible simulation ("we assume that
//! simulations are reproducible, so that traces represent exactly the same
//! sequence of dynamic µops"). Rather than depending on the `rand` crate's
//! stability guarantees across versions, the whole workspace draws its
//! randomness from this self-contained generator.

/// xoshiro256** generator (Blackman & Vigna), seeded with SplitMix64.
///
/// # Example
///
/// ```
/// use mps_stats::rng::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = split_mix64(&mut sm);
        }
        // All-zero state is invalid for xoshiro; SplitMix64 cannot produce
        // four consecutive zeros, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        Rng { s }
    }

    /// Derives an independent child generator for a named sub-stream.
    ///
    /// Used to give each (benchmark, core, experiment) its own stream so
    /// that changing one component does not perturb the others.
    pub fn fork(&mut self, stream: u64) -> Rng {
        let a = self.next_u64();
        Rng::new(a ^ stream.wrapping_mul(0xA24BAED4963EE407))
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` without modulo bias (Lemire).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Lemire's nearly-divisionless method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform u128 in `[0, bound)` (for ranking into huge populations).
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        assert!(bound > 0, "below_u128(0) is meaningless");
        if bound <= u64::MAX as u128 {
            return self.below(bound as u64) as u128;
        }
        // Rejection sampling on 128-bit values.
        let zone = u128::MAX - (u128::MAX % bound);
        loop {
            let hi = (self.next_u64() as u128) << 64;
            let v = hi | self.next_u64() as u128;
            if v < zone {
                return v % bound;
            }
        }
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Normally distributed value (Box–Muller, one value per call).
    pub fn next_gaussian(&mut self) -> f64 {
        loop {
            let u1 = self.next_f64();
            if u1 > 0.0 {
                let u2 = self.next_f64();
                return (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos();
            }
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Uniformly chooses one element, or `None` if empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.index(xs.len())])
        }
    }

    /// Samples `n` distinct indices from `0..len` (reservoir when n < len).
    ///
    /// # Panics
    ///
    /// Panics if `n > len`.
    pub fn sample_indices(&mut self, len: usize, n: usize) -> Vec<usize> {
        assert!(n <= len, "cannot sample {n} distinct from {len}");
        // Floyd's algorithm: O(n) expected, unbiased.
        let mut chosen = std::collections::BTreeSet::new();
        for j in (len - n)..len {
            let t = self.index(j + 1);
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        chosen.into_iter().collect()
    }
}

fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = Rng::new(4);
        let mean: f64 = (0..100_000).map(|_| r.next_f64()).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = Rng::new(5);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[r.below(7) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((c as i64 - 10_000).abs() < 600, "bucket {i}: {c}");
        }
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn below_zero_panics() {
        Rng::new(0).below(0);
    }

    #[test]
    fn below_u128_small_matches_range() {
        let mut r = Rng::new(6);
        for _ in 0..1000 {
            assert!(r.below_u128(253) < 253);
        }
        let huge = (1u128 << 90) + 12345;
        for _ in 0..100 {
            assert!(r.below_u128(huge) < huge);
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rng::new(8);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.03, "var={var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn choose_none_on_empty() {
        let mut r = Rng::new(10);
        assert_eq!(r.choose::<u8>(&[]), None);
        assert_eq!(r.choose(&[42]), Some(&42));
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = Rng::new(11);
        for _ in 0..100 {
            let s = r.sample_indices(20, 8);
            assert_eq!(s.len(), 8);
            let set: std::collections::BTreeSet<_> = s.iter().collect();
            assert_eq!(set.len(), 8);
            assert!(s.iter().all(|&i| i < 20));
        }
    }

    #[test]
    fn sample_indices_full_and_empty() {
        let mut r = Rng::new(12);
        let all = r.sample_indices(5, 5);
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
        assert!(r.sample_indices(5, 0).is_empty());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = Rng::new(13);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}

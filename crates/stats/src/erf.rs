//! Error function and friends.
//!
//! The degree-of-confidence model (paper equation (5)) is
//! `Pr(D ≥ 0) = ½·[1 + erf((1/cv)·√(W/2))]`, so we need an accurate `erf`.
//! Rust's standard library does not expose one. We implement it from first
//! principles with two complementary expansions, both free of catastrophic
//! cancellation:
//!
//! * the all-positive-terms confluent-hypergeometric series
//!   `erf(x) = (2x/√π)·e^(−x²)·Σ (2x²)ⁿ/(2n+1)!!` for moderate `x`, and
//! * the Laplace continued fraction
//!   `√π·e^(x²)·erfc(x) = 1/(x + ½/(x + 1/(x + 3⁄2/(x + …))))`
//!   (Abramowitz & Stegun 7.1.14) for the tail, evaluated with the modified
//!   Lentz algorithm.

use core::f64::consts::PI;

/// `1/√π`.
const FRAC_1_SQRT_PI: f64 = 0.5641895835477562869480794515608;

/// The error function `erf(x) = 2/√π · ∫₀ˣ e^(−t²) dt`.
///
/// Accurate to ~1e-15 relative error. Odd: `erf(-x) = -erf(x)`. Saturates
/// to ±1 for |x| ≳ 6.
///
/// # Example
///
/// ```
/// let e = mps_stats::erf(1.0);
/// assert!((e - 0.8427007929497149).abs() < 1e-12);
/// ```
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let ax = x.abs();
    let v = if ax <= 2.5 {
        erf_series(ax)
    } else if ax < 27.0 {
        1.0 - erfc_cf(ax)
    } else {
        1.0
    };
    if x < 0.0 {
        -v
    } else {
        v
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Unlike computing `1.0 - erf(x)` directly, this stays accurate in the far
/// right tail where `erf(x)` rounds to 1.
///
/// # Example
///
/// ```
/// // erfc(3) ≈ 2.209e-5, far below f64 rounding of 1 - erf(3).
/// assert!((mps_stats::erfc(3.0) - 2.2090496998585441e-5).abs() < 1e-18);
/// ```
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x >= 0.0 {
        if x <= 1.0 {
            // erfc(x) ≥ 0.157 here: no precision lost by complementing.
            1.0 - erf_series(x)
        } else if x < 27.0 {
            erfc_cf(x)
        } else {
            0.0
        }
    } else {
        2.0 - erfc(-x)
    }
}

/// Series `erf(x) = (2x/√π)·e^(−x²)·Σₙ (2x²)ⁿ / (2n+1)!!` for `x ≥ 0`.
///
/// Every term is positive, so there is no cancellation; the series converges
/// for all `x` and quickly for `x ≤ 2.5` (≤ ~40 terms).
fn erf_series(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let z2 = 2.0 * x * x;
    let mut term = 1.0;
    let mut sum = 1.0;
    let mut odd = 1.0; // 2n+1
    for _ in 0..300 {
        odd += 2.0;
        term *= z2 / odd;
        sum += term;
        if term < sum * 1e-17 {
            break;
        }
    }
    2.0 * FRAC_1_SQRT_PI * x * (-x * x).exp() * sum
}

/// Laplace continued fraction for `erfc(x)`, `x ≥ 1`, via modified Lentz.
///
/// `√π·e^(x²)·erfc(x) = a₁/(b₁ + a₂/(b₂ + …))` with `aₙ = (n−1)/2` for
/// `n ≥ 2`, `a₁ = 1`, and all `bₙ = x`.
fn erfc_cf(x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut f = TINY;
    let mut c = TINY;
    let mut d = 0.0;
    for n in 1..=200u32 {
        let a = if n == 1 { 1.0 } else { f64::from(n - 1) / 2.0 };
        let b = x;
        d = b + a * d;
        if d == 0.0 {
            d = TINY;
        }
        c = b + a / c;
        if c == 0.0 {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    FRAC_1_SQRT_PI * (-x * x).exp() * (f / TINY) * TINY
}

/// Inverse error function: `inverse_erf(erf(x)) == x`.
///
/// Returns `f64::INFINITY`/`f64::NEG_INFINITY` at ±1 and `NaN` outside
/// [-1, 1]. Used to invert the confidence model when asking "what sample
/// size reaches confidence c?".
///
/// # Example
///
/// ```
/// let x = mps_stats::inverse_erf(mps_stats::erf(0.7));
/// assert!((x - 0.7).abs() < 1e-12);
/// ```
pub fn inverse_erf(y: f64) -> f64 {
    if y.is_nan() || !(-1.0..=1.0).contains(&y) {
        return f64::NAN;
    }
    if y == 1.0 {
        return f64::INFINITY;
    }
    if y == -1.0 {
        return f64::NEG_INFINITY;
    }
    if y == 0.0 {
        return 0.0;
    }
    // Initial estimate (Winitzki's approximation), then Newton iterations.
    let a = 0.147;
    let ln1my2 = (1.0 - y * y).ln();
    let term1 = 2.0 / (PI * a) + ln1my2 / 2.0;
    let mut x = y.signum() * ((term1 * term1 - ln1my2 / a).sqrt() - term1).sqrt();
    // Newton: f(x) = erf(x) - y, f'(x) = 2/√π · e^(−x²)
    for _ in 0..6 {
        let err = erf(x) - y;
        let deriv = 2.0 * FRAC_1_SQRT_PI * (-x * x).exp();
        if deriv == 0.0 {
            break;
        }
        x -= err / deriv;
    }
    x
}

/// Standard normal cumulative distribution function `Φ(x)`.
///
/// ```
/// assert!((mps_stats::erf::normal_cdf(0.0) - 0.5).abs() < 1e-15);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / core::f64::consts::SQRT_2)
}

/// Inverse of the standard normal CDF (the probit function).
///
/// Returns `NaN` outside (0, 1) and ±∞ at the endpoints.
///
/// ```
/// let z = mps_stats::erf::normal_quantile(0.975);
/// assert!((z - 1.959963984540054).abs() < 1e-9);
/// ```
pub fn normal_quantile(p: f64) -> f64 {
    core::f64::consts::SQRT_2 * inverse_erf(2.0 * p - 1.0)
}

#[cfg(test)]
mod tests {
    // Reference constants keep full published precision even where f64
    // rounds the last digits.
    #![allow(clippy::excessive_precision)]
    use super::*;

    /// Reference values (standard tables / mpmath at 30 digits).
    const TABLE: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.1124629160182848922),
        (0.25, 0.2763263901682369330),
        (0.5, 0.5204998778130465377),
        (1.0, 0.8427007929497148693),
        (1.5, 0.9661051464753107271),
        (2.0, 0.9953222650189527342),
        (2.5, 0.9995930479825550411),
        (3.0, 0.9999779095030014146),
        (4.0, 0.9999999845827420998),
        (5.0, 0.9999999999984625402),
    ];

    #[test]
    fn erf_matches_reference_values() {
        for &(x, want) in TABLE {
            let got = erf(x);
            assert!((got - want).abs() < 1e-13, "erf({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn erf_is_odd() {
        for &(x, want) in TABLE {
            assert!((erf(-x) + want).abs() < 1e-13);
        }
    }

    #[test]
    fn erfc_complements_erf_in_the_bulk() {
        for x in [-2.0, -1.0, -0.3, 0.0, 0.3, 1.0, 2.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-14, "x={x}");
        }
    }

    #[test]
    fn erfc_tail_values() {
        // Standard references.
        assert!((erfc(3.0) - 2.2090496998585441e-5).abs() < 1e-18);
        assert!((erfc(5.0) - 1.5374597944280349e-12).abs() < 1e-25);
        // Far tail still finite and positive.
        let far = erfc(10.0);
        assert!(far > 0.0 && far < 1e-40);
    }

    #[test]
    fn erfc_negative_arguments() {
        assert!((erfc(-1.0) - (2.0 - erfc(1.0))).abs() < 1e-15);
        assert!((erfc(-3.0) - 1.9999779095030014).abs() < 1e-12);
    }

    #[test]
    fn erf_saturates() {
        assert_eq!(erf(30.0), 1.0);
        assert_eq!(erf(-30.0), -1.0);
        assert_eq!(erfc(30.0), 0.0);
        assert_eq!(erfc(-30.0), 2.0);
    }

    #[test]
    fn erf_nan_propagates() {
        assert!(erf(f64::NAN).is_nan());
        assert!(erfc(f64::NAN).is_nan());
        assert!(inverse_erf(f64::NAN).is_nan());
    }

    #[test]
    fn erf_branches_agree_at_switch_points() {
        // The implementation switches from series to continued fraction at
        // x = 2.5 (erf) and x = 1.0 (erfc); the two expansions must agree
        // where they meet.
        assert!((erf_series(2.5) - (1.0 - erfc_cf(2.5))).abs() < 1e-12);
        assert!(((1.0 - erf_series(1.0)) - erfc_cf(1.0)).abs() < 1e-12);
    }

    #[test]
    fn inverse_erf_round_trips() {
        for x in [-3.0, -1.2, -0.4, -0.01, 0.0, 0.01, 0.33, 0.9, 1.7, 2.5] {
            let y = erf(x);
            let back = inverse_erf(y);
            assert!((back - x).abs() < 1e-10, "x={x} back={back}");
        }
    }

    #[test]
    fn inverse_erf_edges() {
        assert_eq!(inverse_erf(1.0), f64::INFINITY);
        assert_eq!(inverse_erf(-1.0), f64::NEG_INFINITY);
        assert!(inverse_erf(1.5).is_nan());
        assert!(inverse_erf(-1.5).is_nan());
        assert_eq!(inverse_erf(0.0), 0.0);
    }

    #[test]
    fn normal_cdf_known_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((normal_cdf(1.0) - 0.8413447460685429486).abs() < 1e-13);
        assert!((normal_cdf(-1.959963984540054) - 0.025).abs() < 1e-12);
    }

    #[test]
    fn normal_quantile_round_trips() {
        for p in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let z = normal_quantile(p);
            assert!((normal_cdf(z) - p).abs() < 1e-10, "p={p}");
        }
    }
}

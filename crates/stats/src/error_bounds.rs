//! Error statistics for model-validation: how far an approximate
//! simulator strays from a reference one, in the two senses the ISPASS
//! 2013 methodology cares about.
//!
//! * **Magnitude** — [`ErrorStats`] summarizes a set of relative errors
//!   (signed mean, absolute mean, maximum, RMS). The paper's accuracy
//!   discussion (Figure 2) is phrased in per-thread relative IPC error.
//! * **Order** — [`RankAgreement`] compares the *orderings* two models
//!   induce over the same workloads (Kendall's tau / discordant-pair
//!   count). The paper's selection decisions rest on which workloads and
//!   configurations rank above which, so a model can be useful with
//!   sizeable magnitude error as long as it preserves ranks.
//!
//! Both are pure slice functions with no simulator dependencies; the
//! harness `validate` subsystem feeds them from paired detailed/BADCO
//! runs and gates CI on their drift (see `docs/validation.md`).

/// Summary of a set of relative errors (dimensionless fractions:
/// `0.05` = 5 %).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorStats {
    /// Number of error samples.
    pub n: usize,
    /// Mean signed error (bias; cancels when over/under-estimates mix).
    pub mean_signed: f64,
    /// Mean absolute error.
    pub mean_abs: f64,
    /// Largest absolute error.
    pub max_abs: f64,
    /// Root-mean-square error.
    pub rms: f64,
}

impl ErrorStats {
    /// Summarizes a slice of signed relative errors. An empty slice
    /// yields the all-zero summary (`n == 0`).
    pub fn of(errors: &[f64]) -> ErrorStats {
        if errors.is_empty() {
            return ErrorStats::default();
        }
        let n = errors.len();
        let mean_signed = errors.iter().sum::<f64>() / n as f64;
        let mean_abs = errors.iter().map(|e| e.abs()).sum::<f64>() / n as f64;
        let max_abs = errors.iter().map(|e| e.abs()).fold(0.0, f64::max);
        let rms = (errors.iter().map(|e| e * e).sum::<f64>() / n as f64).sqrt();
        ErrorStats {
            n,
            mean_signed,
            mean_abs,
            max_abs,
            rms,
        }
    }

    /// Pools several summaries into one, weighting each by its sample
    /// count. `max_abs` is the overall maximum; `rms` recombines through
    /// the mean of squares, so pooling equals summarizing the
    /// concatenated samples.
    pub fn pooled<'a>(parts: impl IntoIterator<Item = &'a ErrorStats>) -> ErrorStats {
        let mut n = 0usize;
        let (mut signed, mut abs, mut sq, mut max_abs) = (0.0, 0.0, 0.0, 0.0f64);
        for p in parts {
            n += p.n;
            let w = p.n as f64;
            signed += p.mean_signed * w;
            abs += p.mean_abs * w;
            sq += p.rms * p.rms * w;
            max_abs = max_abs.max(p.max_abs);
        }
        if n == 0 {
            return ErrorStats::default();
        }
        let inv = 1.0 / n as f64;
        ErrorStats {
            n,
            mean_signed: signed * inv,
            mean_abs: abs * inv,
            max_abs,
            rms: (sq * inv).sqrt(),
        }
    }
}

/// The signed relative error of each `approx[i]` against `reference[i]`.
///
/// # Panics
///
/// Panics if the slices differ in length or a reference value is zero
/// (relative error is undefined there — callers must filter first).
pub fn relative_errors(approx: &[f64], reference: &[f64]) -> Vec<f64> {
    assert_eq!(approx.len(), reference.len(), "paired slices required");
    approx
        .iter()
        .zip(reference)
        .map(|(&a, &r)| {
            assert!(r != 0.0, "zero reference value has no relative error");
            (a - r) / r
        })
        .collect()
}

/// Agreement between the orderings two paired score slices induce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RankAgreement {
    /// Comparable pairs (`n·(n-1)/2` minus pairs tied in either slice).
    pub pairs: usize,
    /// Pairs ordered the same way by both slices.
    pub concordant: usize,
    /// Pairs ordered oppositely — the "rank inversions" the validation
    /// gate counts.
    pub discordant: usize,
    /// Pairs tied (exactly equal scores) in at least one slice.
    pub ties: usize,
}

impl RankAgreement {
    /// Kendall's tau-a over the comparable pairs, in `[-1, 1]`; `1.0`
    /// when there are no comparable pairs (two orderings of fewer than
    /// two items cannot disagree).
    pub fn tau(&self) -> f64 {
        if self.pairs == 0 {
            return 1.0;
        }
        (self.concordant as f64 - self.discordant as f64) / self.pairs as f64
    }
}

/// Compares the orderings of `a` and `b` over all index pairs.
///
/// O(n²) pair enumeration — validation grids are tens of workloads, far
/// below where the n·log n merge-sort formulation would matter.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn kendall(a: &[f64], b: &[f64]) -> RankAgreement {
    assert_eq!(a.len(), b.len(), "paired slices required");
    let mut agg = RankAgreement::default();
    for i in 0..a.len() {
        for j in i + 1..a.len() {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            if da == 0.0 || db == 0.0 {
                agg.ties += 1;
            } else if (da > 0.0) == (db > 0.0) {
                agg.pairs += 1;
                agg.concordant += 1;
            } else {
                agg.pairs += 1;
                agg.discordant += 1;
            }
        }
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_stats_of_mixed_signs() {
        let s = ErrorStats::of(&[0.1, -0.1, 0.3, -0.3]);
        assert_eq!(s.n, 4);
        assert!(
            s.mean_signed.abs() < 1e-12,
            "bias cancels: {}",
            s.mean_signed
        );
        assert!((s.mean_abs - 0.2).abs() < 1e-12);
        assert!((s.max_abs - 0.3).abs() < 1e-12);
        assert!((s.rms - (0.05f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_errors_are_all_zero() {
        assert_eq!(ErrorStats::of(&[]), ErrorStats::default());
        assert_eq!(ErrorStats::pooled([]), ErrorStats::default());
    }

    #[test]
    fn pooled_equals_concatenated() {
        let xs = [0.05, -0.02, 0.11];
        let ys = [-0.4, 0.3, 0.02, 0.07];
        let all: Vec<f64> = xs.iter().chain(&ys).copied().collect();
        let pooled = ErrorStats::pooled([&ErrorStats::of(&xs), &ErrorStats::of(&ys)]);
        let direct = ErrorStats::of(&all);
        assert_eq!(pooled.n, direct.n);
        assert!((pooled.mean_signed - direct.mean_signed).abs() < 1e-12);
        assert!((pooled.mean_abs - direct.mean_abs).abs() < 1e-12);
        assert!((pooled.rms - direct.rms).abs() < 1e-12);
        assert_eq!(pooled.max_abs, direct.max_abs);
    }

    #[test]
    fn relative_errors_are_signed() {
        let e = relative_errors(&[1.1, 0.9], &[1.0, 1.0]);
        assert!((e[0] - 0.1).abs() < 1e-12);
        assert!((e[1] + 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero reference")]
    fn zero_reference_panics() {
        let _ = relative_errors(&[1.0], &[0.0]);
    }

    #[test]
    fn kendall_identical_orderings() {
        let r = kendall(&[1.0, 2.0, 3.0, 4.0], &[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(r.pairs, 6);
        assert_eq!(r.discordant, 0);
        assert_eq!(r.tau(), 1.0);
    }

    #[test]
    fn kendall_reversed_orderings() {
        let r = kendall(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]);
        assert_eq!(r.discordant, 3);
        assert_eq!(r.tau(), -1.0);
    }

    #[test]
    fn kendall_counts_single_swap() {
        // Second ordering swaps the two best items: exactly one inversion.
        let r = kendall(&[1.0, 2.0, 3.0, 4.0], &[1.0, 2.0, 4.0, 3.0]);
        assert_eq!(r.discordant, 1);
        assert_eq!(r.concordant, 5);
        assert!((r.tau() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_ties_are_excluded_from_pairs() {
        let r = kendall(&[1.0, 1.0, 2.0], &[5.0, 6.0, 7.0]);
        assert_eq!(r.ties, 1);
        assert_eq!(r.pairs, 2);
        assert_eq!(r.tau(), 1.0);
    }

    #[test]
    fn kendall_degenerate_slices() {
        assert_eq!(kendall(&[], &[]).tau(), 1.0);
        assert_eq!(kendall(&[1.0], &[2.0]).tau(), 1.0);
    }
}

//! Counting workload populations.
//!
//! With `B` interchangeable benchmarks on `K` identical cores and
//! replication allowed, a workload is a multiset of size `K` over `B`
//! symbols, so the population size is the multiset coefficient
//! `N = C(B+K−1, K)` (paper Section II). These helpers are exact in `u128`
//! where possible and fall back to `f64` for astronomically large counts.

/// Exact binomial coefficient `C(n, k)` in `u128`, or `None` on overflow.
///
/// # Example
///
/// ```
/// use mps_stats::binomial;
///
/// assert_eq!(binomial(23, 2), Some(253));   // 2-core population, B = 22
/// assert_eq!(binomial(25, 4), Some(12650)); // 4-core population
/// ```
pub fn binomial(n: u64, k: u64) -> Option<u128> {
    if k > n {
        return Some(0);
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 1..=k {
        // acc * num / den is the partial binomial C(n-k+i, i), always an
        // integer; cancel gcd factors first so the intermediate product does
        // not overflow unless the result itself is close to u128::MAX.
        let mut num = (n - k + i) as u128;
        let mut den = i as u128;
        let g = gcd(num, den);
        num /= g;
        den /= g;
        let g = gcd(acc, den);
        acc /= g;
        den /= g;
        debug_assert_eq!(den, 1, "denominator must fully cancel");
        acc = acc.checked_mul(num)?;
    }
    Some(acc)
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Multiset coefficient `((b multichoose k)) = C(b+k−1, k)`: the number of
/// size-`k` multisets over `b` symbols — the workload population size for
/// `b` benchmarks and `k` cores.
///
/// Returns `None` on overflow of `u128` (use [`multiset_coefficient_f64`]
/// then). By convention `multiset_coefficient(0, 0) == Some(1)` (the empty
/// workload) and `multiset_coefficient(0, k>0) == Some(0)`.
///
/// # Example
///
/// ```
/// use mps_stats::multiset_coefficient;
///
/// assert_eq!(multiset_coefficient(22, 2), Some(253));
/// assert_eq!(multiset_coefficient(22, 4), Some(12650));
/// assert_eq!(multiset_coefficient(22, 8), Some(4292145));
/// ```
pub fn multiset_coefficient(b: u64, k: u64) -> Option<u128> {
    if k == 0 {
        return Some(1);
    }
    if b == 0 {
        return Some(0);
    }
    binomial(b + k - 1, k)
}

/// `ln C(n, k)` via `ln Γ`, usable when the exact value overflows.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Approximate multiset coefficient as `f64` (exact for small values).
pub fn multiset_coefficient_f64(b: u64, k: u64) -> f64 {
    match multiset_coefficient(b, k) {
        Some(v) if v < (1u128 << 100) => v as f64,
        _ => {
            if k == 0 {
                1.0
            } else if b == 0 {
                0.0
            } else {
                ln_binomial(b + k - 1, k).exp()
            }
        }
    }
}

/// `ln n!` by Stirling's series with exact values for small `n`.
pub fn ln_factorial(n: u64) -> f64 {
    const EXACT: [f64; 21] = [
        1.0,
        1.0,
        2.0,
        6.0,
        24.0,
        120.0,
        720.0,
        5040.0,
        40320.0,
        362880.0,
        3628800.0,
        39916800.0,
        479001600.0,
        6227020800.0,
        87178291200.0,
        1307674368000.0,
        20922789888000.0,
        355687428096000.0,
        6402373705728000.0,
        121645100408832000.0,
        2432902008176640000.0,
    ];
    if (n as usize) < EXACT.len() {
        return EXACT[n as usize].ln();
    }
    if n < 1024 {
        // Direct log-sum: O(n) but exact to rounding, and only used once per
        // call in non-hot paths.
        return (EXACT.len() as u64..=n)
            .map(|i| (i as f64).ln())
            .sum::<f64>()
            + EXACT[EXACT.len() - 1].ln();
    }
    // Stirling: ln n! ≈ n ln n − n + ½ ln(2πn) + 1/(12n) − 1/(360n³)
    let nf = n as f64;
    nf * nf.ln() - nf + 0.5 * (2.0 * core::f64::consts::PI * nf).ln() + 1.0 / (12.0 * nf)
        - 1.0 / (360.0 * nf * nf * nf)
}

/// Enumerates all size-`k` multisets over `0..b`, in colexicographic order
/// (each multiset is a non-decreasing `Vec<usize>`).
///
/// The iterator yields exactly `multiset_coefficient(b, k)` items. This is
/// the ground truth that workload rank/unrank in `mps-sampling` is tested
/// against.
///
/// # Example
///
/// ```
/// use mps_stats::combinatorics::multisets;
///
/// let all: Vec<_> = multisets(3, 2).collect();
/// assert_eq!(all, vec![
///     vec![0, 0], vec![0, 1], vec![0, 2],
///     vec![1, 1], vec![1, 2], vec![2, 2],
/// ]);
/// ```
pub fn multisets(b: usize, k: usize) -> Multisets {
    Multisets {
        b,
        k,
        next: if b == 0 && k > 0 {
            None
        } else {
            Some(vec![0; k])
        },
    }
}

/// Iterator returned by [`multisets`].
#[derive(Debug, Clone)]
pub struct Multisets {
    b: usize,
    k: usize,
    next: Option<Vec<usize>>,
}

impl Iterator for Multisets {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let current = self.next.take()?;
        if self.k > 0 {
            // Advance: find rightmost position that can be incremented.
            let mut succ = current.clone();
            let mut i = self.k;
            loop {
                if i == 0 {
                    // Exhausted.
                    self.next = None;
                    break;
                }
                i -= 1;
                if succ[i] + 1 < self.b {
                    let v = succ[i] + 1;
                    for item in succ.iter_mut().skip(i) {
                        *item = v;
                    }
                    self.next = Some(succ);
                    break;
                }
            }
        } else {
            self.next = None;
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(0, 0), Some(1));
        assert_eq!(binomial(5, 0), Some(1));
        assert_eq!(binomial(5, 5), Some(1));
        assert_eq!(binomial(5, 2), Some(10));
        assert_eq!(binomial(5, 6), Some(0));
        assert_eq!(binomial(52, 5), Some(2598960));
    }

    #[test]
    fn binomial_symmetry() {
        for n in 0..30u64 {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn binomial_pascal() {
        for n in 1..25u64 {
            for k in 1..=n {
                let lhs = binomial(n, k).unwrap();
                let rhs = binomial(n - 1, k - 1).unwrap() + binomial(n - 1, k).unwrap();
                assert_eq!(lhs, rhs);
            }
        }
    }

    #[test]
    fn binomial_large_exact() {
        // C(128, 64) fits in u128.
        assert!(binomial(128, 64).is_some());
        // C(200, 100) overflows u128.
        assert_eq!(binomial(200, 100), None);
    }

    #[test]
    fn paper_population_sizes() {
        // Section IV-A: 253 workloads for 2 cores, 12650 for 4 cores from
        // 22 benchmarks; 8 cores has a "huge" population.
        assert_eq!(multiset_coefficient(22, 2), Some(253));
        assert_eq!(multiset_coefficient(22, 4), Some(12650));
        assert_eq!(multiset_coefficient(22, 8), Some(4292145));
    }

    #[test]
    fn multiset_edge_cases() {
        assert_eq!(multiset_coefficient(0, 0), Some(1));
        assert_eq!(multiset_coefficient(0, 3), Some(0));
        assert_eq!(multiset_coefficient(7, 0), Some(1));
        assert_eq!(multiset_coefficient(1, 9), Some(1));
    }

    #[test]
    fn ln_factorial_matches_exact() {
        let mut f: f64 = 1.0;
        for n in 1..=30u64 {
            f *= n as f64;
            assert!(
                (ln_factorial(n) - f.ln()).abs() < 1e-10,
                "n={n}: {} vs {}",
                ln_factorial(n),
                f.ln()
            );
        }
    }

    #[test]
    fn ln_binomial_matches_exact() {
        for (n, k) in [(10u64, 3u64), (52, 5), (100, 50)] {
            let exact = binomial(n, k).unwrap() as f64;
            assert!((ln_binomial(n, k) - exact.ln()).abs() < 1e-8, "n={n} k={k}");
        }
    }

    #[test]
    fn multiset_f64_huge_is_finite() {
        let v = multiset_coefficient_f64(1000, 64);
        assert!(v.is_finite() && v > 1e100);
    }

    #[test]
    fn multisets_enumeration_counts() {
        for b in 0..6usize {
            for k in 0..5usize {
                let count = multisets(b, k).count() as u128;
                assert_eq!(
                    count,
                    multiset_coefficient(b as u64, k as u64).unwrap(),
                    "b={b} k={k}"
                );
            }
        }
    }

    #[test]
    fn multisets_are_sorted_and_unique() {
        let all: Vec<_> = multisets(4, 3).collect();
        for w in &all {
            assert!(w.windows(2).all(|p| p[0] <= p[1]), "not sorted: {w:?}");
        }
        let mut dedup = all.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
        // Colexicographic order means the sequence itself is sorted.
        let mut sorted = all.clone();
        sorted.sort();
        assert_eq!(sorted, all);
    }

    #[test]
    fn multisets_k_zero_yields_one_empty() {
        let all: Vec<_> = multisets(5, 0).collect();
        assert_eq!(all, vec![Vec::<usize>::new()]);
        let none: Vec<_> = multisets(0, 2).collect();
        assert!(none.is_empty());
    }
}

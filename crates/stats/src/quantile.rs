//! Quantiles and bootstrap resampling.
//!
//! Used by the speedup-accuracy machinery (`mps-sampling::speedup`) and
//! available for any empirical-distribution summarization. Quantiles use
//! linear interpolation between order statistics (type-7, the common
//! default).

use crate::rng::Rng;

/// The `q`-quantile (0 ≤ q ≤ 1) of `xs` by linear interpolation of the
/// sorted order statistics.
///
/// Returns `NaN` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside [0, 1] or any value is NaN.
///
/// # Example
///
/// ```
/// use mps_stats::quantile::quantile;
///
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(quantile(&xs, 0.0), 1.0);
/// assert_eq!(quantile(&xs, 1.0), 4.0);
/// assert_eq!(quantile(&xs, 0.5), 2.5);
/// ```
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile must be in [0,1], got {q}"
    );
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    quantile_sorted(&sorted, q)
}

/// [`quantile`] over data the caller has already sorted (no copy).
///
/// # Panics
///
/// Panics if `q` is outside [0, 1]; debug-asserts sortedness.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile must be in [0,1], got {q}"
    );
    if sorted.is_empty() {
        return f64::NAN;
    }
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// The median.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// A central interval `[low, high]` with the given coverage from an
/// empirical distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower quantile.
    pub low: f64,
    /// Upper quantile.
    pub high: f64,
    /// Coverage the interval was asked for.
    pub coverage: f64,
}

impl Interval {
    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.high - self.low
    }

    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        (self.low..=self.high).contains(&x)
    }
}

/// Central `coverage`-interval of `xs`.
///
/// # Panics
///
/// Panics if `coverage` is not in (0, 1].
pub fn central_interval(xs: &[f64], coverage: f64) -> Interval {
    assert!(
        coverage > 0.0 && coverage <= 1.0,
        "coverage must be in (0,1], got {coverage}"
    );
    let alpha = (1.0 - coverage) / 2.0;
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in interval input"));
    Interval {
        low: quantile_sorted(&sorted, alpha),
        high: quantile_sorted(&sorted, 1.0 - alpha),
        coverage,
    }
}

/// Nonparametric bootstrap: draws `resamples` with-replacement samples of
/// `xs`, applies `statistic`, and returns the central `coverage`-interval
/// of the statistic's distribution.
///
/// # Panics
///
/// Panics if `xs` is empty or `resamples` is zero.
pub fn bootstrap_interval<F: FnMut(&[f64]) -> f64>(
    xs: &[f64],
    mut statistic: F,
    resamples: usize,
    coverage: f64,
    rng: &mut Rng,
) -> Interval {
    assert!(!xs.is_empty(), "cannot bootstrap an empty sample");
    assert!(resamples > 0, "need at least one resample");
    let mut stats = Vec::with_capacity(resamples);
    let mut buf = vec![0.0; xs.len()];
    for _ in 0..resamples {
        for slot in &mut buf {
            *slot = xs[rng.index(xs.len())];
        }
        stats.push(statistic(&buf));
    }
    central_interval(&stats, coverage)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_endpoints_and_median() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(median(&xs), 3.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((quantile(&xs, 0.25) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.75) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_single_value() {
        assert_eq!(quantile(&[42.0], 0.3), 42.0);
    }

    #[test]
    fn quantile_empty_is_nan() {
        assert!(quantile(&[], 0.5).is_nan());
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn quantile_out_of_range_panics() {
        quantile(&[1.0], 1.5);
    }

    #[test]
    fn central_interval_covers_bulk() {
        let xs: Vec<f64> = (0..1001).map(|i| i as f64).collect();
        let iv = central_interval(&xs, 0.9);
        assert!((iv.low - 50.0).abs() < 1.0);
        assert!((iv.high - 950.0).abs() < 1.0);
        assert!(iv.contains(500.0));
        assert!(!iv.contains(10.0));
        assert!((iv.width() - 900.0).abs() < 2.0);
    }

    #[test]
    fn bootstrap_mean_interval_contains_true_mean() {
        let mut rng = Rng::new(21);
        let xs: Vec<f64> = (0..200).map(|_| 5.0 + rng.next_gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let iv = bootstrap_interval(
            &xs,
            |s| s.iter().sum::<f64>() / s.len() as f64,
            500,
            0.95,
            &mut rng,
        );
        assert!(iv.contains(mean), "{iv:?} vs mean {mean}");
        // Standard error of the mean ≈ 1/√200 ≈ 0.07 → interval ≈ ±0.14.
        assert!(iv.width() < 0.5, "{iv:?}");
    }

    #[test]
    fn bootstrap_is_deterministic_per_seed() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin()).collect();
        let f = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
        let a = bootstrap_interval(&xs, f, 200, 0.9, &mut Rng::new(3));
        let b = bootstrap_interval(&xs, f, 200, 0.9, &mut Rng::new(3));
        assert_eq!(a, b);
    }
}

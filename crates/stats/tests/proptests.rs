//! Property-based tests for the statistics substrate.

use mps_stats::combinatorics::{binomial, multiset_coefficient, multisets};
use mps_stats::confidence::degree_of_confidence_inv_cv;
use mps_stats::{erf, erfc, inverse_erf, Mean, Moments, WeightedMean};
use proptest::prelude::*;

proptest! {
    #[test]
    fn erf_is_bounded_and_odd(x in -50.0f64..50.0) {
        let e = erf(x);
        prop_assert!((-1.0..=1.0).contains(&e));
        prop_assert!((erf(-x) + e).abs() < 1e-12);
    }

    #[test]
    fn erf_is_monotone(a in -6.0f64..6.0, b in -6.0f64..6.0) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(erf(lo) <= erf(hi) + 1e-15);
    }

    #[test]
    fn erfc_complements(x in -6.0f64..6.0) {
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_erf_round_trips(x in -3.0f64..3.0) {
        let y = erf(x);
        prop_assert!((inverse_erf(y) - x).abs() < 1e-8);
    }

    #[test]
    fn moments_merge_matches_sequential(
        data in prop::collection::vec(-1e6f64..1e6, 2..200),
        split in 0usize..200,
    ) {
        let split = split.min(data.len());
        let whole: Moments = data.iter().collect();
        let mut left: Moments = data[..split].iter().collect();
        let right: Moments = data[split..].iter().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() <= 1e-6 * whole.mean().abs().max(1.0));
        prop_assert!(
            (left.population_variance() - whole.population_variance()).abs()
                <= 1e-4 * whole.population_variance().abs().max(1.0)
        );
    }

    #[test]
    fn mean_inequality_chain(data in prop::collection::vec(0.01f64..1e3, 1..50)) {
        let h = Mean::Harmonic.of(&data);
        let g = Mean::Geometric.of(&data);
        let a = Mean::Arithmetic.of(&data);
        prop_assert!(h <= g * (1.0 + 1e-12));
        prop_assert!(g <= a * (1.0 + 1e-12));
    }

    #[test]
    fn weighted_mean_is_bounded_by_extremes(
        values in prop::collection::vec(0.01f64..1e3, 1..20),
        weights in prop::collection::vec(0.01f64..10.0, 1..20),
    ) {
        let n = values.len().min(weights.len());
        for kind in [Mean::Arithmetic, Mean::Harmonic, Mean::Geometric] {
            let mut wm = WeightedMean::new(kind);
            for i in 0..n {
                wm.push(values[i], weights[i]);
            }
            let lo = values[..n].iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = values[..n].iter().cloned().fold(0.0f64, f64::max);
            let v = wm.value();
            prop_assert!(v >= lo * (1.0 - 1e-9) && v <= hi * (1.0 + 1e-9),
                "{kind:?}: {v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn confidence_is_a_probability_and_monotone_in_w(
        inv_cv in -5.0f64..5.0,
        w in 1usize..2000,
    ) {
        let c = degree_of_confidence_inv_cv(inv_cv, w);
        prop_assert!((0.0..=1.0).contains(&c));
        let c2 = degree_of_confidence_inv_cv(inv_cv, w + 100);
        if inv_cv > 0.0 {
            prop_assert!(c2 >= c - 1e-12);
        } else if inv_cv < 0.0 {
            prop_assert!(c2 <= c + 1e-12);
        }
    }

    #[test]
    fn pascal_identity(n in 1u64..60, k in 1u64..60) {
        prop_assume!(k <= n);
        let lhs = binomial(n, k).unwrap();
        let rhs = binomial(n - 1, k - 1).unwrap() + binomial(n - 1, k).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn multiset_enumeration_count_matches_formula(b in 1usize..7, k in 0usize..5) {
        let count = multisets(b, k).count() as u128;
        prop_assert_eq!(count, multiset_coefficient(b as u64, k as u64).unwrap());
    }

    #[test]
    fn hockey_stick_identity(b in 1u64..30, k in 1u64..10) {
        // Σ_{j=0..k} multichoose(b, j) = multichoose(b+1, k)
        let lhs: u128 = (0..=k).map(|j| multiset_coefficient(b, j).unwrap()).sum();
        prop_assert_eq!(lhs, multiset_coefficient(b + 1, k).unwrap());
    }
}

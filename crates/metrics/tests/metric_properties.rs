//! Property-based tests of the throughput metrics.

use mps_metrics::{
    pair_comparison, per_workload_throughput, sample_throughput, stratified_throughput,
    workload_difference, PerfTable, ThroughputMetric, WorkloadPerf,
};
use proptest::prelude::*;

fn positive_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..10.0, n..=n)
}

proptest! {
    #[test]
    fn throughput_is_bounded_by_extremes(
        ipcs in prop::collection::vec(0.01f64..10.0, 1..8),
    ) {
        let refs = vec![1.0; ipcs.len()];
        for m in [
            ThroughputMetric::IpcThroughput,
            ThroughputMetric::WeightedSpeedup,
            ThroughputMetric::HarmonicSpeedup,
            ThroughputMetric::GeomeanSpeedup,
        ] {
            let t = per_workload_throughput(m, &ipcs, &refs);
            let lo = ipcs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = ipcs.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!(t >= lo * (1.0 - 1e-9) && t <= hi * (1.0 + 1e-9), "{m}: {t}");
        }
    }

    #[test]
    fn speedup_metrics_scale_with_reference(
        ipcs in positive_vec(4),
        scale in 0.1f64..10.0,
    ) {
        // Scaling all reference IPCs by s divides speedup metrics by s.
        let refs = vec![1.0; 4];
        let scaled: Vec<f64> = refs.iter().map(|&r| r * scale).collect();
        for m in [
            ThroughputMetric::WeightedSpeedup,
            ThroughputMetric::HarmonicSpeedup,
            ThroughputMetric::GeomeanSpeedup,
        ] {
            let base = per_workload_throughput(m, &ipcs, &refs);
            let div = per_workload_throughput(m, &ipcs, &scaled);
            prop_assert!((div * scale - base).abs() < 1e-9 * base.abs().max(1.0), "{m}");
        }
    }

    #[test]
    fn hsu_le_gsu_le_wsu(ipcs in positive_vec(5), refs in positive_vec(5)) {
        let wsu = per_workload_throughput(ThroughputMetric::WeightedSpeedup, &ipcs, &refs);
        let gsu = per_workload_throughput(ThroughputMetric::GeomeanSpeedup, &ipcs, &refs);
        let hsu = per_workload_throughput(ThroughputMetric::HarmonicSpeedup, &ipcs, &refs);
        prop_assert!(hsu <= gsu * (1.0 + 1e-12));
        prop_assert!(gsu <= wsu * (1.0 + 1e-12));
    }

    #[test]
    fn difference_orientation_is_consistent(
        t_x in 0.01f64..10.0,
        t_y in 0.01f64..10.0,
    ) {
        for m in [
            ThroughputMetric::IpcThroughput,
            ThroughputMetric::WeightedSpeedup,
            ThroughputMetric::HarmonicSpeedup,
            ThroughputMetric::GeomeanSpeedup,
        ] {
            let d = workload_difference(m, t_x, t_y);
            prop_assert_eq!(d > 0.0, t_y > t_x, "{}: d = {}", m, d);
            // Antisymmetric.
            let r = workload_difference(m, t_y, t_x);
            prop_assert!((d + r).abs() < 1e-12, "{}", m);
        }
    }

    #[test]
    fn stratified_single_stratum_equals_plain(
        ts in prop::collection::vec(0.01f64..10.0, 1..20),
    ) {
        for m in [
            ThroughputMetric::IpcThroughput,
            ThroughputMetric::HarmonicSpeedup,
            ThroughputMetric::GeomeanSpeedup,
        ] {
            let plain = sample_throughput(m, &ts);
            let strat = stratified_throughput(m, &[(0.37, ts.clone())]);
            prop_assert!((plain - strat).abs() < 1e-9 * plain.abs().max(1.0), "{m}");
        }
    }

    #[test]
    fn stratified_between_stratum_means(
        a in prop::collection::vec(0.01f64..10.0, 1..10),
        b in prop::collection::vec(0.01f64..10.0, 1..10),
        wa in 0.01f64..1.0,
    ) {
        let m = ThroughputMetric::IpcThroughput;
        let t = stratified_throughput(m, &[(wa, a.clone()), (1.0 - wa, b.clone())]);
        let ma = sample_throughput(m, &a);
        let mb = sample_throughput(m, &b);
        let lo = ma.min(mb);
        let hi = ma.max(mb);
        prop_assert!(t >= lo - 1e-12 && t <= hi + 1e-12);
    }

    #[test]
    fn swapping_machines_negates_mean_difference(
        t_x in prop::collection::vec(0.1f64..5.0, 2..30),
        offsets in prop::collection::vec(-0.05f64..0.05, 2..30),
    ) {
        let n = t_x.len().min(offsets.len());
        let t_x = &t_x[..n];
        let t_y: Vec<f64> = t_x.iter().zip(&offsets[..n]).map(|(&x, &o)| (x + o).max(0.01)).collect();
        let m = ThroughputMetric::WeightedSpeedup;
        let fwd = pair_comparison(m, t_x, &t_y);
        let rev = pair_comparison(m, &t_y, t_x);
        prop_assert!((fwd.mean_difference + rev.mean_difference).abs() < 1e-12);
        prop_assert_eq!(fwd.workloads, n);
    }

    #[test]
    fn perf_table_throughputs_align_with_rows(
        ipcs in prop::collection::vec(0.01f64..5.0, 2..6),
    ) {
        let k = ipcs.len();
        let mut table = PerfTable::new(vec![1.0; 3]);
        table.push(WorkloadPerf::new(vec![0; k], ipcs.clone()));
        table.push(WorkloadPerf::new(vec![1; k], ipcs.iter().map(|x| x * 2.0).collect()));
        let t = table.throughputs(ThroughputMetric::IpcThroughput);
        prop_assert_eq!(t.len(), 2);
        prop_assert!((t[1] - 2.0 * t[0]).abs() < 1e-9 * t[0].max(1.0));
    }
}

//! Fairness metrics for multiprogrammed workloads.
//!
//! The paper's Section II lists fairness alongside throughput among the
//! criteria computer architects compare microarchitectures on. These are
//! the standard fairness summaries used in the SMT/CMP literature,
//! operating on per-thread speedups `IPC_k / IPCref[b_k]` (the same
//! normalized quantities as the speedup throughput metrics):
//!
//! * [`min_max_fairness`] — `min speedup / max speedup` (1 = perfectly
//!   fair, → 0 as one thread starves),
//! * [`jain_index`] — Jain's fairness index `(Σx)² / (n·Σx²)` in
//!   `[1/n, 1]`,
//! * [`hmean_fairness`] — the harmonic mean of speedups itself, which
//!   Luo, Gummaraju & Franklin proposed precisely because it balances
//!   throughput *and* fairness (the paper's HSU metric).

/// Per-thread speedups of one workload: `IPC_k / IPCref[b_k]`.
///
/// # Panics
///
/// Panics if the slices are empty, have different lengths, or any
/// reference is non-positive.
pub fn speedups(ipcs: &[f64], ref_ipcs: &[f64]) -> Vec<f64> {
    assert!(!ipcs.is_empty(), "a workload has at least one thread");
    assert_eq!(ipcs.len(), ref_ipcs.len(), "parallel per-core arrays");
    ipcs.iter()
        .zip(ref_ipcs)
        .map(|(&i, &r)| {
            assert!(r > 0.0, "reference IPC must be positive, got {r}");
            i / r
        })
        .collect()
}

/// `min speedup / max speedup`: 1 when all threads progress at the same
/// relative rate, → 0 when any thread starves.
///
/// # Example
///
/// ```
/// use mps_metrics::fairness::min_max_fairness;
///
/// assert!((min_max_fairness(&[0.5, 1.0]) - 0.5).abs() < 1e-12);
/// assert_eq!(min_max_fairness(&[0.8, 0.8, 0.8]), 1.0);
/// ```
///
/// # Panics
///
/// Panics if `speedups` is empty or contains non-positive values.
pub fn min_max_fairness(speedups: &[f64]) -> f64 {
    assert!(!speedups.is_empty(), "need at least one speedup");
    let mut lo = f64::INFINITY;
    let mut hi = 0.0f64;
    for &s in speedups {
        assert!(s > 0.0, "speedups must be positive, got {s}");
        lo = lo.min(s);
        hi = hi.max(s);
    }
    lo / hi
}

/// Jain's fairness index `(Σx)² / (n·Σx²)`, in `[1/n, 1]`.
///
/// # Example
///
/// ```
/// use mps_metrics::fairness::jain_index;
///
/// assert!((jain_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
/// // One thread hogging everything: index → 1/n.
/// assert!(jain_index(&[1.0, 1e-6, 1e-6]) < 0.34);
/// ```
///
/// # Panics
///
/// Panics if `speedups` is empty or contains non-positive values.
pub fn jain_index(speedups: &[f64]) -> f64 {
    assert!(!speedups.is_empty(), "need at least one speedup");
    let n = speedups.len() as f64;
    let (mut sum, mut sq) = (0.0, 0.0);
    for &s in speedups {
        assert!(s > 0.0, "speedups must be positive, got {s}");
        sum += s;
        sq += s * s;
    }
    sum * sum / (n * sq)
}

/// The harmonic mean of speedups (the paper's HSU metric), which rewards
/// both high and *balanced* per-thread progress.
pub fn hmean_fairness(speedups: &[f64]) -> f64 {
    mps_stats::Mean::Harmonic.of(speedups)
}

/// Fairness summary of one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FairnessReport {
    /// `min/max` speedup ratio.
    pub min_max: f64,
    /// Jain's index.
    pub jain: f64,
    /// Harmonic mean of speedups.
    pub hmean: f64,
}

/// Computes all three fairness summaries from raw IPCs and references.
pub fn fairness_report(ipcs: &[f64], ref_ipcs: &[f64]) -> FairnessReport {
    let s = speedups(ipcs, ref_ipcs);
    FairnessReport {
        min_max: min_max_fairness(&s),
        jain: jain_index(&s),
        hmean: hmean_fairness(&s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_fair_workload_scores_one() {
        let r = fairness_report(&[1.0, 2.0], &[2.0, 4.0]); // both at 0.5
        assert!((r.min_max - 1.0).abs() < 1e-12);
        assert!((r.jain - 1.0).abs() < 1e-12);
        assert!((r.hmean - 0.5).abs() < 1e-12);
    }

    #[test]
    fn starving_thread_tanks_all_metrics() {
        let fair = fairness_report(&[1.0, 1.0], &[1.0, 1.0]);
        let unfair = fairness_report(&[1.9, 0.1], &[1.0, 1.0]);
        assert!(unfair.min_max < 0.1);
        assert!(unfair.jain < fair.jain);
        assert!(unfair.hmean < fair.hmean);
    }

    #[test]
    fn jain_bounds() {
        for n in 1..6usize {
            let equal = vec![0.7; n];
            assert!((jain_index(&equal) - 1.0).abs() < 1e-12);
            let mut hog = vec![1e-9; n];
            hog[0] = 1.0;
            let j = jain_index(&hog);
            assert!(j >= 1.0 / n as f64 - 1e-9, "n={n} j={j}");
            assert!(j <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn jain_is_scale_invariant() {
        let a = jain_index(&[0.2, 0.5, 0.9]);
        let b = jain_index(&[2.0, 5.0, 9.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn min_max_is_scale_invariant() {
        let a = min_max_fairness(&[0.2, 0.5]);
        let b = min_max_fairness(&[2.0, 5.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn single_thread_is_trivially_fair() {
        let r = fairness_report(&[0.7], &[1.0]);
        assert_eq!(r.min_max, 1.0);
        assert!((r.jain - 1.0).abs() < 1e-12);
        assert!((r.hmean - 0.7).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_speedup_panics() {
        min_max_fairness(&[0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "parallel per-core arrays")]
    fn mismatched_lengths_panic() {
        speedups(&[1.0], &[1.0, 2.0]);
    }
}

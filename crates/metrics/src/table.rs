//! Performance tables: raw simulation results ready for metric evaluation.
//!
//! A study produces, per microarchitecture, a table of `W × K` IPC values
//! (paper Section II): one row per workload, one IPC per core, plus the
//! per-benchmark single-thread reference IPCs measured on the reference
//! machine. [`PerfTable`] packages these and evaluates any
//! [`ThroughputMetric`] over them.

use crate::metric::{per_workload_throughput, sample_throughput, ThroughputMetric};

/// Result of simulating one workload on one microarchitecture.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadPerf {
    /// Benchmark index running on each core (`b_wk` in the paper).
    pub benchmarks: Vec<usize>,
    /// Measured IPC of the thread on each core (`IPC_wk`).
    pub ipcs: Vec<f64>,
}

impl WorkloadPerf {
    /// Creates a row, checking the two arrays are parallel.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or are zero.
    pub fn new(benchmarks: Vec<usize>, ipcs: Vec<f64>) -> Self {
        assert!(!benchmarks.is_empty(), "a workload needs at least one core");
        assert_eq!(benchmarks.len(), ipcs.len(), "one IPC per core required");
        WorkloadPerf { benchmarks, ipcs }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.benchmarks.len()
    }
}

/// Per-microarchitecture results over a workload sample.
///
/// # Example
///
/// ```
/// use mps_metrics::{PerfTable, WorkloadPerf, ThroughputMetric};
///
/// // Two benchmarks with single-thread IPCs 2.0 and 1.0.
/// let mut table = PerfTable::new(vec![2.0, 1.0]);
/// table.push(WorkloadPerf::new(vec![0, 1], vec![1.0, 0.5]));
/// table.push(WorkloadPerf::new(vec![0, 0], vec![1.5, 1.5]));
/// let t = table.throughputs(ThroughputMetric::WeightedSpeedup);
/// assert!((t[0] - 0.5).abs() < 1e-12);  // (0.5 + 0.5)/2
/// assert!((t[1] - 0.75).abs() < 1e-12); // (0.75 + 0.75)/2
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PerfTable {
    ref_ipcs: Vec<f64>,
    rows: Vec<WorkloadPerf>,
}

impl PerfTable {
    /// Creates an empty table with the given per-benchmark single-thread
    /// reference IPCs (indexed by benchmark id).
    pub fn new(ref_ipcs: Vec<f64>) -> Self {
        PerfTable {
            ref_ipcs,
            rows: Vec::new(),
        }
    }

    /// Appends one workload's results.
    ///
    /// # Panics
    ///
    /// Panics if a benchmark index has no reference IPC.
    pub fn push(&mut self, row: WorkloadPerf) {
        for &b in &row.benchmarks {
            assert!(
                b < self.ref_ipcs.len(),
                "benchmark {b} has no reference IPC (table has {})",
                self.ref_ipcs.len()
            );
        }
        self.rows.push(row);
    }

    /// Number of workloads recorded.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The recorded rows.
    pub fn rows(&self) -> &[WorkloadPerf] {
        &self.rows
    }

    /// The per-benchmark reference IPCs.
    pub fn ref_ipcs(&self) -> &[f64] {
        &self.ref_ipcs
    }

    /// Per-workload throughput `t(w)` for every recorded workload.
    pub fn throughputs(&self, metric: ThroughputMetric) -> Vec<f64> {
        self.rows
            .iter()
            .map(|row| {
                let refs: Vec<f64> = row.benchmarks.iter().map(|&b| self.ref_ipcs[b]).collect();
                per_workload_throughput(metric, &row.ipcs, &refs)
            })
            .collect()
    }

    /// Sample throughput `T` (equation (2)) over all recorded workloads.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty.
    pub fn sample_throughput(&self, metric: ThroughputMetric) -> f64 {
        sample_throughput(metric, &self.throughputs(metric))
    }
}

impl Extend<WorkloadPerf> for PerfTable {
    fn extend<I: IntoIterator<Item = WorkloadPerf>>(&mut self, iter: I) {
        for row in iter {
            self.push(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> PerfTable {
        let mut t = PerfTable::new(vec![2.0, 1.0, 0.5]);
        t.push(WorkloadPerf::new(vec![0, 1], vec![1.0, 0.5]));
        t.push(WorkloadPerf::new(vec![1, 2], vec![0.8, 0.4]));
        t.push(WorkloadPerf::new(vec![2, 2], vec![0.25, 0.25]));
        t
    }

    #[test]
    fn throughputs_per_metric() {
        let t = sample_table();
        let ipct = t.throughputs(ThroughputMetric::IpcThroughput);
        assert!((ipct[0] - 0.75).abs() < 1e-12);
        assert!((ipct[1] - 0.6).abs() < 1e-12);
        let wsu = t.throughputs(ThroughputMetric::WeightedSpeedup);
        assert!((wsu[0] - 0.5).abs() < 1e-12);
        assert!((wsu[1] - (0.8 + 0.8) / 2.0).abs() < 1e-12);
        assert!((wsu[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sample_throughput_aggregates() {
        let t = sample_table();
        let wsu = t.sample_throughput(ThroughputMetric::WeightedSpeedup);
        assert!((wsu - (0.5 + 0.8 + 0.5) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn extend_pushes_rows() {
        let mut t = PerfTable::new(vec![1.0]);
        t.extend([
            WorkloadPerf::new(vec![0], vec![0.9]),
            WorkloadPerf::new(vec![0], vec![1.1]),
        ]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "no reference IPC")]
    fn unknown_benchmark_panics() {
        let mut t = PerfTable::new(vec![1.0]);
        t.push(WorkloadPerf::new(vec![1], vec![0.9]));
    }

    #[test]
    #[should_panic(expected = "one IPC per core")]
    fn row_length_mismatch_panics() {
        WorkloadPerf::new(vec![0, 1], vec![0.9]);
    }

    #[test]
    fn cores_reports_row_width() {
        assert_eq!(WorkloadPerf::new(vec![0, 0, 0], vec![1.0; 3]).cores(), 3);
    }
}

//! Multiprogram throughput metrics (paper Section II-D).
//!
//! Throughput is "the quantity of work done per unit of time". For a
//! workload `w` of `K` threads, all the usual metrics are instances of one
//! formula (paper equation (1), after Michaud's *Demystifying multicore
//! throughput metrics*):
//!
//! ```text
//! t(w) = X-mean_{k ∈ [1,K]}  IPC_wk / IPCref[b_wk]
//! ```
//!
//! and the sample throughput is the same `X-mean` across workloads
//! (equation (2)). The three metrics the paper evaluates:
//!
//! | metric | `X-mean` | `IPCref[b]` |
//! |--------|----------|-------------|
//! | IPC throughput (IPCT) | arithmetic | 1 |
//! | weighted speedup (WSU) | arithmetic | single-thread IPC |
//! | harmonic mean of speedups (HSU) | harmonic | single-thread IPC |
//!
//! plus the geometric-mean-of-speedups variant from footnote 3.
//!
//! The crate also implements the per-workload difference `d(w)` on which the
//! whole sampling theory rests (equations (4) and (7)): for arithmetic-mean
//! metrics `d(w) = t_Y(w) − t_X(w)`; for the harmonic mean the CLT applies
//! to the *reciprocal* throughput, `d(w) = 1/t_X(w) − 1/t_Y(w)`; for the
//! geometric mean it applies to the logarithm, `d(w) = ln t_Y − ln t_X`.
//! All three are oriented so that `d(w) > 0` means Y beats X on `w`.

pub mod difference;
pub mod fairness;
pub mod metric;
pub mod table;

pub use difference::{pair_comparison, workload_difference, PairComparison};
pub use fairness::{fairness_report, jain_index, min_max_fairness, FairnessReport};
pub use metric::{
    per_workload_throughput, sample_throughput, stratified_throughput, ThroughputMetric,
};
pub use table::{PerfTable, WorkloadPerf};

//! The throughput metrics themselves.

use mps_stats::{Mean, WeightedMean};

/// A multiprogram throughput metric (paper Section II-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThroughputMetric {
    /// IPC throughput: arithmetic mean of raw IPCs (`IPCref ≡ 1`).
    ///
    /// Note the paper's equation (1) makes IPCT the arithmetic *mean*, i.e.
    /// aggregate IPC divided by K — a fixed factor that does not affect any
    /// comparison.
    IpcThroughput,
    /// Weighted speedup [Snavely & Tullsen]: arithmetic mean of
    /// `IPC / single-thread IPC`.
    WeightedSpeedup,
    /// Harmonic mean of speedups [Luo, Gummaraju & Franklin].
    HarmonicSpeedup,
    /// Geometric mean of speedups (paper footnote 3).
    GeomeanSpeedup,
}

impl ThroughputMetric {
    /// All metrics evaluated in the paper's experiments, in paper order.
    pub const PAPER_METRICS: [ThroughputMetric; 3] = [
        ThroughputMetric::IpcThroughput,
        ThroughputMetric::WeightedSpeedup,
        ThroughputMetric::HarmonicSpeedup,
    ];

    /// The `X-mean` used both across cores (equation (1)) and across
    /// workloads (equation (2)).
    pub fn mean(self) -> Mean {
        match self {
            ThroughputMetric::IpcThroughput | ThroughputMetric::WeightedSpeedup => Mean::Arithmetic,
            ThroughputMetric::HarmonicSpeedup => Mean::Harmonic,
            ThroughputMetric::GeomeanSpeedup => Mean::Geometric,
        }
    }

    /// Whether `IPCref` is the single-thread IPC (`true`) or 1 (`false`).
    pub fn uses_reference_ipc(self) -> bool {
        !matches!(self, ThroughputMetric::IpcThroughput)
    }

    /// Short name as used in the paper's figures.
    pub fn short_name(self) -> &'static str {
        match self {
            ThroughputMetric::IpcThroughput => "IPCT",
            ThroughputMetric::WeightedSpeedup => "WSU",
            ThroughputMetric::HarmonicSpeedup => "HSU",
            ThroughputMetric::GeomeanSpeedup => "GSU",
        }
    }
}

impl core::fmt::Display for ThroughputMetric {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Per-workload throughput `t(w)` (paper equation (1)).
///
/// `ipcs[k]` is the IPC of the thread on core `k` during the multiprogram
/// run; `ref_ipcs[k]` is the single-thread IPC of the *benchmark* running on
/// core `k` on the reference machine (ignored by IPCT).
///
/// # Panics
///
/// Panics if the slices are empty or of different lengths, or if a
/// reference IPC is not strictly positive for a metric that uses it.
///
/// # Example
///
/// ```
/// use mps_metrics::{per_workload_throughput, ThroughputMetric};
///
/// // Two cores at IPC 1.0 and 2.0 with single-thread IPCs 2.0 and 2.0:
/// let wsu = per_workload_throughput(
///     ThroughputMetric::WeightedSpeedup, &[1.0, 2.0], &[2.0, 2.0]);
/// assert!((wsu - 0.75).abs() < 1e-12); // (0.5 + 1.0) / 2
/// ```
pub fn per_workload_throughput(metric: ThroughputMetric, ipcs: &[f64], ref_ipcs: &[f64]) -> f64 {
    assert!(!ipcs.is_empty(), "a workload must have at least one core");
    assert_eq!(
        ipcs.len(),
        ref_ipcs.len(),
        "ipcs and ref_ipcs must be per-core parallel arrays"
    );
    let mean = metric.mean();
    if metric.uses_reference_ipc() {
        for (k, &r) in ref_ipcs.iter().enumerate() {
            assert!(
                r > 0.0,
                "reference IPC for core {k} must be positive, got {r}"
            );
        }
        mean.of_iter(ipcs.iter().zip(ref_ipcs).map(|(&i, &r)| i / r))
    } else {
        mean.of(ipcs)
    }
}

/// Sample throughput `T` across workloads (paper equation (2)).
///
/// # Panics
///
/// Panics if `per_workload` is empty.
pub fn sample_throughput(metric: ThroughputMetric, per_workload: &[f64]) -> f64 {
    assert!(!per_workload.is_empty(), "sample must be non-empty");
    metric.mean().of(per_workload)
}

/// Stratified sample throughput (paper equation (9)): a weighted `X-mean`
/// across strata of the within-stratum `X-mean`, with stratum weights
/// `N_h / N`.
///
/// `strata` yields `(weight, per-workload throughputs of the stratum's
/// sample)`. Weights need not be normalized.
///
/// # Panics
///
/// Panics if there are no strata with positive weight, or any stratum's
/// sample is empty while its weight is positive.
///
/// # Example
///
/// ```
/// use mps_metrics::{stratified_throughput, ThroughputMetric};
///
/// // 80% of the population averages 1.0, 20% averages 2.0.
/// let t = stratified_throughput(
///     ThroughputMetric::IpcThroughput,
///     &[(0.8, vec![1.0, 1.0]), (0.2, vec![2.0])],
/// );
/// assert!((t - 1.2).abs() < 1e-12);
/// ```
pub fn stratified_throughput(metric: ThroughputMetric, strata: &[(f64, Vec<f64>)]) -> f64 {
    let mean = metric.mean();
    let mut acc = WeightedMean::new(mean);
    for (h, (weight, sample)) in strata.iter().enumerate() {
        if *weight == 0.0 {
            continue;
        }
        assert!(
            !sample.is_empty(),
            "stratum {h} has weight {weight} but an empty sample"
        );
        acc.push(mean.of(sample), *weight);
    }
    let t = acc.value();
    assert!(!t.is_nan(), "no stratum had positive weight");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn ipct_is_mean_ipc() {
        let t = per_workload_throughput(
            ThroughputMetric::IpcThroughput,
            &[1.0, 2.0, 3.0, 2.0],
            &[9.0, 9.0, 9.0, 9.0], // ignored
        );
        assert!((t - 2.0).abs() < EPS);
    }

    #[test]
    fn wsu_all_at_reference_is_one() {
        // Every thread running at its single-thread IPC gives WSU = 1.
        let t = per_workload_throughput(
            ThroughputMetric::WeightedSpeedup,
            &[1.4, 0.6, 2.2],
            &[1.4, 0.6, 2.2],
        );
        assert!((t - 1.0).abs() < EPS);
        let h = per_workload_throughput(
            ThroughputMetric::HarmonicSpeedup,
            &[1.4, 0.6, 2.2],
            &[1.4, 0.6, 2.2],
        );
        assert!((h - 1.0).abs() < EPS);
    }

    #[test]
    fn hsu_never_exceeds_wsu() {
        // Harmonic mean ≤ arithmetic mean of the same speedups.
        let ipcs = [0.3, 1.9, 0.8, 1.1];
        let refs = [0.5, 2.0, 1.6, 1.2];
        let wsu = per_workload_throughput(ThroughputMetric::WeightedSpeedup, &ipcs, &refs);
        let hsu = per_workload_throughput(ThroughputMetric::HarmonicSpeedup, &ipcs, &refs);
        let gsu = per_workload_throughput(ThroughputMetric::GeomeanSpeedup, &ipcs, &refs);
        assert!(hsu <= gsu && gsu <= wsu, "hsu={hsu} gsu={gsu} wsu={wsu}");
    }

    #[test]
    fn single_core_all_speedup_metrics_agree() {
        for m in [
            ThroughputMetric::WeightedSpeedup,
            ThroughputMetric::HarmonicSpeedup,
            ThroughputMetric::GeomeanSpeedup,
        ] {
            let t = per_workload_throughput(m, &[1.5], &[2.0]);
            assert!((t - 0.75).abs() < EPS, "{m}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn empty_workload_panics() {
        per_workload_throughput(ThroughputMetric::IpcThroughput, &[], &[]);
    }

    #[test]
    #[should_panic(expected = "parallel arrays")]
    fn mismatched_lengths_panic() {
        per_workload_throughput(ThroughputMetric::WeightedSpeedup, &[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_reference_panics() {
        per_workload_throughput(ThroughputMetric::WeightedSpeedup, &[1.0], &[0.0]);
    }

    #[test]
    fn sample_throughput_uses_metric_mean() {
        let ts = [1.0, 2.0, 4.0];
        let a = sample_throughput(ThroughputMetric::WeightedSpeedup, &ts);
        assert!((a - 7.0 / 3.0).abs() < EPS);
        let h = sample_throughput(ThroughputMetric::HarmonicSpeedup, &ts);
        assert!((h - 3.0 / (1.0 + 0.5 + 0.25)).abs() < EPS);
        let g = sample_throughput(ThroughputMetric::GeomeanSpeedup, &ts);
        assert!((g - 2.0) < EPS);
    }

    #[test]
    fn stratified_with_single_stratum_matches_plain() {
        let ts = vec![0.9, 1.4, 2.0, 1.1];
        for m in [
            ThroughputMetric::IpcThroughput,
            ThroughputMetric::HarmonicSpeedup,
            ThroughputMetric::GeomeanSpeedup,
        ] {
            let plain = sample_throughput(m, &ts);
            let strat = stratified_throughput(m, &[(1.0, ts.clone())]);
            assert!((plain - strat).abs() < EPS, "{m}");
        }
    }

    #[test]
    fn stratified_weights_need_not_be_normalized() {
        let a = stratified_throughput(
            ThroughputMetric::IpcThroughput,
            &[(0.8, vec![1.0]), (0.2, vec![2.0])],
        );
        let b = stratified_throughput(
            ThroughputMetric::IpcThroughput,
            &[(8.0, vec![1.0]), (2.0, vec![2.0])],
        );
        assert!((a - b).abs() < EPS);
    }

    #[test]
    fn stratified_zero_weight_stratum_may_be_empty() {
        let t = stratified_throughput(
            ThroughputMetric::IpcThroughput,
            &[(1.0, vec![3.0]), (0.0, vec![])],
        );
        assert!((t - 3.0).abs() < EPS);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn stratified_positive_weight_empty_sample_panics() {
        stratified_throughput(ThroughputMetric::IpcThroughput, &[(1.0, vec![])]);
    }

    #[test]
    #[should_panic(expected = "no stratum had positive weight")]
    fn stratified_all_zero_weights_panics() {
        stratified_throughput(ThroughputMetric::IpcThroughput, &[(0.0, vec![])]);
    }

    #[test]
    fn stratified_harmonic_uses_weighted_harmonic_mean() {
        // WH-mean of stratum means {2 (w=.5), 4 (w=.5)} = 1/(0.5/2 + 0.5/4)
        let t = stratified_throughput(
            ThroughputMetric::HarmonicSpeedup,
            &[(0.5, vec![2.0]), (0.5, vec![4.0])],
        );
        assert!((t - 8.0 / 3.0).abs() < EPS);
    }

    #[test]
    fn display_names() {
        assert_eq!(ThroughputMetric::IpcThroughput.to_string(), "IPCT");
        assert_eq!(ThroughputMetric::WeightedSpeedup.to_string(), "WSU");
        assert_eq!(ThroughputMetric::HarmonicSpeedup.to_string(), "HSU");
        assert_eq!(ThroughputMetric::GeomeanSpeedup.to_string(), "GSU");
    }
}

//! Per-workload differences `d(w)` and pair comparisons (paper Section III).
//!
//! Comparing microarchitectures X and Y reduces to the statistics of the
//! random variable `d(w)`:
//!
//! * arithmetic-mean metrics (IPCT, WSU): `d(w) = t_Y(w) − t_X(w)`
//!   (equation (4)),
//! * harmonic-mean metrics (HSU): the CLT applies to the reciprocal, so
//!   `d(w) = 1/t_X(w) − 1/t_Y(w)` (equation (7)),
//! * geometric-mean metrics: the CLT applies to the logarithm, so
//!   `d(w) = ln t_Y(w) − ln t_X(w)` (footnote 3).
//!
//! All orientations make `d(w) > 0` mean "Y wins on workload w", so a
//! positive mean of `d(w)` — equivalently a positive `1/cv` — always reads
//! "Y outperforms X".

use crate::metric::ThroughputMetric;
use mps_stats::Moments;

/// Per-workload difference `d(w)` for one workload, given the per-workload
/// throughputs of the two machines.
///
/// Oriented so that `d > 0` ⇔ Y beats X (assuming positive throughputs).
///
/// # Example
///
/// ```
/// use mps_metrics::{workload_difference, ThroughputMetric};
///
/// let d = workload_difference(ThroughputMetric::WeightedSpeedup, 1.0, 1.2);
/// assert!((d - 0.2).abs() < 1e-12);
/// let d = workload_difference(ThroughputMetric::HarmonicSpeedup, 1.0, 1.25);
/// assert!((d - 0.2).abs() < 1e-12); // 1/1.0 − 1/1.25
/// ```
pub fn workload_difference(metric: ThroughputMetric, t_x: f64, t_y: f64) -> f64 {
    match metric {
        ThroughputMetric::IpcThroughput | ThroughputMetric::WeightedSpeedup => t_y - t_x,
        ThroughputMetric::HarmonicSpeedup => 1.0 / t_x - 1.0 / t_y,
        ThroughputMetric::GeomeanSpeedup => t_y.ln() - t_x.ln(),
    }
}

/// Summary of the comparison of two microarchitectures on a set of
/// workloads: the statistics of `d(w)` that drive the whole sampling
/// methodology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairComparison {
    /// The metric the comparison was made under.
    pub metric: ThroughputMetric,
    /// Number of workloads compared.
    pub workloads: usize,
    /// Mean of `d(w)` (µ). Positive ⇒ Y wins on average.
    pub mean_difference: f64,
    /// Population standard deviation of `d(w)` (σ).
    pub std_difference: f64,
    /// Coefficient of variation `cv = σ/µ`.
    pub cv: f64,
    /// `1/cv = µ/σ` — the quantity plotted in the paper's Figures 4 and 5.
    pub inv_cv: f64,
    /// Fraction of workloads where Y strictly beats X.
    pub win_fraction: f64,
}

impl PairComparison {
    /// `true` when the mean difference favours Y.
    pub fn y_wins_on_average(&self) -> bool {
        self.mean_difference > 0.0
    }

    /// Required random-sample size `8·cv²` for this pair (equation (8)).
    pub fn required_sample_size(&self) -> usize {
        mps_stats::required_sample_size(self.cv)
    }
}

/// Compares machines X and Y from their per-workload throughput vectors
/// (parallel arrays over the same workload set).
///
/// # Panics
///
/// Panics if the vectors are empty or have different lengths.
///
/// # Example
///
/// ```
/// use mps_metrics::{pair_comparison, ThroughputMetric};
///
/// let t_x = [1.0, 1.0, 1.0, 1.0];
/// let t_y = [1.1, 1.2, 0.9, 1.2];
/// let cmp = pair_comparison(ThroughputMetric::WeightedSpeedup, &t_x, &t_y);
/// assert!(cmp.y_wins_on_average());
/// assert_eq!(cmp.workloads, 4);
/// assert!((cmp.win_fraction - 0.75).abs() < 1e-12);
/// ```
pub fn pair_comparison(metric: ThroughputMetric, t_x: &[f64], t_y: &[f64]) -> PairComparison {
    assert!(!t_x.is_empty(), "need at least one workload");
    assert_eq!(
        t_x.len(),
        t_y.len(),
        "t_x and t_y must cover the same workloads"
    );
    let mut m = Moments::new();
    let mut wins = 0usize;
    for (&x, &y) in t_x.iter().zip(t_y) {
        m.push(workload_difference(metric, x, y));
        if y > x {
            wins += 1;
        }
    }
    PairComparison {
        metric,
        workloads: t_x.len(),
        mean_difference: m.mean(),
        std_difference: m.population_std(),
        cv: m.cv(),
        inv_cv: m.inv_cv(),
        win_fraction: wins as f64 / t_x.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn difference_signs_are_consistent_across_metrics() {
        // When Y's throughput exceeds X's, every metric's d is positive.
        for m in [
            ThroughputMetric::IpcThroughput,
            ThroughputMetric::WeightedSpeedup,
            ThroughputMetric::HarmonicSpeedup,
            ThroughputMetric::GeomeanSpeedup,
        ] {
            assert!(workload_difference(m, 1.0, 1.5) > 0.0, "{m}");
            assert!(workload_difference(m, 1.5, 1.0) < 0.0, "{m}");
            assert_eq!(workload_difference(m, 1.3, 1.3), 0.0, "{m}");
        }
    }

    #[test]
    fn hsu_difference_is_reciprocal() {
        let d = workload_difference(ThroughputMetric::HarmonicSpeedup, 2.0, 4.0);
        assert!((d - 0.25).abs() < 1e-12);
    }

    #[test]
    fn geo_difference_is_log_ratio() {
        let d = workload_difference(ThroughputMetric::GeomeanSpeedup, 1.0, std::f64::consts::E);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn comparison_of_identical_machines() {
        let t = [1.0, 2.0, 3.0];
        let cmp = pair_comparison(ThroughputMetric::IpcThroughput, &t, &t);
        assert_eq!(cmp.mean_difference, 0.0);
        assert_eq!(cmp.win_fraction, 0.0);
        assert!(!cmp.y_wins_on_average());
        // µ = 0, σ = 0: cv is NaN — "equivalent machines" regime.
        assert!(cmp.cv.is_nan());
    }

    #[test]
    fn comparison_with_constant_gap_has_zero_cv() {
        let t_x = [1.0, 2.0, 3.0];
        let t_y = [1.5, 2.5, 3.5];
        let cmp = pair_comparison(ThroughputMetric::WeightedSpeedup, &t_x, &t_y);
        assert!((cmp.mean_difference - 0.5).abs() < 1e-12);
        assert_eq!(cmp.std_difference, 0.0);
        assert_eq!(cmp.cv, 0.0);
        assert!(cmp.inv_cv.is_infinite() && cmp.inv_cv > 0.0);
        assert_eq!(cmp.required_sample_size(), 1);
        assert_eq!(cmp.win_fraction, 1.0);
    }

    #[test]
    fn required_sample_size_grows_with_noise() {
        // Small mean gap + large variance ⇒ many workloads needed.
        let t_x = [1.0, 1.0, 1.0, 1.0];
        let t_y = [1.5, 0.6, 1.4, 0.7]; // mean +0.05, σ ≈ 0.4
        let cmp = pair_comparison(ThroughputMetric::IpcThroughput, &t_x, &t_y);
        assert!(
            cmp.required_sample_size() > 100,
            "{}",
            cmp.required_sample_size()
        );
    }

    #[test]
    #[should_panic(expected = "same workloads")]
    fn mismatched_vectors_panic() {
        pair_comparison(ThroughputMetric::IpcThroughput, &[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least one workload")]
    fn empty_vectors_panic() {
        pair_comparison(ThroughputMetric::IpcThroughput, &[], &[]);
    }

    #[test]
    fn swapping_machines_negates_inv_cv() {
        let t_x = [1.0, 1.1, 0.9, 1.3];
        let t_y = [1.2, 1.0, 1.1, 1.4];
        for m in [
            ThroughputMetric::IpcThroughput,
            ThroughputMetric::HarmonicSpeedup,
            ThroughputMetric::GeomeanSpeedup,
        ] {
            let fwd = pair_comparison(m, &t_x, &t_y);
            let rev = pair_comparison(m, &t_y, &t_x);
            assert!((fwd.inv_cv + rev.inv_cv).abs() < 1e-12, "{m}");
        }
    }
}

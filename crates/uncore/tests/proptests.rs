//! Property-based tests for the cache and uncore invariants.

use mps_stats::rng::Rng;
use mps_uncore::{AccessType, Cache, PolicyKind, Uncore, UncoreConfig};
use proptest::prelude::*;

fn any_policy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Lru),
        Just(PolicyKind::Random),
        Just(PolicyKind::Fifo),
        Just(PolicyKind::Bip),
        Just(PolicyKind::Dip),
        Just(PolicyKind::Srrip),
        Just(PolicyKind::Brrip),
        Just(PolicyKind::Drrip),
        Just(PolicyKind::Nru),
        Just(PolicyKind::TreePlru),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cache_invariants_hold_for_any_policy_and_stream(
        policy in any_policy(),
        lines in prop::collection::vec(0u64..512, 1..400),
        sets_log in 2u32..6,
        ways in 1usize..8,
    ) {
        let sets = 1usize << sets_log;
        let mut c = Cache::new(sets, ways, policy);
        for (i, &line) in lines.iter().enumerate() {
            let kind = if i % 5 == 0 { AccessType::Write } else { AccessType::Read };
            c.access(line, kind);
            // Occupancy never exceeds capacity.
            prop_assert!(c.occupancy() <= sets * ways);
            // A just-accessed line is always resident.
            prop_assert!(c.probe(line));
        }
        let s = c.stats();
        prop_assert_eq!(s.demand_accesses, lines.len() as u64);
        prop_assert!(s.demand_misses <= s.demand_accesses);
        // At most one distinct line per access can have been installed.
        prop_assert!(c.occupancy() as u64 <= s.demand_misses);
    }

    #[test]
    fn hits_only_happen_for_previously_seen_lines(
        policy in any_policy(),
        lines in prop::collection::vec(0u64..64, 1..200),
    ) {
        let mut c = Cache::new(8, 2, policy);
        let mut seen = std::collections::BTreeSet::new();
        for &line in &lines {
            let outcome = c.access(line, AccessType::Read);
            if outcome.is_hit() {
                prop_assert!(seen.contains(&line), "hit on never-seen line {line}");
            }
            seen.insert(line);
        }
    }

    #[test]
    fn uncore_completions_are_causal_and_deterministic(
        policy in any_policy(),
        seed in any::<u64>(),
        n in 10usize..150,
    ) {
        let run = || {
            let mut u = Uncore::new(UncoreConfig::tiny_for_tests(policy), 2);
            let mut rng = Rng::new(seed);
            let mut now = 0u64;
            let mut completions = Vec::new();
            for _ in 0..n {
                let core = rng.index(2);
                let addr = rng.below(1 << 20);
                let done = u.access(core, addr, rng.chance(0.2), now);
                // Completion strictly after issue.
                assert!(done > now, "done {done} <= now {now}");
                completions.push(done);
                now += rng.below(20);
            }
            completions
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn uncore_hits_are_never_slower_than_misses_for_same_line(
        seed in any::<u64>(),
    ) {
        let mut u = Uncore::new(UncoreConfig::tiny_for_tests(PolicyKind::Lru), 1);
        let mut rng = Rng::new(seed);
        let addr = rng.below(1 << 16);
        let miss_done = u.access(0, addr, false, 0);
        let miss_latency = miss_done;
        let hit_start = miss_done + 10;
        let hit_done = u.access(0, addr, false, hit_start);
        prop_assert!(hit_done - hit_start <= miss_latency);
    }
}

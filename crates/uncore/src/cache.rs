//! Functional set-associative cache with pluggable replacement.
//!
//! The cache operates on *line numbers* (`addr >> log2(line_bytes)` is the
//! caller's job where byte addresses are involved; the composite
//! [`crate::Uncore`] and the L1s in `mps-sim-cpu` do this). It is
//! write-back / write-allocate and reports victim writebacks so the caller
//! can account for their bandwidth.

use crate::replacement::{PolicyKind, ReplacementPolicy};

/// Who caused an access, for statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessType {
    /// A demand load or instruction fetch.
    Read,
    /// A demand store (or dirty writeback from an inner level).
    Write,
    /// A prefetch fill request.
    Prefetch,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been installed. If the victim way held a
    /// dirty line, its line number is reported for writeback.
    Miss {
        /// Dirty victim line that must be written back, if any.
        writeback: Option<u64>,
    },
}

impl AccessOutcome {
    /// `true` for [`AccessOutcome::Hit`].
    pub fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

/// Hit/miss statistics, split demand vs prefetch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand (read + write) accesses.
    pub demand_accesses: u64,
    /// Demand misses.
    pub demand_misses: u64,
    /// Prefetch accesses.
    pub prefetch_accesses: u64,
    /// Prefetch misses (lines actually brought in by the prefetcher).
    pub prefetch_misses: u64,
    /// Dirty lines written back.
    pub writebacks: u64,
    /// Valid lines displaced by the replacement policy (clean or dirty) —
    /// the policy-event count; cold fills into invalid ways are excluded.
    pub evictions: u64,
}

impl CacheStats {
    /// Demand hit count.
    pub fn demand_hits(&self) -> u64 {
        self.demand_accesses - self.demand_misses
    }

    /// Demand miss ratio in [0, 1]; NaN when no accesses.
    pub fn miss_ratio(&self) -> f64 {
        self.demand_misses as f64 / self.demand_accesses as f64
    }
}

/// A set-associative, write-back, write-allocate cache.
///
/// # Example
///
/// ```
/// use mps_uncore::{Cache, PolicyKind, AccessType};
///
/// let mut c = Cache::new(64, 4, PolicyKind::Lru);
/// assert!(!c.access(42, AccessType::Read).is_hit()); // cold miss
/// assert!(c.access(42, AccessType::Read).is_hit());  // now resident
/// assert_eq!(c.stats().demand_misses, 1);
/// ```
#[derive(Debug)]
pub struct Cache {
    sets: usize,
    ways: usize,
    /// `line & set_mask` indexes the set when the set count is a power of
    /// two (the common case — every Table II geometry); `usize::MAX`
    /// otherwise, falling back to the modulo in [`Cache::set_of`].
    set_mask: u64,
    /// `tags[set * ways + way]`: line number currently cached.
    tags: Vec<u64>,
    /// Packed per-line metadata: [`META_VALID`] | [`META_DIRTY`]. One byte
    /// per line keeps a whole 16-way set's state in two cache words.
    meta: Vec<u8>,
    policy: Box<dyn ReplacementPolicy>,
    stats: CacheStats,
}

/// `meta` bit: the way holds a valid line.
const META_VALID: u8 = 1 << 0;
/// `meta` bit: the line is dirty (needs writeback on eviction).
const META_DIRTY: u8 = 1 << 1;

impl Cache {
    /// Creates a cache of `sets × ways` lines with the given policy.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize, policy: PolicyKind) -> Self {
        assert!(sets > 0 && ways > 0, "cache must have sets and ways");
        let set_mask = if sets.is_power_of_two() {
            sets as u64 - 1
        } else {
            u64::MAX
        };
        Cache {
            sets,
            ways,
            set_mask,
            tags: vec![0; sets * ways],
            meta: vec![0; sets * ways],
            policy: policy.build(sets, ways),
            stats: CacheStats::default(),
        }
    }

    /// Convenience constructor from a size in bytes.
    ///
    /// # Panics
    ///
    /// Panics unless `size_bytes` is an exact multiple of
    /// `ways * line_bytes` yielding a power-of-two set count.
    pub fn with_size(size_bytes: u64, ways: usize, line_bytes: u64, policy: PolicyKind) -> Self {
        let sets = size_bytes / (ways as u64 * line_bytes);
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "size {size_bytes} with {ways} ways and {line_bytes}-byte lines \
             gives a non-power-of-two set count {sets}"
        );
        Cache::new(sets as usize, ways, policy)
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        if self.set_mask != u64::MAX {
            (line & self.set_mask) as usize
        } else {
            (line % self.sets as u64) as usize
        }
    }

    /// Checks presence without disturbing replacement state or stats.
    pub fn probe(&self, line: u64) -> bool {
        let base = self.set_of(line) * self.ways;
        let tags = &self.tags[base..base + self.ways];
        let meta = &self.meta[base..base + self.ways];
        tags.iter()
            .zip(meta)
            .any(|(&t, &m)| m & META_VALID != 0 && t == line)
    }

    /// Accesses `line`, installing it on a miss (write-allocate).
    pub fn access(&mut self, line: u64, kind: AccessType) -> AccessOutcome {
        let set = self.set_of(line);
        let base = set * self.ways;
        match kind {
            AccessType::Prefetch => self.stats.prefetch_accesses += 1,
            _ => self.stats.demand_accesses += 1,
        }
        // Lookup over the packed set slices. The invalid-way scan for the
        // miss path rides along so the hot loop touches each way once.
        let tags = &self.tags[base..base + self.ways];
        let meta = &self.meta[base..base + self.ways];
        let mut invalid_way = usize::MAX;
        for (w, (&t, &m)) in tags.iter().zip(meta).enumerate() {
            if m & META_VALID == 0 {
                if invalid_way == usize::MAX {
                    invalid_way = w;
                }
            } else if t == line {
                self.policy.on_hit(set, w);
                if kind == AccessType::Write {
                    self.meta[base + w] |= META_DIRTY;
                }
                return AccessOutcome::Hit;
            }
        }
        // Miss: fill the first invalid way, else ask the policy for a victim.
        match kind {
            AccessType::Prefetch => self.stats.prefetch_misses += 1,
            _ => self.stats.demand_misses += 1,
        }
        let (way, writeback) = if invalid_way != usize::MAX {
            (invalid_way, None)
        } else {
            let w = self.policy.victim(set);
            assert!(w < self.ways, "policy returned way {w} of {}", self.ways);
            self.stats.evictions += 1;
            let wb = if self.meta[base + w] & META_DIRTY != 0 {
                self.stats.writebacks += 1;
                Some(self.tags[base + w])
            } else {
                None
            };
            (w, wb)
        };
        self.tags[base + way] = line;
        self.meta[base + way] = if kind == AccessType::Write {
            META_VALID | META_DIRTY
        } else {
            META_VALID
        };
        self.policy.on_fill(set, way);
        AccessOutcome::Miss { writeback }
    }

    /// Number of valid lines currently resident (for tests/invariants).
    pub fn occupancy(&self) -> usize {
        self.meta.iter().filter(|&&m| m & META_VALID != 0).count()
    }

    /// The replacement policy's display name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(16, 2, PolicyKind::Lru);
        assert!(!c.access(100, AccessType::Read).is_hit());
        assert!(c.access(100, AccessType::Read).is_hit());
        assert_eq!(c.stats().demand_accesses, 2);
        assert_eq!(c.stats().demand_misses, 1);
        assert_eq!(c.stats().demand_hits(), 1);
    }

    #[test]
    fn lines_map_to_distinct_sets() {
        let mut c = Cache::new(16, 1, PolicyKind::Lru);
        // 16 consecutive lines fill all 16 sets without conflict.
        for line in 0..16 {
            c.access(line, AccessType::Read);
        }
        for line in 0..16 {
            assert!(c.probe(line), "line {line}");
        }
        assert_eq!(c.occupancy(), 16);
    }

    #[test]
    fn conflict_eviction_under_lru() {
        let mut c = Cache::new(4, 2, PolicyKind::Lru);
        // Lines 0, 4, 8 all map to set 0; associativity 2.
        c.access(0, AccessType::Read);
        c.access(4, AccessType::Read);
        c.access(8, AccessType::Read); // evicts line 0
        assert!(!c.probe(0));
        assert!(c.probe(4));
        assert!(c.probe(8));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = Cache::new(1, 1, PolicyKind::Lru);
        c.access(7, AccessType::Write);
        match c.access(13, AccessType::Read) {
            AccessOutcome::Miss { writeback } => assert_eq!(writeback, Some(7)),
            AccessOutcome::Hit => panic!("expected miss"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = Cache::new(1, 1, PolicyKind::Lru);
        c.access(7, AccessType::Read);
        match c.access(13, AccessType::Read) {
            AccessOutcome::Miss { writeback } => assert_eq!(writeback, None),
            AccessOutcome::Hit => panic!("expected miss"),
        }
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = Cache::new(1, 1, PolicyKind::Lru);
        c.access(7, AccessType::Read); // clean fill
        c.access(7, AccessType::Write); // hit, marks dirty
        match c.access(13, AccessType::Read) {
            AccessOutcome::Miss { writeback } => assert_eq!(writeback, Some(7)),
            AccessOutcome::Hit => panic!("expected miss"),
        }
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut c = Cache::new(8, 4, PolicyKind::Random);
        for line in 0..10_000u64 {
            c.access(line.wrapping_mul(2654435761) % 512, AccessType::Read);
            assert!(c.occupancy() <= 32);
        }
        assert_eq!(c.occupancy(), 32); // warm by now
    }

    #[test]
    fn prefetch_stats_are_separate() {
        let mut c = Cache::new(16, 2, PolicyKind::Lru);
        c.access(1, AccessType::Prefetch);
        c.access(1, AccessType::Read);
        assert_eq!(c.stats().prefetch_accesses, 1);
        assert_eq!(c.stats().prefetch_misses, 1);
        assert_eq!(c.stats().demand_accesses, 1);
        assert_eq!(c.stats().demand_misses, 0, "prefetch hid the demand miss");
    }

    #[test]
    fn probe_does_not_perturb() {
        let mut c = Cache::new(4, 2, PolicyKind::Lru);
        c.access(0, AccessType::Read);
        c.access(4, AccessType::Read);
        // Probing line 0 must NOT refresh its recency.
        assert!(c.probe(0));
        c.access(8, AccessType::Read); // LRU victim should still be line 0
        assert!(!c.probe(0));
        assert!(c.probe(4));
    }

    #[test]
    fn with_size_computes_geometry() {
        // 2 MB, 16 ways, 64-byte lines → 2048 sets (the paper's 4-core LLC).
        let c = Cache::with_size(2 << 20, 16, 64, PolicyKind::Drrip);
        assert_eq!(c.sets(), 2048);
        assert_eq!(c.ways(), 16);
    }

    #[test]
    #[should_panic(expected = "non-power-of-two")]
    fn with_size_rejects_odd_geometry() {
        Cache::with_size(3 << 20, 16, 64, PolicyKind::Lru);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = Cache::new(4, 1, PolicyKind::Lru);
        c.access(3, AccessType::Read);
        c.reset_stats();
        assert_eq!(c.stats().demand_accesses, 0);
        assert!(c.probe(3));
    }

    #[test]
    fn miss_ratio_computation() {
        let mut c = Cache::new(4, 1, PolicyKind::Lru);
        c.access(0, AccessType::Read);
        c.access(0, AccessType::Read);
        c.access(0, AccessType::Read);
        c.access(0, AccessType::Read);
        assert!((c.stats().miss_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn all_paper_policies_work_through_cache() {
        for kind in PolicyKind::PAPER_POLICIES {
            let mut c = Cache::new(32, 4, kind);
            // 100 distinct lines fit in the 128-line cache: after the cold
            // misses every policy should mostly hit.
            for i in 0..5000u64 {
                c.access(i % 100, AccessType::Read);
            }
            let s = c.stats();
            assert_eq!(s.demand_accesses, 5000, "{kind}");
            assert!(s.demand_misses >= 100, "{kind}: at least cold misses");
            assert!(s.demand_misses < 2500, "{kind}: mostly hits expected");
        }
    }
}

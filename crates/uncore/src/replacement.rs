//! Cache replacement policies (the paper's five, plus their components).
//!
//! * **LRU** — classic least-recently-used recency stack.
//! * **RANDOM** — uniform random victim (deterministic PRNG).
//! * **FIFO** — round-robin victim per set, independent of hits.
//! * **DIP** [Qureshi et al., ISCA'07] — set dueling between LRU insertion
//!   and **BIP** (bimodal insertion: insert at LRU position except every
//!   1/32nd fill), with a saturating PSEL counter choosing the follower
//!   sets' policy.
//! * **DRRIP** [Jaleel et al., ISCA'10] — set dueling between **SRRIP**
//!   (static re-reference interval prediction, 2-bit RRPV) and **BRRIP**
//!   (bimodal RRIP).
//!
//! A policy object owns all per-set replacement state for one cache. The
//! cache calls [`ReplacementPolicy::on_hit`] on hits,
//! [`ReplacementPolicy::victim`] when it must evict from a full set, and
//! [`ReplacementPolicy::on_fill`] when a new line lands in a way.

use mps_stats::rng::Rng;

/// Replacement policy interface, owning all per-set state of one cache.
///
/// Way indices passed in are guaranteed `< ways`; sets `< sets` (the values
/// given to the builder).
pub trait ReplacementPolicy: std::fmt::Debug + Send {
    /// A line in `(set, way)` was re-referenced.
    fn on_hit(&mut self, set: usize, way: usize);

    /// A new line was just installed in `(set, way)`.
    fn on_fill(&mut self, set: usize, way: usize);

    /// Chooses the way to evict from a full `set`.
    fn victim(&mut self, set: usize) -> usize;

    /// Policy display name.
    fn name(&self) -> &'static str;
}

/// The policy menu. `PAPER_POLICIES` lists the five the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Least recently used.
    Lru,
    /// Uniform random victim.
    Random,
    /// Round-robin (insertion-order) victim.
    Fifo,
    /// Bimodal insertion policy (a DIP component; usable standalone).
    Bip,
    /// Dynamic insertion policy: LRU vs BIP set dueling.
    Dip,
    /// Static RRIP.
    Srrip,
    /// Bimodal RRIP (a DRRIP component; usable standalone).
    Brrip,
    /// Dynamic RRIP: SRRIP vs BRRIP set dueling.
    Drrip,
    /// Not-recently-used: one reference bit per line (an LRU
    /// approximation common in TLBs and low-cost caches).
    Nru,
    /// Tree pseudo-LRU (the classic hardware LRU approximation).
    TreePlru,
}

impl PolicyKind {
    /// The five policies evaluated in the paper, in paper order.
    pub const PAPER_POLICIES: [PolicyKind; 5] = [
        PolicyKind::Lru,
        PolicyKind::Random,
        PolicyKind::Fifo,
        PolicyKind::Dip,
        PolicyKind::Drrip,
    ];

    /// Instantiates the policy for a cache of `sets × ways`.
    pub fn build(self, sets: usize, ways: usize) -> Box<dyn ReplacementPolicy> {
        assert!(sets > 0 && ways > 0, "cache must have sets and ways");
        match self {
            PolicyKind::Lru => Box::new(LruPolicy::new(sets, ways, InsertionMode::Mru)),
            PolicyKind::Random => Box::new(RandomPolicy::new(ways)),
            PolicyKind::Fifo => Box::new(FifoPolicy::new(sets, ways)),
            PolicyKind::Bip => Box::new(LruPolicy::new(sets, ways, InsertionMode::Bimodal)),
            PolicyKind::Dip => Box::new(DipPolicy::new(sets, ways)),
            PolicyKind::Srrip => Box::new(RripPolicy::new(sets, ways, RripMode::Static)),
            PolicyKind::Brrip => Box::new(RripPolicy::new(sets, ways, RripMode::Bimodal)),
            PolicyKind::Drrip => Box::new(DrripPolicy::new(sets, ways)),
            PolicyKind::Nru => Box::new(NruPolicy::new(sets, ways)),
            PolicyKind::TreePlru => Box::new(TreePlruPolicy::new(sets, ways)),
        }
    }

    /// Display name as used in the paper ("LRU", "RND", "FIFO", ...).
    pub fn short_name(self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Random => "RND",
            PolicyKind::Fifo => "FIFO",
            PolicyKind::Bip => "BIP",
            PolicyKind::Dip => "DIP",
            PolicyKind::Srrip => "SRRIP",
            PolicyKind::Brrip => "BRRIP",
            PolicyKind::Drrip => "DRRIP",
            PolicyKind::Nru => "NRU",
            PolicyKind::TreePlru => "PLRU",
        }
    }
}

impl core::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Bimodal-insertion throttle: 1 MRU (or near-RRPV) insertion per ε = 1/32
/// fills, as in the DIP and RRIP papers.
const BIMODAL_EPSILON: u32 = 32;

/// How LRU-stack-based policies insert new lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InsertionMode {
    /// Always insert at MRU (classic LRU).
    Mru,
    /// Insert at LRU except every 1/32nd fill at MRU (BIP).
    Bimodal,
}

/// LRU / BIP over a flat per-way *rank* array instead of an explicit
/// recency stack: `ranks[set*ways + way]` is the way's recency rank
/// (0 = MRU, `ways−1` = LRU). The ranks of one set are always a
/// permutation of `0..ways`, so a touch-to-MRU is "increment every rank
/// below the touched one, then zero it" and a touch-to-LRU is the mirror
/// image — the exact same reordering a stack `remove`/`insert` performs,
/// as straight-line byte arithmetic over one contiguous slice.
#[derive(Debug)]
struct LruPolicy {
    ways: usize,
    /// Per-way recency ranks, one contiguous `u8` per line.
    ranks: Vec<u8>,
    mode: InsertionMode,
    bip_counter: u32,
}

impl LruPolicy {
    fn new(sets: usize, ways: usize, mode: InsertionMode) -> Self {
        assert!(ways <= u8::MAX as usize, "ways must fit in u8");
        // Way w starts at rank w: identical to the former stack's initial
        // order `[0, 1, ..., ways-1]` (way 0 = MRU).
        let mut ranks = vec![0u8; sets * ways];
        for (i, r) in ranks.iter_mut().enumerate() {
            *r = (i % ways) as u8;
        }
        LruPolicy {
            ways,
            ranks,
            mode,
            bip_counter: 0,
        }
    }

    fn touch(&mut self, set: usize, way: usize, to_mru: bool) {
        let base = set * self.ways;
        let ranks = &mut self.ranks[base..base + self.ways];
        let old = ranks[way];
        if to_mru {
            for r in ranks.iter_mut() {
                *r += u8::from(*r < old);
            }
            ranks[way] = 0;
        } else {
            for r in ranks.iter_mut() {
                *r -= u8::from(*r > old);
            }
            ranks[way] = (self.ways - 1) as u8;
        }
    }
}

impl ReplacementPolicy for LruPolicy {
    fn on_hit(&mut self, set: usize, way: usize) {
        self.touch(set, way, true);
    }

    fn on_fill(&mut self, set: usize, way: usize) {
        let to_mru = match self.mode {
            InsertionMode::Mru => true,
            InsertionMode::Bimodal => {
                self.bip_counter = (self.bip_counter + 1) % BIMODAL_EPSILON;
                self.bip_counter == 0
            }
        };
        self.touch(set, way, to_mru);
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        let lru = (self.ways - 1) as u8;
        self.ranks[base..base + self.ways]
            .iter()
            .position(|&r| r == lru)
            .expect("ranks form a permutation")
    }

    fn name(&self) -> &'static str {
        match self.mode {
            InsertionMode::Mru => "LRU",
            InsertionMode::Bimodal => "BIP",
        }
    }
}

/// Deterministic pseudo-random victim selection.
#[derive(Debug)]
struct RandomPolicy {
    ways: usize,
    rng: Rng,
}

impl RandomPolicy {
    fn new(ways: usize) -> Self {
        RandomPolicy {
            ways,
            // Fixed seed: replacement must be reproducible run to run.
            rng: Rng::new(0x52_4E_47_5F_53_45_45_44),
        }
    }
}

impl ReplacementPolicy for RandomPolicy {
    fn on_hit(&mut self, _set: usize, _way: usize) {}
    fn on_fill(&mut self, _set: usize, _way: usize) {}
    fn victim(&mut self, _set: usize) -> usize {
        self.rng.index(self.ways)
    }
    fn name(&self) -> &'static str {
        "RND"
    }
}

/// FIFO: evict in insertion order, ignoring hits.
#[derive(Debug)]
struct FifoPolicy {
    ways: usize,
    next: Vec<u8>,
}

impl FifoPolicy {
    fn new(sets: usize, ways: usize) -> Self {
        assert!(ways <= u8::MAX as usize);
        FifoPolicy {
            ways,
            next: vec![0; sets],
        }
    }
}

impl ReplacementPolicy for FifoPolicy {
    fn on_hit(&mut self, _set: usize, _way: usize) {}

    fn on_fill(&mut self, _set: usize, _way: usize) {}

    fn victim(&mut self, set: usize) -> usize {
        let way = self.next[set] as usize;
        self.next[set] = ((way + 1) % self.ways) as u8;
        way
    }

    fn name(&self) -> &'static str {
        "FIFO"
    }
}

/// 10-bit saturating policy-selection counter used by DIP and DRRIP.
#[derive(Debug, Clone, Copy)]
struct Psel {
    value: i32,
    max: i32,
}

impl Psel {
    fn new() -> Self {
        Psel { value: 0, max: 511 }
    }
    fn up(&mut self) {
        self.value = (self.value + 1).min(self.max);
    }
    fn down(&mut self) {
        self.value = (self.value - 1).max(-self.max - 1);
    }
    /// `true` selects the first (primary) policy.
    fn primary_wins(&self) -> bool {
        self.value < 0
    }
}

/// Which role a set plays in a set-dueling scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SetRole {
    DedicatedPrimary,
    DedicatedSecondary,
    Follower,
}

/// Standard constituency-based dedicated-set assignment: within every
/// aligned group of 32 sets, set 0 duels for the primary policy and set 16
/// for the secondary. Caches smaller than 32 sets alternate instead.
fn set_role(set: usize, sets: usize) -> SetRole {
    if sets >= 32 {
        match set % 32 {
            0 => SetRole::DedicatedPrimary,
            16 => SetRole::DedicatedSecondary,
            _ => SetRole::Follower,
        }
    } else {
        match set % 4 {
            0 => SetRole::DedicatedPrimary,
            2 => SetRole::DedicatedSecondary,
            _ => SetRole::Follower,
        }
    }
}

/// DIP: LRU (primary) vs BIP (secondary) set dueling.
///
/// Misses in dedicated-LRU sets bump PSEL toward BIP and vice versa; the
/// cache reports misses to the policy through `on_fill` (a fill implies the
/// preceding lookup missed).
#[derive(Debug)]
struct DipPolicy {
    sets: usize,
    ranks: LruPolicy,
    psel: Psel,
    bip_counter: u32,
}

impl DipPolicy {
    fn new(sets: usize, ways: usize) -> Self {
        DipPolicy {
            sets,
            ranks: LruPolicy::new(sets, ways, InsertionMode::Mru),
            psel: Psel::new(),
            bip_counter: 0,
        }
    }

    fn insertion_is_mru(&mut self, set: usize) -> bool {
        let use_lru = match set_role(set, self.sets) {
            SetRole::DedicatedPrimary => true,
            SetRole::DedicatedSecondary => false,
            SetRole::Follower => self.psel.primary_wins(),
        };
        if use_lru {
            true
        } else {
            self.bip_counter = (self.bip_counter + 1) % BIMODAL_EPSILON;
            self.bip_counter == 0
        }
    }
}

impl ReplacementPolicy for DipPolicy {
    fn on_hit(&mut self, set: usize, way: usize) {
        self.ranks.touch(set, way, true);
    }

    fn on_fill(&mut self, set: usize, way: usize) {
        // A fill means the access missed: update the duel.
        match set_role(set, self.sets) {
            SetRole::DedicatedPrimary => self.psel.up(), // LRU missed
            SetRole::DedicatedSecondary => self.psel.down(), // BIP missed
            SetRole::Follower => {}
        }
        let mru = self.insertion_is_mru(set);
        self.ranks.touch(set, way, mru);
    }

    fn victim(&mut self, set: usize) -> usize {
        self.ranks.victim(set)
    }

    fn name(&self) -> &'static str {
        "DIP"
    }
}

/// RRPV width: 2 bits as in the paper's DRRIP configuration.
const RRPV_MAX: u8 = 3;
/// Long re-reference interval used on SRRIP insertion.
const RRPV_LONG: u8 = RRPV_MAX - 1;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RripMode {
    Static,
    Bimodal,
}

/// SRRIP / BRRIP with 2-bit re-reference prediction values.
#[derive(Debug)]
struct RripPolicy {
    ways: usize,
    rrpv: Vec<u8>,
    mode: RripMode,
    brip_counter: u32,
}

impl RripPolicy {
    fn new(sets: usize, ways: usize, mode: RripMode) -> Self {
        RripPolicy {
            ways,
            rrpv: vec![RRPV_MAX; sets * ways],
            mode,
            brip_counter: 0,
        }
    }

    fn fill_rrpv(&mut self, static_mode: bool) -> u8 {
        if static_mode {
            RRPV_LONG
        } else {
            // BRRIP: distant (MAX) except every 1/32nd fill gets LONG.
            self.brip_counter = (self.brip_counter + 1) % BIMODAL_EPSILON;
            if self.brip_counter == 0 {
                RRPV_LONG
            } else {
                RRPV_MAX
            }
        }
    }

    fn victim_impl(&mut self, set: usize) -> usize {
        // Find the leftmost way with RRPV == MAX, aging the set as needed.
        // Operating on one borrowed slice keeps the loop free of repeated
        // index arithmetic and bounds checks.
        let base = set * self.ways;
        let rrpv = &mut self.rrpv[base..base + self.ways];
        loop {
            if let Some(w) = rrpv.iter().position(|&v| v == RRPV_MAX) {
                return w;
            }
            for v in rrpv.iter_mut() {
                *v += 1;
            }
        }
    }
}

impl ReplacementPolicy for RripPolicy {
    fn on_hit(&mut self, set: usize, way: usize) {
        // Hit promotion: RRPV := 0 (near-immediate re-reference).
        self.rrpv[set * self.ways + way] = 0;
    }

    fn on_fill(&mut self, set: usize, way: usize) {
        let v = self.fill_rrpv(self.mode == RripMode::Static);
        self.rrpv[set * self.ways + way] = v;
    }

    fn victim(&mut self, set: usize) -> usize {
        self.victim_impl(set)
    }

    fn name(&self) -> &'static str {
        match self.mode {
            RripMode::Static => "SRRIP",
            RripMode::Bimodal => "BRRIP",
        }
    }
}

/// DRRIP: SRRIP (primary) vs BRRIP (secondary) set dueling.
#[derive(Debug)]
struct DrripPolicy {
    sets: usize,
    rrip: RripPolicy,
    psel: Psel,
}

impl DrripPolicy {
    fn new(sets: usize, ways: usize) -> Self {
        DrripPolicy {
            sets,
            rrip: RripPolicy::new(sets, ways, RripMode::Static),
            psel: Psel::new(),
        }
    }
}

impl ReplacementPolicy for DrripPolicy {
    fn on_hit(&mut self, set: usize, way: usize) {
        self.rrip.on_hit(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize) {
        let static_mode = match set_role(set, self.sets) {
            SetRole::DedicatedPrimary => {
                self.psel.up(); // SRRIP missed
                true
            }
            SetRole::DedicatedSecondary => {
                self.psel.down(); // BRRIP missed
                false
            }
            SetRole::Follower => self.psel.primary_wins(),
        };
        let v = self.rrip.fill_rrpv(static_mode);
        self.rrip.rrpv[set * self.rrip.ways + way] = v;
    }

    fn victim(&mut self, set: usize) -> usize {
        self.rrip.victim_impl(set)
    }

    fn name(&self) -> &'static str {
        "DRRIP"
    }
}

/// NRU: a reference bit per line; victims come from lines with a clear
/// bit, and when all bits in a set are set they are cleared (except the
/// line just referenced, conceptually — here: all cleared, matching the
/// common hardware simplification).
#[derive(Debug)]
struct NruPolicy {
    ways: usize,
    referenced: Vec<bool>,
}

impl NruPolicy {
    fn new(sets: usize, ways: usize) -> Self {
        NruPolicy {
            ways,
            referenced: vec![false; sets * ways],
        }
    }

    fn mark(&mut self, set: usize, way: usize) {
        let base = set * self.ways;
        self.referenced[base + way] = true;
        if self.referenced[base..base + self.ways].iter().all(|&r| r) {
            for r in &mut self.referenced[base..base + self.ways] {
                *r = false;
            }
            self.referenced[base + way] = true;
        }
    }
}

impl ReplacementPolicy for NruPolicy {
    fn on_hit(&mut self, set: usize, way: usize) {
        self.mark(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize) {
        self.mark(set, way);
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        self.referenced[base..base + self.ways]
            .iter()
            .position(|&r| !r)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "NRU"
    }
}

/// Tree pseudo-LRU: a binary tree of direction bits per set; touching a
/// way points the path away from it, the victim follows the pointers.
/// Associativity is rounded up to a power of two internally; phantom ways
/// are never reported as victims.
#[derive(Debug)]
struct TreePlruPolicy {
    ways: usize,
    /// Ways rounded up to a power of two (tree leaf count).
    leaves: usize,
    /// Per-set tree bits (leaves − 1 internal nodes), flattened.
    bits: Vec<bool>,
}

impl TreePlruPolicy {
    fn new(sets: usize, ways: usize) -> Self {
        let leaves = ways.next_power_of_two();
        TreePlruPolicy {
            ways,
            leaves,
            bits: vec![false; sets * (leaves - 1).max(1)],
        }
    }

    fn touch(&mut self, set: usize, way: usize) {
        if self.leaves == 1 {
            return;
        }
        let stride = self.leaves - 1;
        let base = set * stride;
        let mut node = 0usize; // root
        let mut lo = 0usize;
        let mut hi = self.leaves;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let go_right = way >= mid;
            // Point the bit AWAY from the touched way.
            self.bits[base + node] = !go_right;
            node = 2 * node + if go_right { 2 } else { 1 };
            if go_right {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }
}

impl ReplacementPolicy for TreePlruPolicy {
    fn on_hit(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }

    fn victim(&mut self, set: usize) -> usize {
        if self.leaves == 1 {
            return 0;
        }
        let stride = self.leaves - 1;
        let base = set * stride;
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.leaves;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let go_right = self.bits[base + node];
            node = 2 * node + if go_right { 2 } else { 1 };
            if go_right {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        // Phantom leaves (beyond the real associativity) fold back in.
        lo.min(self.ways - 1)
    }

    fn name(&self) -> &'static str {
        "PLRU"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut p = PolicyKind::Lru.build(1, 4);
        // Fill ways 0..4 in order: stack (MRU..LRU) = 3,2,1,0.
        for w in 0..4 {
            p.on_fill(0, w);
        }
        assert_eq!(p.victim(0), 0);
        p.on_hit(0, 0); // 0 becomes MRU; LRU is now 1.
        assert_eq!(p.victim(0), 1);
        p.on_hit(0, 1);
        p.on_hit(0, 2);
        assert_eq!(p.victim(0), 3);
    }

    #[test]
    fn lru_stack_property() {
        // Accessing the same way repeatedly never changes the victim choice
        // among the others (stack property).
        let mut p = PolicyKind::Lru.build(1, 4);
        for w in 0..4 {
            p.on_fill(0, w);
        }
        p.on_hit(0, 2);
        let v1 = p.victim(0);
        p.on_hit(0, 2);
        p.on_hit(0, 2);
        assert_eq!(p.victim(0), v1);
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut p = PolicyKind::Fifo.build(1, 4);
        for w in 0..4 {
            p.on_fill(0, w);
        }
        assert_eq!(p.victim(0), 0);
        // Hits must not save a line under FIFO.
        p.on_hit(0, 1);
        assert_eq!(p.victim(0), 1);
        assert_eq!(p.victim(0), 2);
        assert_eq!(p.victim(0), 3);
        assert_eq!(p.victim(0), 0); // wraps
    }

    #[test]
    fn random_victims_cover_all_ways() {
        let mut p = PolicyKind::Random.build(1, 8);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[p.victim(0)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn random_is_deterministic_across_instances() {
        let mut a = PolicyKind::Random.build(1, 8);
        let mut b = PolicyKind::Random.build(1, 8);
        for _ in 0..50 {
            assert_eq!(a.victim(0), b.victim(0));
        }
    }

    #[test]
    fn bip_inserts_at_lru_mostly() {
        let mut p = PolicyKind::Bip.build(1, 4);
        for w in 0..4 {
            p.on_fill(0, w);
        }
        // After 4 bimodal fills (counter 1..4, none hit the 1/32 slot), all
        // went to LRU position; the last one filled sits at LRU.
        assert_eq!(p.victim(0), 3);
    }

    #[test]
    fn bip_occasionally_inserts_at_mru() {
        let mut p = PolicyKind::Bip.build(1, 2);
        let mut mru_inserts = 0;
        for i in 0..64 {
            p.on_fill(0, i % 2);
            // If the just-filled way is NOT the victim, it was MRU-inserted.
            if p.victim(0) != i % 2 {
                mru_inserts += 1;
            }
        }
        assert_eq!(mru_inserts, 2, "exactly 1 in {BIMODAL_EPSILON} fills");
    }

    #[test]
    fn srrip_hit_promotion_protects_line() {
        let mut p = PolicyKind::Srrip.build(1, 2);
        p.on_fill(0, 0); // RRPV 2
        p.on_fill(0, 1); // RRPV 2
        p.on_hit(0, 0); // RRPV 0
                        // Victim search ages both to (2→3, 0→1): way 1 reaches MAX first.
        assert_eq!(p.victim(0), 1);
    }

    #[test]
    fn srrip_victim_is_leftmost_max() {
        let mut p = PolicyKind::Srrip.build(1, 4);
        for w in 0..4 {
            p.on_fill(0, w);
        }
        // All at RRPV 2: aging brings all to 3; leftmost wins.
        assert_eq!(p.victim(0), 0);
    }

    #[test]
    fn brrip_mostly_inserts_distant() {
        let mut p = PolicyKind::Brrip.build(1, 2);
        p.on_fill(0, 0);
        p.on_fill(0, 1);
        // Both inserted at RRPV MAX (fills 1 and 2 of 32): way 0 evicts first.
        assert_eq!(p.victim(0), 0);
    }

    #[test]
    fn dip_dedicated_sets_follow_their_policy() {
        // In a 64-set DIP cache, set 0 is dedicated-LRU and set 16
        // dedicated-BIP regardless of PSEL.
        let mut p = PolicyKind::Dip.build(64, 4);
        for w in 0..4 {
            p.on_fill(0, w);
        }
        // LRU-dedicated: inserted at MRU each time, victim = way 0.
        assert_eq!(p.victim(0), 0);
        for w in 0..4 {
            p.on_fill(16, w);
        }
        // BIP-dedicated: inserted at LRU, last fill is the victim.
        assert_eq!(p.victim(16), 3);
    }

    #[test]
    fn dip_psel_moves_follower_insertion() {
        let mut p = DipPolicy::new(64, 4);
        // Hammer misses into the dedicated-LRU set: PSEL goes up (BIP wins).
        for _ in 0..600 {
            p.on_fill(0, 0);
        }
        assert!(!p.psel.primary_wins());
        // Now hammer the dedicated-BIP set: PSEL comes back down.
        for _ in 0..1200 {
            p.on_fill(16, 0);
        }
        assert!(p.psel.primary_wins());
    }

    #[test]
    fn drrip_dedicated_sets_assigned() {
        assert_eq!(set_role(0, 64), SetRole::DedicatedPrimary);
        assert_eq!(set_role(16, 64), SetRole::DedicatedSecondary);
        assert_eq!(set_role(5, 64), SetRole::Follower);
        assert_eq!(set_role(32, 64), SetRole::DedicatedPrimary);
        // Small caches alternate every 4 sets.
        assert_eq!(set_role(0, 16), SetRole::DedicatedPrimary);
        assert_eq!(set_role(2, 16), SetRole::DedicatedSecondary);
        assert_eq!(set_role(1, 16), SetRole::Follower);
    }

    #[test]
    fn psel_saturates() {
        let mut p = Psel::new();
        for _ in 0..2000 {
            p.up();
        }
        assert_eq!(p.value, 511);
        for _ in 0..4000 {
            p.down();
        }
        assert_eq!(p.value, -512);
    }

    const ALL_POLICIES: [PolicyKind; 10] = [
        PolicyKind::Lru,
        PolicyKind::Random,
        PolicyKind::Fifo,
        PolicyKind::Bip,
        PolicyKind::Dip,
        PolicyKind::Srrip,
        PolicyKind::Brrip,
        PolicyKind::Drrip,
        PolicyKind::Nru,
        PolicyKind::TreePlru,
    ];

    #[test]
    fn all_policies_build_and_report_names() {
        for kind in ALL_POLICIES {
            let p = kind.build(32, 4);
            assert_eq!(p.name(), kind.short_name());
        }
    }

    #[test]
    fn victims_always_in_range() {
        for kind in ALL_POLICIES {
            let mut p = kind.build(8, 4);
            let mut rng = Rng::new(1);
            for i in 0..2000u64 {
                let set = (i % 8) as usize;
                match rng.index(3) {
                    0 => p.on_hit(set, rng.index(4)),
                    1 => p.on_fill(set, rng.index(4)),
                    _ => {
                        let v = p.victim(set);
                        assert!(v < 4, "{kind}: victim {v} out of range");
                    }
                }
            }
        }
    }

    #[test]
    fn nru_prefers_unreferenced_lines() {
        let mut p = PolicyKind::Nru.build(1, 4);
        p.on_fill(0, 0);
        p.on_fill(0, 1);
        // Ways 2 and 3 never referenced: victim must be way 2 (first clear).
        assert_eq!(p.victim(0), 2);
        p.on_hit(0, 2);
        assert_eq!(p.victim(0), 3);
    }

    #[test]
    fn nru_clears_epoch_when_all_referenced() {
        let mut p = PolicyKind::Nru.build(1, 2);
        p.on_fill(0, 0);
        p.on_fill(0, 1); // all referenced → bits clear, way 1 re-marked
        assert_eq!(p.victim(0), 0);
    }

    #[test]
    fn tree_plru_never_evicts_just_touched_way() {
        let mut p = PolicyKind::TreePlru.build(1, 8);
        for w in 0..8 {
            p.on_fill(0, w);
        }
        for w in 0..8 {
            p.on_hit(0, w);
            assert_ne!(p.victim(0), w, "victim must avoid the MRU way");
        }
    }

    #[test]
    fn tree_plru_approximates_lru_on_cyclic_touches() {
        // Touch 0,1,2,3 in order on a 4-way set: PLRU's victim is way 0
        // (the least recently touched), matching true LRU here.
        let mut p = PolicyKind::TreePlru.build(1, 4);
        for w in 0..4 {
            p.on_fill(0, w);
        }
        assert_eq!(p.victim(0), 0);
    }

    #[test]
    fn tree_plru_handles_non_power_of_two_ways() {
        let mut p = PolicyKind::TreePlru.build(2, 3);
        for set in 0..2 {
            for w in 0..3 {
                p.on_fill(set, w);
            }
            for _ in 0..20 {
                let v = p.victim(set);
                assert!(v < 3, "victim {v} out of range for 3 ways");
                p.on_hit(set, v);
            }
        }
    }

    #[test]
    fn dip_psel_saturates_at_both_rails_without_wrapping() {
        let mut p = DipPolicy::new(64, 4);
        // Hammer the dedicated-LRU leader: PSEL climbs to the +511 rail.
        for _ in 0..5_000 {
            p.on_fill(0, 0);
        }
        assert_eq!(p.psel.value, 511);
        p.on_fill(0, 0);
        assert_eq!(p.psel.value, 511, "top rail must not wrap");
        assert!(!p.psel.primary_wins(), "BIP wins at the top rail");
        // Hammer the dedicated-BIP leader: PSEL falls to the −512 rail.
        for _ in 0..5_000 {
            p.on_fill(16, 0);
        }
        assert_eq!(p.psel.value, -512);
        p.on_fill(16, 0);
        assert_eq!(p.psel.value, -512, "bottom rail must not wrap");
        assert!(p.psel.primary_wins(), "LRU wins at the bottom rail");
    }

    #[test]
    fn drrip_psel_rails_steer_follower_insertion() {
        let mut p = DrripPolicy::new(64, 4);
        // Rail toward BRRIP: dedicated-SRRIP misses push PSEL up.
        for _ in 0..600 {
            p.on_fill(0, 0);
        }
        assert_eq!(p.psel.value, 511);
        // Follower fills now insert BRRIP-style: distant (RRPV MAX) for
        // 31 of every 32 fills.
        let set = 1;
        let mut distant = 0;
        for i in 0..31usize {
            let way = i % 4;
            p.on_fill(set, way);
            if p.rrip.rrpv[set * 4 + way] == RRPV_MAX {
                distant += 1;
            }
        }
        assert!(distant >= 30, "BRRIP followers insert distant: {distant}");
        // Rail toward SRRIP: dedicated-BRRIP misses pull PSEL down.
        for _ in 0..5_000 {
            p.on_fill(16, 0);
        }
        assert_eq!(p.psel.value, -512);
        p.on_fill(set, 0);
        assert_eq!(
            p.rrip.rrpv[set * 4],
            RRPV_LONG,
            "SRRIP followers insert at the long interval"
        );
    }

    #[test]
    fn leader_set_mapping_is_one_pair_per_constituency() {
        // 64 sets = two aligned 32-set constituencies, each with exactly
        // one primary and one secondary leader at fixed offsets.
        for group in 0..2usize {
            let base = group * 32;
            let primaries: Vec<usize> = (base..base + 32)
                .filter(|&s| set_role(s, 64) == SetRole::DedicatedPrimary)
                .collect();
            let secondaries: Vec<usize> = (base..base + 32)
                .filter(|&s| set_role(s, 64) == SetRole::DedicatedSecondary)
                .collect();
            assert_eq!(primaries, vec![base]);
            assert_eq!(secondaries, vec![base + 16]);
        }
        // Caches below 32 sets fall back to a %4 alternation so both
        // leader kinds still exist.
        let roles: Vec<SetRole> = (0..8).map(|s| set_role(s, 8)).collect();
        assert_eq!(
            roles
                .iter()
                .filter(|&&r| r == SetRole::DedicatedPrimary)
                .count(),
            2
        );
        assert_eq!(
            roles
                .iter()
                .filter(|&&r| r == SetRole::DedicatedSecondary)
                .count(),
            2
        );
        assert_eq!(set_role(4, 8), SetRole::DedicatedPrimary);
        assert_eq!(set_role(6, 8), SetRole::DedicatedSecondary);
    }

    #[test]
    fn rrip_victim_ages_a_fully_protected_set() {
        let mut p = RripPolicy::new(1, 4, RripMode::Static);
        for w in 0..4 {
            p.on_fill(0, w);
            p.on_hit(0, w); // promote to RRPV 0
        }
        assert!(p.rrpv.iter().all(|&v| v == 0));
        // Victim search must age the whole set up to MAX, then pick the
        // leftmost way.
        assert_eq!(p.victim(0), 0);
        assert!(
            p.rrpv.iter().all(|&v| v == RRPV_MAX),
            "aging is set-wide: {:?}",
            p.rrpv
        );
    }

    #[test]
    fn associativity_one_caches_work_for_every_policy() {
        use crate::cache::{AccessType, Cache};
        for kind in ALL_POLICIES {
            let mut c = Cache::new(4, 1, kind);
            // Cold miss, then a hit on the resident line.
            assert!(!c.access(0, AccessType::Read).is_hit(), "{kind}: cold");
            assert!(c.access(0, AccessType::Read).is_hit(), "{kind}: resident");
            // A conflicting line (same set) must always displace it.
            assert!(!c.access(4, AccessType::Write).is_hit(), "{kind}: conflict");
            assert!(
                !c.access(0, AccessType::Read).is_hit(),
                "{kind}: direct-mapped thrash"
            );
            assert!(c.access(0, AccessType::Read).is_hit(), "{kind}: refilled");
            assert!(c.stats().evictions >= 2, "{kind}: evictions counted");
        }
    }

    #[test]
    fn paper_policy_list() {
        let names: Vec<_> = PolicyKind::PAPER_POLICIES
            .iter()
            .map(|p| p.short_name())
            .collect();
        assert_eq!(names, ["LRU", "RND", "FIFO", "DIP", "DRRIP"]);
    }
}

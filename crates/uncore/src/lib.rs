//! The shared uncore model (paper Table II).
//!
//! The paper's case study compares five shared last-level-cache (LLC)
//! replacement policies — LRU, RANDOM, FIFO, DIP and DRRIP — on 2-, 4- and
//! 8-core CMPs. Crucially, the detailed simulator (Zesto) and the fast
//! approximate simulator (BADCO) share the *same* uncore model; only the
//! core model is approximated. This crate is that shared uncore:
//!
//! * [`cache`] — a set-associative, write-back cache with pluggable
//!   replacement and per-core statistics,
//! * [`replacement`] — the five paper policies plus their building blocks
//!   (BIP, SRRIP, BRRIP) implemented with set dueling,
//! * [`prefetch`] — next-line, IP-stride and stream prefetchers (Tables I
//!   and II list all three),
//! * [`memory`] — a front-side-bus + DRAM latency/bandwidth model,
//! * [`uncore`] — the composite: LLC + MSHRs + write buffer + per-core
//!   stream prefetchers behind a single-ported, round-robin-arbitrated
//!   interface,
//! * [`config`] — Table II configurations for 2/4/8 cores.
//!
//! # Example
//!
//! ```
//! use mps_uncore::{PolicyKind, Uncore, UncoreConfig};
//!
//! let cfg = UncoreConfig::ispass2013(4, PolicyKind::Lru);
//! let mut uncore = Uncore::new(cfg, 4);
//! // Core 2 loads address 0x1000 at cycle 100: a cold miss goes to DRAM.
//! let done = uncore.access(2, 0x1000, false, 100);
//! assert!(done > 100 + 200); // at least the DRAM latency later
//! // Re-access the same line: now an LLC hit.
//! let done2 = uncore.access(2, 0x1000, false, done);
//! assert_eq!(done2, done + 6);  // 2MB LLC has 6-cycle latency
//! ```

pub mod cache;
pub mod config;
pub mod memory;
pub mod prefetch;
pub mod replacement;
pub mod uncore;

pub use cache::{AccessOutcome, AccessType, Cache, CacheStats};
pub use config::UncoreConfig;
pub use memory::{MemoryConfig, MemoryModel};
pub use prefetch::{IpStridePrefetcher, NextLinePrefetcher, StreamPrefetcher};
pub use replacement::{PolicyKind, ReplacementPolicy};
pub use uncore::{Uncore, UncoreStats};

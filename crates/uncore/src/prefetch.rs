//! Hardware prefetchers (Tables I and II).
//!
//! The paper's core configuration uses a next-line prefetcher on the L1I
//! and IP-based stride + next-line prefetchers on the L1D; the LLC has
//! IP-based stride + stream prefetchers. All three are implemented here and
//! shared by both simulators. Each prefetcher emits at most a couple of
//! candidate lines per access, returned by value in a small fixed array to
//! keep the hot path allocation-free.

/// Next-line prefetcher: on an access to line `L`, suggest `L + 1`.
#[derive(Debug, Clone, Default)]
pub struct NextLinePrefetcher {
    last: Option<u64>,
}

impl NextLinePrefetcher {
    /// Creates a next-line prefetcher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes an access and returns the line to prefetch, if any.
    ///
    /// Repeated accesses to the same line do not re-issue the prefetch.
    pub fn on_access(&mut self, line: u64) -> Option<u64> {
        if self.last == Some(line) {
            return None;
        }
        self.last = Some(line);
        line.checked_add(1)
    }
}

/// One entry of the IP-stride table.
#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    tag: u64,
    last_addr: u64,
    stride: i64,
    confidence: u8,
}

/// IP-based stride prefetcher: learns a per-PC address stride and, once
/// confident, prefetches `degree` strides ahead.
#[derive(Debug, Clone)]
pub struct IpStridePrefetcher {
    table: Vec<StrideEntry>,
    degree: usize,
    line_bytes: u64,
}

impl IpStridePrefetcher {
    /// Confidence needed before prefetches are issued.
    const THRESHOLD: u8 = 2;

    /// Creates a stride prefetcher with `entries` table slots (rounded up
    /// to a power of two) and the given prefetch degree (max 2).
    ///
    /// # Panics
    ///
    /// Panics if `degree` is 0 or greater than 2, or `entries` is 0.
    pub fn new(entries: usize, degree: usize, line_bytes: u64) -> Self {
        assert!((1..=2).contains(&degree), "degree must be 1 or 2");
        assert!(entries > 0, "need at least one table entry");
        IpStridePrefetcher {
            table: vec![StrideEntry::default(); entries.next_power_of_two()],
            degree,
            line_bytes,
        }
    }

    /// Observes a load at `pc` touching byte address `addr`; returns up to
    /// two *line numbers* to prefetch.
    pub fn on_access(&mut self, pc: u64, addr: u64) -> [Option<u64>; 2] {
        let idx = (pc >> 2) as usize & (self.table.len() - 1);
        let e = &mut self.table[idx];
        let mut out = [None, None];
        if e.tag == pc && e.last_addr != 0 {
            let stride = addr as i64 - e.last_addr as i64;
            if stride == e.stride && stride != 0 {
                e.confidence = (e.confidence + 1).min(Self::THRESHOLD + 1);
            } else {
                e.stride = stride;
                e.confidence = 0;
            }
            e.last_addr = addr;
            if e.confidence >= Self::THRESHOLD {
                for (d, slot) in out.iter_mut().take(self.degree).enumerate() {
                    let target = addr as i64 + e.stride * (d as i64 + 1);
                    if target >= 0 {
                        let line = target as u64 / self.line_bytes;
                        // Only prefetch when crossing into a new line.
                        if line != addr / self.line_bytes {
                            *slot = Some(line);
                        }
                    }
                }
            }
        } else {
            *e = StrideEntry {
                tag: pc,
                last_addr: addr,
                stride: 0,
                confidence: 0,
            };
        }
        out
    }
}

/// One tracked stream.
#[derive(Debug, Clone, Copy, Default)]
struct Stream {
    last_line: u64,
    /// +1 ascending, −1 descending, 0 untrained.
    direction: i64,
    hits: u8,
    valid: bool,
    lru: u64,
}

/// Stream prefetcher (LLC): detects sequences of consecutive line misses
/// and runs ahead of them.
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    streams: Vec<Stream>,
    degree: usize,
    clock: u64,
}

impl StreamPrefetcher {
    /// Accesses within this many lines of a stream head are considered part
    /// of the stream.
    const WINDOW: u64 = 4;
    /// Misses needed before a stream starts prefetching.
    const TRAIN: u8 = 2;

    /// Creates a stream prefetcher tracking `streams` streams with the
    /// given degree (max 2 lines per trigger).
    ///
    /// # Panics
    ///
    /// Panics if `streams` is 0 or `degree` not in 1..=2.
    pub fn new(streams: usize, degree: usize) -> Self {
        assert!(streams > 0, "need at least one stream tracker");
        assert!((1..=2).contains(&degree), "degree must be 1 or 2");
        StreamPrefetcher {
            streams: vec![Stream::default(); streams],
            degree,
            clock: 0,
        }
    }

    /// Observes a demand **miss** on `line`; returns up to two lines to
    /// prefetch.
    pub fn on_miss(&mut self, line: u64) -> [Option<u64>; 2] {
        self.clock += 1;
        let mut out = [None, None];
        // Find a stream this miss extends.
        for s in &mut self.streams {
            if !s.valid {
                continue;
            }
            let delta = line as i64 - s.last_line as i64;
            let matches = (s.direction >= 0 && delta > 0 && delta <= Self::WINDOW as i64)
                || (s.direction <= 0 && delta < 0 && -delta <= Self::WINDOW as i64);
            if matches {
                s.direction = if delta > 0 { 1 } else { -1 };
                s.last_line = line;
                s.hits = (s.hits + 1).min(Self::TRAIN + 1);
                s.lru = self.clock;
                if s.hits >= Self::TRAIN {
                    for (d, slot) in out.iter_mut().take(self.degree).enumerate() {
                        let target = line as i64 + s.direction * (d as i64 + 1);
                        if target >= 0 {
                            *slot = Some(target as u64);
                        }
                    }
                }
                return out;
            }
        }
        // Allocate a new stream (LRU victim).
        let victim = self
            .streams
            .iter_mut()
            .min_by_key(|s| if s.valid { s.lru } else { 0 })
            .expect("at least one stream");
        *victim = Stream {
            last_line: line,
            direction: 0,
            hits: 0,
            valid: true,
            lru: self.clock,
        };
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_line_suggests_successor() {
        let mut p = NextLinePrefetcher::new();
        assert_eq!(p.on_access(10), Some(11));
        assert_eq!(p.on_access(10), None, "same line suppressed");
        assert_eq!(p.on_access(11), Some(12));
    }

    #[test]
    fn next_line_saturates_at_max() {
        let mut p = NextLinePrefetcher::new();
        assert_eq!(p.on_access(u64::MAX), None);
    }

    #[test]
    fn ip_stride_learns_constant_stride() {
        let mut p = IpStridePrefetcher::new(64, 1, 64);
        let pc = 0x400100;
        let mut issued = vec![];
        for i in 0..8u64 {
            let [a, _] = p.on_access(pc, 0x1000 + i * 256);
            if let Some(l) = a {
                issued.push(l);
            }
        }
        // Strides become confident after a few repeats, then prefetch
        // addr + 256 (4 lines ahead at 64B lines).
        assert!(!issued.is_empty());
        for (k, l) in issued.iter().enumerate() {
            let i = 8 - issued.len() + k;
            assert_eq!(*l, (0x1000 + (i as u64) * 256 + 256) / 64);
        }
    }

    #[test]
    fn ip_stride_ignores_irregular_pcs() {
        let mut p = IpStridePrefetcher::new(64, 1, 64);
        let pc = 0x400100;
        // Random-looking addresses: stride never repeats.
        for addr in [0x1000u64, 0x9200, 0x3456, 0x77778, 0x120] {
            let [a, b] = p.on_access(pc, addr);
            assert_eq!(a, None);
            assert_eq!(b, None);
        }
    }

    #[test]
    fn ip_stride_small_stride_within_line_not_prefetched() {
        let mut p = IpStridePrefetcher::new(64, 1, 64);
        let pc = 0x400200;
        // 8-byte stride stays inside one 64-byte line for 7 of 8 accesses;
        // only the boundary-crossing access may fire.
        let mut fired = 0;
        for i in 0..8u64 {
            let [a, _] = p.on_access(pc, 0x2000 + i * 8);
            if a.is_some() {
                fired += 1;
            }
        }
        assert!(fired <= 1, "same-line prefetches suppressed, fired={fired}");
    }

    #[test]
    fn ip_stride_degree_two_issues_two() {
        let mut p = IpStridePrefetcher::new(64, 2, 64);
        let pc = 0x400300;
        let mut last = [None, None];
        for i in 0..6u64 {
            last = p.on_access(pc, 0x4000 + i * 128);
        }
        assert!(last[0].is_some() && last[1].is_some());
        assert_eq!(last[1].unwrap(), last[0].unwrap() + 2); // 128B = 2 lines
    }

    #[test]
    fn stream_detects_ascending_runs() {
        let mut p = StreamPrefetcher::new(4, 2);
        let mut prefetched = vec![];
        for line in 100..110u64 {
            let [a, b] = p.on_miss(line);
            prefetched.extend(a);
            prefetched.extend(b);
        }
        assert!(!prefetched.is_empty());
        // Prefetches run ahead of the miss stream.
        assert!(prefetched.iter().all(|&l| l > 100));
    }

    #[test]
    fn stream_detects_descending_runs() {
        let mut p = StreamPrefetcher::new(4, 1);
        let mut prefetched = vec![];
        for line in (50..60u64).rev() {
            let [a, _] = p.on_miss(line);
            prefetched.extend(a);
        }
        assert!(!prefetched.is_empty());
        assert!(prefetched.iter().all(|&l| l < 59));
    }

    #[test]
    fn stream_ignores_random_misses() {
        let mut p = StreamPrefetcher::new(4, 1);
        let mut fired = 0;
        for line in [5u64, 900, 13, 70000, 42, 123456, 7, 99999] {
            let [a, _] = p.on_miss(line);
            fired += a.iter().count();
        }
        assert_eq!(fired, 0);
    }

    #[test]
    fn stream_tracks_multiple_streams() {
        let mut p = StreamPrefetcher::new(4, 1);
        let mut fired = 0;
        for i in 0..10u64 {
            fired += p.on_miss(1000 + i).iter().flatten().count();
            fired += p.on_miss(900_000 - i).iter().flatten().count();
        }
        assert!(fired >= 12, "both streams train: fired={fired}");
    }

    #[test]
    #[should_panic(expected = "degree must be")]
    fn stream_rejects_zero_degree() {
        StreamPrefetcher::new(4, 0);
    }
}

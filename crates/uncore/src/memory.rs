//! Front-side bus + DRAM model (paper Table II).
//!
//! The paper's uncore has an 8-byte-wide FSB clocked at 800 MHz feeding a
//! 200-cycle-latency DRAM, with cores at 3 GHz. Transferring one 64-byte
//! line therefore occupies the bus for 8 bus cycles = 30 core cycles. The
//! model is a single bandwidth queue: each transfer reserves a bus slot
//! (serializing transfers, which is how memory contention between cores
//! arises) and completes one DRAM latency after its slot.

/// Memory-system timing parameters, in core cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryConfig {
    /// Core cycles the bus is busy per 64-byte line transfer.
    pub fsb_cycles_per_line: u64,
    /// DRAM access latency in core cycles.
    pub dram_latency: u64,
}

impl MemoryConfig {
    /// Table II values: 8-byte FSB at 800 MHz under a 3 GHz core
    /// (64 B / 8 B = 8 bus cycles × 3000/800 = 30 core cycles per line)
    /// and 200-cycle DRAM latency.
    pub fn ispass2013() -> Self {
        MemoryConfig {
            fsb_cycles_per_line: 30,
            dram_latency: 200,
        }
    }
}

impl Default for MemoryConfig {
    fn default() -> Self {
        Self::ispass2013()
    }
}

/// Bandwidth-queue memory model.
///
/// # Example
///
/// ```
/// use mps_uncore::{MemoryConfig, MemoryModel};
///
/// let mut mem = MemoryModel::new(MemoryConfig::ispass2013());
/// let first = mem.read_line(0);
/// let second = mem.read_line(0); // same instant: queues behind the first
/// assert_eq!(first, 230);        // 30 bus + 200 DRAM
/// assert_eq!(second, 260);       // waits one extra bus slot
/// ```
#[derive(Debug, Clone)]
pub struct MemoryModel {
    cfg: MemoryConfig,
    bus_free: u64,
    reads: u64,
    writes: u64,
}

impl MemoryModel {
    /// Creates an idle memory system.
    pub fn new(cfg: MemoryConfig) -> Self {
        MemoryModel {
            cfg,
            bus_free: 0,
            reads: 0,
            writes: 0,
        }
    }

    /// Requests a line read issued at `now`; returns the data-ready cycle.
    pub fn read_line(&mut self, now: u64) -> u64 {
        self.reads += 1;
        let slot = now.max(self.bus_free);
        self.bus_free = slot + self.cfg.fsb_cycles_per_line;
        self.bus_free + self.cfg.dram_latency
    }

    /// Posts a line writeback at `now`. Consumes bus bandwidth; the caller
    /// does not wait for it. Returns the cycle the transfer leaves the bus
    /// (when its write-buffer entry frees).
    pub fn write_line(&mut self, now: u64) -> u64 {
        self.writes += 1;
        let slot = now.max(self.bus_free);
        self.bus_free = slot + self.cfg.fsb_cycles_per_line;
        self.bus_free
    }

    /// First cycle at which the bus is free.
    pub fn bus_free_at(&self) -> u64 {
        self.bus_free
    }

    /// (reads, writes) issued so far.
    pub fn traffic(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    /// The configuration in use.
    pub fn config(&self) -> MemoryConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MemoryModel {
        MemoryModel::new(MemoryConfig {
            fsb_cycles_per_line: 30,
            dram_latency: 200,
        })
    }

    #[test]
    fn idle_read_takes_bus_plus_dram() {
        let mut m = model();
        assert_eq!(m.read_line(1000), 1230);
    }

    #[test]
    fn back_to_back_reads_serialize_on_the_bus() {
        let mut m = model();
        let a = m.read_line(0);
        let b = m.read_line(0);
        let c = m.read_line(0);
        assert_eq!(a, 230);
        assert_eq!(b, 260);
        assert_eq!(c, 290);
    }

    #[test]
    fn spaced_reads_do_not_queue() {
        let mut m = model();
        let a = m.read_line(0);
        let b = m.read_line(1_000);
        assert_eq!(a, 230);
        assert_eq!(b, 1_230);
    }

    #[test]
    fn writebacks_consume_bandwidth() {
        let mut m = model();
        m.write_line(0);
        let r = m.read_line(0);
        assert_eq!(r, 260, "read queues behind the writeback");
        assert_eq!(m.traffic(), (1, 1));
    }

    #[test]
    fn bus_free_tracks_reservations() {
        let mut m = model();
        assert_eq!(m.bus_free_at(), 0);
        m.read_line(10);
        assert_eq!(m.bus_free_at(), 40);
    }

    #[test]
    fn paper_config_values() {
        let c = MemoryConfig::ispass2013();
        assert_eq!(c.fsb_cycles_per_line, 30);
        assert_eq!(c.dram_latency, 200);
    }
}

//! Uncore configurations (paper Table II).

use crate::memory::MemoryConfig;
use crate::replacement::PolicyKind;

/// Configuration of the shared uncore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UncoreConfig {
    /// Shared LLC capacity in bytes.
    pub llc_size: u64,
    /// LLC associativity.
    pub llc_ways: usize,
    /// LLC hit latency in core cycles.
    pub llc_latency: u64,
    /// Cache-line size in bytes (all levels).
    pub line_bytes: u64,
    /// Number of LLC miss-status-holding registers.
    pub mshrs: usize,
    /// LLC write-buffer entries (writebacks beyond this stall the port).
    pub write_buffer: usize,
    /// LLC replacement policy under study.
    pub policy: PolicyKind,
    /// FSB/DRAM timing.
    pub memory: MemoryConfig,
    /// Enable the per-core LLC stream prefetchers.
    pub stream_prefetch: bool,
}

impl UncoreConfig {
    /// The paper's Table II configuration for a given core count.
    ///
    /// | cores | LLC size | LLC latency |
    /// |-------|----------|-------------|
    /// | 1, 2  | 1 MB     | 5 cycles    |
    /// | 4     | 2 MB     | 6 cycles    |
    /// | 8     | 4 MB     | 7 cycles    |
    ///
    /// All variants: 64-byte lines, 16-way, write-back, 8-entry write
    /// buffer, 16 MSHRs, stream prefetchers, 800 MHz × 8 B FSB, 200-cycle
    /// DRAM.
    ///
    /// # Panics
    ///
    /// Panics for core counts other than 1, 2, 4 or 8.
    ///
    /// # Example
    ///
    /// ```
    /// use mps_uncore::{PolicyKind, UncoreConfig};
    ///
    /// let cfg = UncoreConfig::ispass2013(4, PolicyKind::Drrip);
    /// assert_eq!(cfg.llc_size, 2 << 20);
    /// assert_eq!(cfg.llc_latency, 6);
    /// ```
    pub fn ispass2013(cores: usize, policy: PolicyKind) -> Self {
        let (llc_size, llc_latency) = match cores {
            1 | 2 => (1u64 << 20, 5),
            4 => (2u64 << 20, 6),
            8 => (4u64 << 20, 7),
            _ => panic!("Table II defines 2-, 4- and 8-core uncores (got {cores})"),
        };
        UncoreConfig {
            llc_size,
            llc_ways: 16,
            llc_latency,
            line_bytes: 64,
            mshrs: 16,
            write_buffer: 8,
            policy,
            memory: MemoryConfig::ispass2013(),
            stream_prefetch: true,
        }
    }

    /// Canonical fingerprint of every timing and capacity knob, in the
    /// `key=value;…` form the artifact store and the validation report
    /// use for provenance. Two configurations with equal spec strings
    /// are behaviorally interchangeable; any knob change shows up in the
    /// string. Part of the stable validation surface consumed by
    /// `mps-harness validate` (see `docs/validation.md`).
    ///
    /// # Example
    ///
    /// ```
    /// use mps_uncore::{PolicyKind, UncoreConfig};
    ///
    /// let spec = UncoreConfig::ispass2013(2, PolicyKind::Lru).spec_string();
    /// assert!(spec.starts_with("llc=1048576x16w@5;"));
    /// assert!(spec.contains("policy=LRU"));
    /// ```
    pub fn spec_string(&self) -> String {
        format!(
            "llc={}x{}w@{};line={};mshrs={};wb={};policy={};fsb={};dram={};pf={}",
            self.llc_size,
            self.llc_ways,
            self.llc_latency,
            self.line_bytes,
            self.mshrs,
            self.write_buffer,
            self.policy,
            self.memory.fsb_cycles_per_line,
            self.memory.dram_latency,
            u8::from(self.stream_prefetch),
        )
    }

    /// The Table II uncore with its LLC capacity divided by `divisor`
    /// (latencies unchanged).
    ///
    /// Detailed simulation at paper scale runs 100 M instructions per
    /// thread — enough to wrap a 2 MB LLC thousands of times. Reproduction
    /// runs are 10⁴–10⁵ instructions, so capacity is scaled down with the
    /// trace to preserve the *ratio* of working-set size to cache size,
    /// which is what replacement policies respond to (see `DESIGN.md`).
    /// The canonical experiment scaling uses `divisor = 16`:
    /// 64 kB / 128 kB / 256 kB for 2 / 4 / 8 cores.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero or does not leave at least one
    /// power-of-two set.
    pub fn ispass2013_scaled(cores: usize, policy: PolicyKind, divisor: u64) -> Self {
        assert!(divisor > 0, "divisor must be positive");
        let mut cfg = Self::ispass2013(cores, policy);
        cfg.llc_size /= divisor;
        assert!(
            cfg.llc_sets() > 0 && cfg.llc_sets().is_power_of_two(),
            "divisor {divisor} leaves no valid set count"
        );
        cfg
    }

    /// A deliberately tiny uncore for fast unit tests: 16 kB, 4-way LLC,
    /// same latencies as the 2-core Table II uncore.
    pub fn tiny_for_tests(policy: PolicyKind) -> Self {
        UncoreConfig {
            llc_size: 16 << 10,
            llc_ways: 4,
            llc_latency: 5,
            line_bytes: 64,
            mshrs: 8,
            write_buffer: 4,
            policy,
            memory: MemoryConfig::ispass2013(),
            stream_prefetch: true,
        }
    }

    /// Number of LLC sets implied by the geometry.
    pub fn llc_sets(&self) -> usize {
        (self.llc_size / (self.llc_ways as u64 * self.line_bytes)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_sizes_and_latencies() {
        let c2 = UncoreConfig::ispass2013(2, PolicyKind::Lru);
        assert_eq!((c2.llc_size, c2.llc_latency), (1 << 20, 5));
        let c4 = UncoreConfig::ispass2013(4, PolicyKind::Lru);
        assert_eq!((c4.llc_size, c4.llc_latency), (2 << 20, 6));
        let c8 = UncoreConfig::ispass2013(8, PolicyKind::Lru);
        assert_eq!((c8.llc_size, c8.llc_latency), (4 << 20, 7));
    }

    #[test]
    fn shared_parameters() {
        let c = UncoreConfig::ispass2013(4, PolicyKind::Dip);
        assert_eq!(c.llc_ways, 16);
        assert_eq!(c.line_bytes, 64);
        assert_eq!(c.mshrs, 16);
        assert_eq!(c.write_buffer, 8);
        assert!(c.stream_prefetch);
        assert_eq!(c.policy, PolicyKind::Dip);
    }

    #[test]
    fn set_counts_are_powers_of_two() {
        for cores in [2, 4, 8] {
            let c = UncoreConfig::ispass2013(cores, PolicyKind::Lru);
            assert!(c.llc_sets().is_power_of_two(), "{cores} cores");
        }
        // 2 MB / (16 × 64 B) = 2048 sets.
        assert_eq!(
            UncoreConfig::ispass2013(4, PolicyKind::Lru).llc_sets(),
            2048
        );
    }

    #[test]
    #[should_panic(expected = "Table II")]
    fn unsupported_core_count_panics() {
        UncoreConfig::ispass2013(3, PolicyKind::Lru);
    }

    #[test]
    fn spec_string_distinguishes_every_knob() {
        let base = UncoreConfig::ispass2013(4, PolicyKind::Lru);
        let mut seen = std::collections::HashSet::new();
        assert!(seen.insert(base.spec_string()));
        let mut v = base.clone();
        v.policy = PolicyKind::Drrip;
        assert!(seen.insert(v.spec_string()), "policy change must show");
        let mut v = base.clone();
        v.llc_size /= 2;
        assert!(seen.insert(v.spec_string()), "capacity change must show");
        let mut v = base.clone();
        v.memory.dram_latency += 1;
        assert!(seen.insert(v.spec_string()), "DRAM change must show");
        let mut v = base;
        v.stream_prefetch = false;
        assert!(seen.insert(v.spec_string()), "prefetch change must show");
    }
}

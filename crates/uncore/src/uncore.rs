//! The composite shared uncore.
//!
//! This is the component both simulators plug their cores into (the paper's
//! BADCO machines are connected "to a detailed uncore simulator ... Our
//! uncore simulator was extracted from Zesto"). It owns:
//!
//! * the shared LLC with the replacement policy under study,
//! * the MSHR file (16 entries; concurrent misses to the same line merge),
//! * the FSB/DRAM bandwidth queue,
//! * per-core stream prefetchers trained on LLC demand misses,
//! * a single arbitrated port: one request per cycle, so simultaneous
//!   requests from different cores serialize (the multicore drivers call
//!   cores round-robin each cycle, matching the paper's arbitration).
//!
//! Timing is modelled with completion times rather than per-cycle events:
//! an access returns the core cycle at which its data is available. This
//! keeps the model deterministic and fast while preserving latency,
//! bandwidth and capacity contention between cores.
//!
//! Threads in a multiprogrammed workload are independent processes; the
//! uncore gives each core a disjoint physical address space by tagging
//! addresses with the core index (the paper's BADCO "allocates a new
//! physical page" per virtual page — distinct per thread).

use crate::cache::{AccessOutcome, AccessType, Cache, CacheStats};
use crate::config::UncoreConfig;
use crate::memory::MemoryModel;
use crate::prefetch::StreamPrefetcher;

/// Aggregate uncore statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UncoreStats {
    /// Demand requests seen (all cores).
    pub requests: u64,
    /// Requests that hit the LLC.
    pub llc_hits: u64,
    /// Requests that missed and went to memory.
    pub llc_misses: u64,
    /// Misses merged into an in-flight MSHR.
    pub mshr_merges: u64,
    /// Cycles requests spent waiting because all MSHRs were busy.
    pub mshr_stall_cycles: u64,
    /// Cycles requests spent waiting because the write buffer was full.
    pub wb_stall_cycles: u64,
    /// Prefetch lines requested from memory.
    pub prefetches: u64,
}

/// Process-global observability counters for uncore events, resolved once
/// per [`Uncore`] so the per-access cost is one relaxed atomic add (zero
/// with the `obs` feature off).
#[derive(Debug, Clone, Copy)]
struct ObsCounters {
    accesses: mps_obs::Counter,
    hits: mps_obs::Counter,
    misses: mps_obs::Counter,
    mshr_merges: mps_obs::Counter,
    prefetches: mps_obs::Counter,
    evictions: mps_obs::Counter,
    writebacks: mps_obs::Counter,
}

impl ObsCounters {
    fn new() -> Self {
        ObsCounters {
            accesses: mps_obs::counter("uncore.llc.accesses"),
            hits: mps_obs::counter("uncore.llc.hits"),
            misses: mps_obs::counter("uncore.llc.misses"),
            mshr_merges: mps_obs::counter("uncore.mshr.merges"),
            prefetches: mps_obs::counter("uncore.prefetches"),
            evictions: mps_obs::counter("uncore.llc.evictions"),
            writebacks: mps_obs::counter("uncore.llc.writebacks"),
        }
    }
}

/// The shared uncore. See the module docs.
#[derive(Debug)]
pub struct Uncore {
    cfg: UncoreConfig,
    cores: usize,
    llc: Cache,
    mem: MemoryModel,
    /// In-flight demand misses: `(physical line, completion cycle)` pairs.
    ///
    /// Bounded by `cfg.mshrs` (16 in the paper's Table II), so a linear
    /// scan beats a tree: the whole file fits in two cache lines and the
    /// steady state performs no allocation. Order is never observed —
    /// lookups are by line and retirement is by completion time.
    pending: Vec<(u64, u64)>,
    /// Single request port: next cycle a new request can be accepted.
    port_free: u64,
    /// Bus-departure times of in-flight writebacks (the write buffer).
    wb_pending: Vec<u64>,
    prefetchers: Vec<StreamPrefetcher>,
    stats: UncoreStats,
    obs: ObsCounters,
    /// Per-core demand misses (for MPKI accounting).
    core_misses: Vec<u64>,
    /// Per-core demand accesses.
    core_accesses: Vec<u64>,
    /// Per-core prefetch lines fetched from memory on the core's behalf.
    core_prefetches: Vec<u64>,
}

impl Uncore {
    /// Builds the uncore for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cfg: UncoreConfig, cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        let sets = cfg.llc_sets();
        let llc = Cache::new(sets, cfg.llc_ways, cfg.policy);
        let mem = MemoryModel::new(cfg.memory);
        let prefetchers = (0..cores).map(|_| StreamPrefetcher::new(8, 2)).collect();
        let mshrs = cfg.mshrs;
        let write_buffer = cfg.write_buffer;
        Uncore {
            cfg,
            cores,
            llc,
            mem,
            pending: Vec::with_capacity(mshrs),
            port_free: 0,
            wb_pending: Vec::with_capacity(write_buffer + 1),
            prefetchers,
            stats: UncoreStats::default(),
            obs: ObsCounters::new(),
            core_misses: vec![0; cores],
            core_accesses: vec![0; cores],
            core_prefetches: vec![0; cores],
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &UncoreConfig {
        &self.cfg
    }

    /// Number of cores attached.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Translates a core-local byte address to a global physical line
    /// number. Each core gets a disjoint 1 TB window.
    fn phys_line(&self, core: usize, addr: u64) -> u64 {
        debug_assert!(core < self.cores, "core {core} out of range");
        ((core as u64) << 40 | (addr & ((1 << 40) - 1))) / self.cfg.line_bytes
    }

    /// Retires MSHRs whose miss has completed by `now`.
    fn drain(&mut self, now: u64) {
        self.pending.retain(|&(_, done)| done > now);
    }

    /// Completion cycle of the in-flight miss covering `line`, if any.
    #[inline]
    fn pending_done(&self, line: u64) -> Option<u64> {
        self.pending
            .iter()
            .find(|&&(l, _)| l == line)
            .map(|&(_, done)| done)
    }

    /// Issues a demand access from `core` for byte address `addr` at core
    /// cycle `now`; returns the cycle the data is available.
    ///
    /// `write` distinguishes stores/writebacks from loads (timing is
    /// identical; dirtiness and traffic accounting differ).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range (debug builds).
    pub fn access(&mut self, core: usize, addr: u64, write: bool, now: u64) -> u64 {
        let line = self.phys_line(core, addr);
        self.stats.requests += 1;
        self.core_accesses[core] += 1;
        self.obs.accesses.incr();

        // Port arbitration: one request enters per cycle.
        let start = now.max(self.port_free);
        self.port_free = start + 1;
        // LLC array access.
        let t_hit = start + self.cfg.llc_latency;
        self.drain(start);

        // MSHR merge: a miss to an in-flight line piggybacks on it.
        if let Some(done) = self.pending_done(line) {
            self.stats.mshr_merges += 1;
            self.obs.mshr_merges.incr();
            return done.max(t_hit);
        }

        let kind = if write {
            AccessType::Write
        } else {
            AccessType::Read
        };
        let evictions_before = self.llc.stats().evictions;
        match self.llc.access(line, kind) {
            AccessOutcome::Hit => {
                self.stats.llc_hits += 1;
                self.obs.hits.incr();
                t_hit
            }
            AccessOutcome::Miss { writeback } => {
                self.stats.llc_misses += 1;
                self.core_misses[core] += 1;
                self.obs.misses.incr();

                // MSHR occupancy: wait until one frees if all are busy.
                let mut issue = t_hit;
                if self.pending.len() >= self.cfg.mshrs {
                    let earliest = self
                        .pending
                        .iter()
                        .map(|&(_, done)| done)
                        .min()
                        .expect("pending non-empty when full");
                    if earliest > issue {
                        self.stats.mshr_stall_cycles += earliest - issue;
                        issue = earliest;
                    }
                    self.drain(issue);
                }

                if writeback.is_some() {
                    self.obs.writebacks.incr();
                    // Dirty victim: its writeback occupies a write-buffer
                    // entry until the bus carries it out; a full buffer
                    // stalls the miss (Table II: 8 entries).
                    self.wb_pending.retain(|&t| t > issue);
                    if self.wb_pending.len() >= self.cfg.write_buffer {
                        let earliest = *self.wb_pending.iter().min().expect("non-empty when full");
                        self.stats.wb_stall_cycles += earliest.saturating_sub(issue);
                        issue = issue.max(earliest);
                        self.wb_pending.retain(|&t| t > issue);
                    }
                }
                let done = self.mem.read_line(issue);
                if writeback.is_some() {
                    // Dirty victim: consumes bus bandwidth behind the read.
                    let freed = self.mem.write_line(issue);
                    self.wb_pending.push(freed);
                }
                self.pending.push((line, done));

                // Train the core's stream prefetcher on the demand miss.
                if self.cfg.stream_prefetch {
                    let suggestions = self.prefetchers[core].on_miss(line);
                    for pf_line in suggestions.into_iter().flatten() {
                        if !self.llc.probe(pf_line) && self.pending_done(pf_line).is_none() {
                            self.stats.prefetches += 1;
                            self.core_prefetches[core] += 1;
                            self.obs.prefetches.incr();
                            // Prefetch fills consume memory bandwidth but
                            // nobody waits on them.
                            let pf_done = self.mem.read_line(issue);
                            if let AccessOutcome::Miss { writeback: Some(_) } =
                                self.llc.access(pf_line, AccessType::Prefetch)
                            {
                                self.mem.write_line(pf_done);
                            }
                        }
                    }
                }
                self.obs
                    .evictions
                    .add(self.llc.stats().evictions - evictions_before);
                done
            }
        }
    }

    /// Issues a prefetch fill from a core's L1 prefetchers.
    ///
    /// Returns the cycle at which the line will be available, or `None`
    /// when the prefetch is dropped (all MSHRs busy) — prefetches are
    /// best-effort and never contend with demand misses for MSHRs. A line
    /// already resident (or already in flight) is "available" at its hit
    /// latency (resp. existing completion) without new traffic.
    pub fn prefetch(&mut self, core: usize, addr: u64, now: u64) -> Option<u64> {
        let line = self.phys_line(core, addr);
        self.drain(now);
        if self.llc.probe(line) {
            return Some(now + self.cfg.llc_latency);
        }
        if let Some(done) = self.pending_done(line) {
            return Some(done);
        }
        if self.pending.len() >= self.cfg.mshrs {
            return None;
        }
        self.stats.prefetches += 1;
        self.core_prefetches[core] += 1;
        self.obs.prefetches.incr();
        let done = self.mem.read_line(now);
        let evictions_before = self.llc.stats().evictions;
        if let AccessOutcome::Miss { writeback: Some(_) } =
            self.llc.access(line, AccessType::Prefetch)
        {
            self.obs.writebacks.incr();
            let freed = self.mem.write_line(done);
            self.wb_pending.push(freed);
        }
        self.obs
            .evictions
            .add(self.llc.stats().evictions - evictions_before);
        self.pending.push((line, done));
        Some(done)
    }

    /// LLC statistics.
    pub fn llc_stats(&self) -> CacheStats {
        self.llc.stats()
    }

    /// Aggregate uncore statistics.
    pub fn stats(&self) -> UncoreStats {
        self.stats
    }

    /// Demand misses suffered by one core (for MPKI).
    pub fn core_misses(&self, core: usize) -> u64 {
        self.core_misses[core]
    }

    /// Demand accesses issued by one core.
    pub fn core_accesses(&self, core: usize) -> u64 {
        self.core_accesses[core]
    }

    /// Prefetch lines fetched from memory on behalf of one core.
    ///
    /// Memory-intensity (MPKI) accounting adds these to demand misses:
    /// prefetchers convert would-be demand misses into prefetch traffic,
    /// but the benchmark's pressure on memory is the same.
    pub fn core_prefetches(&self, core: usize) -> u64 {
        self.core_prefetches[core]
    }

    /// (reads, writes) that reached memory.
    pub fn memory_traffic(&self) -> (u64, u64) {
        self.mem.traffic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::PolicyKind;

    fn uncore(cores: usize) -> Uncore {
        Uncore::new(UncoreConfig::ispass2013(2, PolicyKind::Lru), cores)
    }

    #[test]
    fn cold_miss_pays_memory_latency() {
        let mut u = uncore(2);
        let done = u.access(0, 0x1000, false, 0);
        // port(0) + LLC 5 + bus 30 + DRAM 200
        assert_eq!(done, 235);
        assert_eq!(u.stats().llc_misses, 1);
    }

    #[test]
    fn hit_pays_llc_latency_only() {
        let mut u = uncore(2);
        let miss_done = u.access(0, 0x1000, false, 0);
        let hit_done = u.access(0, 0x1000, false, miss_done);
        assert_eq!(hit_done, miss_done + 5);
        assert_eq!(u.stats().llc_hits, 1);
    }

    #[test]
    fn same_line_different_offsets_hit() {
        let mut u = uncore(2);
        let d = u.access(0, 0x1000, false, 0);
        let d2 = u.access(0, 0x1008, false, d); // same 64-byte line
        assert_eq!(d2, d + 5);
    }

    #[test]
    fn cores_have_disjoint_address_spaces() {
        let mut u = uncore(2);
        let d0 = u.access(0, 0x1000, false, 0);
        // Core 1 touching the same virtual address must miss.
        let d1 = u.access(1, 0x1000, false, d0);
        assert!(d1 > d0 + 5, "expected a miss, got hit timing");
        assert_eq!(u.stats().llc_misses, 2);
    }

    #[test]
    fn mshr_merges_concurrent_misses_to_one_line() {
        let mut u = uncore(2);
        let d0 = u.access(0, 0x2000, false, 0);
        // Before d0 completes, another access to the same line merges.
        let d1 = u.access(0, 0x2008, false, 10);
        assert_eq!(d0, d1);
        assert_eq!(u.stats().mshr_merges, 1);
        assert_eq!(u.stats().llc_misses, 1);
    }

    #[test]
    fn port_serializes_simultaneous_requests() {
        let mut u = uncore(2);
        let a = u.access(0, 0x10_0000, false, 50);
        let b = u.access(1, 0x20_0000, false, 50);
        // Both miss; the second one's bus slot queues behind the first.
        assert!(b > a, "a={a} b={b}");
    }

    #[test]
    fn mshr_limit_stalls_excess_misses() {
        let cfg = UncoreConfig {
            mshrs: 2,
            stream_prefetch: false,
            ..UncoreConfig::ispass2013(2, PolicyKind::Lru)
        };
        let mut u = Uncore::new(cfg, 1);
        // Three distinct-line misses at the same instant: the third must
        // wait for an MSHR.
        u.access(0, 0x100_000, false, 0);
        u.access(0, 0x200_000, false, 0);
        u.access(0, 0x300_000, false, 0);
        assert!(u.stats().mshr_stall_cycles > 0);
    }

    #[test]
    fn sequential_misses_train_stream_prefetcher() {
        let mut u = uncore(1);
        let mut t = 0;
        for i in 0..20u64 {
            t = u.access(0, 0x10_0000 + i * 64, false, t);
        }
        assert!(u.stats().prefetches > 0);
        // Trained stream means later accesses hit on prefetched lines.
        assert!(u.stats().llc_hits > 0);
    }

    #[test]
    fn prefetch_can_be_disabled() {
        let cfg = UncoreConfig {
            stream_prefetch: false,
            ..UncoreConfig::ispass2013(2, PolicyKind::Lru)
        };
        let mut u = Uncore::new(cfg, 1);
        let mut t = 0;
        for i in 0..20u64 {
            t = u.access(0, 0x10_0000 + i * 64, false, t);
        }
        assert_eq!(u.stats().prefetches, 0);
    }

    #[test]
    fn per_core_miss_accounting() {
        let mut u = uncore(2);
        u.access(0, 0x1000, false, 0);
        u.access(0, 0x1000, false, 1000);
        u.access(1, 0x5_0000, false, 2000);
        assert_eq!(u.core_accesses(0), 2);
        assert_eq!(u.core_misses(0), 1);
        assert_eq!(u.core_accesses(1), 1);
        assert_eq!(u.core_misses(1), 1);
    }

    #[test]
    fn dirty_writeback_generates_memory_write() {
        // 1-set... smallest Table II LLC still has 1024 sets; use writes to
        // force dirty lines and then evict them with conflicting lines.
        let cfg = UncoreConfig {
            llc_size: 4 << 10, // 4 kB, 4-way, 64 B → 16 sets
            llc_ways: 4,
            stream_prefetch: false,
            ..UncoreConfig::ispass2013(2, PolicyKind::Lru)
        };
        let mut u = Uncore::new(cfg, 1);
        let mut t = 0;
        // Write 5 lines mapping to the same set (stride = sets × line).
        for i in 0..5u64 {
            t = u.access(0, i * 16 * 64, true, t) + 1;
        }
        let (_, writes) = u.memory_traffic();
        assert!(writes >= 1, "dirty eviction must write back");
    }

    #[test]
    fn full_write_buffer_stalls_misses() {
        let cfg = UncoreConfig {
            llc_size: 4 << 10, // 16 sets × 4 ways
            llc_ways: 4,
            write_buffer: 1,
            stream_prefetch: false,
            ..UncoreConfig::ispass2013(2, PolicyKind::Lru)
        };
        let mut u = Uncore::new(cfg, 1);
        // Fill set 0 with dirty lines, then stream more conflicting dirty
        // lines at the same instant: every miss evicts a dirty victim and
        // the single-entry write buffer must back-pressure.
        let mut t = 0;
        for i in 0..4u64 {
            t = u.access(0, i * 16 * 64, true, t);
        }
        for i in 4..10u64 {
            u.access(0, i * 16 * 64, true, t);
        }
        assert!(
            u.stats().wb_stall_cycles > 0,
            "single-entry write buffer must stall: {:?}",
            u.stats()
        );
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut u = uncore(4);
            let mut t = 0;
            let mut trace = vec![];
            for i in 0..500u64 {
                let core = (i % 4) as usize;
                let addr = (i * 7919) % (1 << 22);
                t = u.access(core, addr, i % 5 == 0, t);
                trace.push(t);
            }
            trace
        };
        assert_eq!(run(), run());
    }
}

//! BADCO — behavioral application-dependent core model.
//!
//! The paper's fast approximate simulator ("BADCO: behavioral
//! application-dependent superscalar core model", Velásquez, Michaud,
//! Seznec — SAMOS 2012). A BADCO model *emulates the external behaviour of
//! a core* — the way it talks to the uncore — without simulating internal
//! mechanisms. It is built per benchmark from **two detailed-simulation
//! training runs** and can then be plugged into the same shared uncore as
//! the detailed simulator to evaluate many uncore configurations quickly:
//!
//! 1. a run against an *ideal* uncore (every L1 miss served at the LLC hit
//!    latency) provides per-node execution weights,
//! 2. a run against a *pessimal* uncore (every L1 miss pays the full
//!    memory latency) reveals how much each node actually stalls on its
//!    upstream requests — nodes whose timing barely moved overlap their
//!    misses (MLP) and execute non-blocking.
//!
//! A model is a sequence of **nodes**: groups of µops ending at a µop that
//! issued an uncore request, annotated with the requests to (re)issue and
//! dependencies on earlier requests. Dependencies come from exact register
//! dataflow over the deterministic µop trace — where the original BADCO
//! must infer dependences from timing alone, this reproduction's traces
//! are white-box, so the dependence structure is computed exactly and the
//! second training run is used to decide which dependences actually stall
//! the pipeline (see `DESIGN.md` for this substitution).
//!
//! Multiprogram simulation connects one BADCO machine per core to the
//! shared [`mps_uncore::Uncore`] with time-ordered, round-robin-on-ties
//! arbitration, exactly mirroring the paper's setup.

pub mod cophase;
pub mod machine;
pub mod model;
pub mod multicore;

pub use cophase::CoPhaseMatrix;
pub use machine::BadcoMachine;
pub use model::{BadcoModel, BadcoTiming, ModelNode, ModelRequest};
pub use multicore::{BadcoMulticoreSim, BadcoSimResult};

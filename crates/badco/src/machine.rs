//! The BADCO machine: an abstract core that fetches and executes nodes.

use crate::model::BadcoModel;
use mps_uncore::Uncore;
use std::sync::Arc;

/// Runahead window in µops (the detailed core's ROB size).
const LOOKAHEAD_UOPS: u64 = 128;

/// Sentinel for a request that has not been issued in the current pass.
const NOT_ISSUED: u64 = u64::MAX;

/// Trace-driven abstract core executing a [`BadcoModel`] against the
/// shared uncore.
///
/// Execution is node-by-node: a node starts once the previous node has
/// finished and all its blocking dependences have returned from the
/// uncore; it then issues its own requests (address-dependent requests
/// wait for their parents) and completes `weight` cycles later. The
/// thread-restart rule wraps to node 0 with fresh request state, exactly
/// like the detailed simulator restarts its trace.
#[derive(Debug, Clone)]
pub struct BadcoMachine {
    model: Arc<BadcoModel>,
    core: usize,
    node_idx: usize,
    time: u64,
    committed: u64,
    target: u64,
    finish_cycle: Option<u64>,
    /// Completion cycle of each request issued in the current pass,
    /// indexed by request id; `NOT_ISSUED` when not yet issued.
    completions: Vec<u64>,
    /// Completion cycles of in-flight reads (bounded by
    /// [`crate::model::MAX_OUTSTANDING`]).
    outstanding: Vec<u64>,
}

impl BadcoMachine {
    /// Binds a model to uncore port `core`, measuring IPC over `target`
    /// µops (normally one pass over the model).
    ///
    /// # Panics
    ///
    /// Panics if `target` is zero.
    pub fn new(model: Arc<BadcoModel>, core: usize, target: u64) -> Self {
        assert!(target > 0, "need a positive measurement target");
        let requests = model.requests_total() as usize;
        BadcoMachine {
            model,
            core,
            node_idx: 0,
            time: 0,
            committed: 0,
            target,
            finish_cycle: None,
            completions: vec![NOT_ISSUED; requests],
            outstanding: Vec::with_capacity(crate::model::MAX_OUTSTANDING),
        }
    }

    /// Cycle at which the machine's `target` µops had committed.
    pub fn finish_cycle(&self) -> Option<u64> {
        self.finish_cycle
    }

    /// Whether the measured slice is complete.
    pub fn done(&self) -> bool {
        self.finish_cycle.is_some()
    }

    /// µops committed so far (including restarted passes).
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// The measurement target (µops).
    pub fn target(&self) -> u64 {
        self.target
    }

    /// Current local time: the cycle at which the next node may start.
    pub fn next_event_time(&self) -> u64 {
        self.time
    }

    /// The uncore port this machine drives.
    pub fn core(&self) -> usize {
        self.core
    }

    /// Executes one node against the uncore; returns the node's finish
    /// cycle.
    pub fn step(&mut self, uncore: &mut Uncore) -> u64 {
        let node = &self.model.nodes()[self.node_idx];

        // Wait for dependences from earlier nodes, scaled by how much of
        // that wait the training runs showed the core actually exposes.
        let dep_ready = node
            .deps
            .iter()
            .map(|&d| self.completions[d as usize])
            .filter(|&c| c != NOT_ISSUED)
            .max()
            .unwrap_or(0);
        let mut start = if dep_ready > self.time {
            self.time + ((dep_ready - self.time) as f64 * node.stall_factor).round() as u64
        } else {
            self.time
        };

        // Outstanding-request limit (the L1 MSHR file): new requests wait
        // for slots, which bounds memory-level parallelism and makes
        // bandwidth saturation propagate into machine time.
        if !node.requests.is_empty() {
            self.outstanding.retain(|&done| done > start);
            while self.outstanding.len() + node.requests.len() > crate::model::MAX_OUTSTANDING {
                let earliest = self
                    .outstanding
                    .iter()
                    .copied()
                    .min()
                    .expect("outstanding non-empty when over limit");
                start = start.max(earliest);
                self.outstanding.retain(|&done| done > start);
            }
        }

        // Issue this node's requests (unless a lookahead pass already did).
        for req in &node.requests {
            if self.completions[req.id as usize] != NOT_ISSUED {
                continue;
            }
            let issue_at = req
                .addr_deps
                .iter()
                .map(|&d| self.completions[d as usize])
                .filter(|&c| c != NOT_ISSUED)
                .max()
                .unwrap_or(0)
                .max(start);
            let done = uncore.access(self.core, req.addr, req.write, issue_at);
            // Writes are posted: dependents never wait on them.
            let visible = if req.write { issue_at } else { done };
            self.completions[req.id as usize] = visible;
            if !req.write {
                self.outstanding.push(done);
            }
        }

        // Runahead issue: the detailed core's out-of-order window and
        // prefetchers launch misses up to a ROB's worth of µops early;
        // mirror that by issuing address-ready requests of upcoming nodes
        // now, within the remaining outstanding-request budget.
        let mut dist = u64::from(node.uops);
        let mut j = self.node_idx + 1;
        'lookahead: while dist < LOOKAHEAD_UOPS && j < self.model.nodes().len() {
            let ahead = &self.model.nodes()[j];
            for req in &ahead.requests {
                if self.completions[req.id as usize] != NOT_ISSUED {
                    continue;
                }
                if self.outstanding.len() >= crate::model::MAX_OUTSTANDING {
                    break 'lookahead;
                }
                let addr_known = req.addr_deps.iter().all(|&d| {
                    let c = self.completions[d as usize];
                    c != NOT_ISSUED && c <= start
                });
                if !addr_known {
                    continue;
                }
                let done = uncore.access(self.core, req.addr, req.write, start);
                let visible = if req.write { start } else { done };
                self.completions[req.id as usize] = visible;
                if !req.write {
                    self.outstanding.push(done);
                }
            }
            dist += u64::from(ahead.uops);
            j += 1;
        }

        let end = start + node.weight;
        self.time = end;
        self.committed += u64::from(node.uops);
        if self.committed >= self.target && self.finish_cycle.is_none() {
            self.finish_cycle = Some(end);
        }

        self.node_idx += 1;
        if self.node_idx == self.model.nodes().len() {
            // Thread restart: replay the model.
            self.node_idx = 0;
            self.completions.fill(NOT_ISSUED);
            self.outstanding.clear();
        }
        end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BadcoModel, BadcoTiming};
    use mps_sim_cpu::CoreConfig;
    use mps_uncore::{PolicyKind, UncoreConfig};
    use mps_workloads::benchmark_by_name;

    fn model(name: &str, n: u64) -> Arc<BadcoModel> {
        let bench = benchmark_by_name(name).unwrap();
        let timing = BadcoTiming::from_uncore(&UncoreConfig::ispass2013(2, PolicyKind::Lru));
        Arc::new(BadcoModel::build(
            name,
            &CoreConfig::ispass2013(),
            &bench.trace(),
            n,
            timing,
        ))
    }

    #[test]
    fn machine_runs_to_completion() {
        let m = model("gcc", 2_000);
        let mut uncore = Uncore::new(UncoreConfig::ispass2013(2, PolicyKind::Lru), 1);
        let mut machine = BadcoMachine::new(m, 0, 2_000);
        let mut steps = 0;
        while !machine.done() {
            machine.step(&mut uncore);
            steps += 1;
            assert!(steps < 1_000_000, "runaway machine");
        }
        assert!(machine.committed() >= 2_000);
        let ipc = 2_000.0 / machine.finish_cycle().unwrap() as f64;
        assert!(ipc > 0.01 && ipc < 4.0, "ipc={ipc}");
    }

    #[test]
    fn machine_time_is_monotonic() {
        let m = model("soplex", 1_500);
        let mut uncore = Uncore::new(UncoreConfig::ispass2013(2, PolicyKind::Lru), 1);
        let mut machine = BadcoMachine::new(m, 0, 1_500);
        let mut last = 0;
        for _ in 0..200 {
            let t = machine.step(&mut uncore);
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn restart_wraps_and_keeps_running() {
        let m = model("hmmer", 500);
        let nodes = m.nodes().len();
        let mut uncore = Uncore::new(UncoreConfig::ispass2013(2, PolicyKind::Lru), 1);
        // Target twice the model's µops: forces a restart.
        let mut machine = BadcoMachine::new(m, 0, 1_000);
        let mut steps = 0;
        while !machine.done() {
            machine.step(&mut uncore);
            steps += 1;
        }
        assert!(steps > nodes, "must have wrapped: {steps} vs {nodes}");
        assert!(machine.committed() >= 1_000);
    }
}

//! BADCO model construction from two detailed training runs.

use mps_sim_cpu::{record_run, CoreConfig, FixedLatencyBackend, RunRecording};
use mps_uncore::UncoreConfig;
use mps_workloads::{TraceSource, UopKind};

/// Timing assumptions of the two training runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BadcoTiming {
    /// Latency of the ideal run (every request hits the LLC).
    pub hit_latency: u64,
    /// Latency of the pessimal run (every request goes to DRAM).
    pub miss_latency: u64,
}

impl BadcoTiming {
    /// Derives the training latencies from an uncore configuration.
    pub fn from_uncore(cfg: &UncoreConfig) -> Self {
        BadcoTiming {
            hit_latency: cfg.llc_latency,
            miss_latency: cfg.llc_latency
                + cfg.memory.fsb_cycles_per_line
                + cfg.memory.dram_latency,
        }
    }
}

/// One uncore request a node re-issues when executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelRequest {
    /// Global request id within the model (issue order).
    pub id: u32,
    /// Core-local byte address.
    pub addr: u64,
    /// Store / writeback rather than load or instruction fetch.
    pub write: bool,
    /// Requests whose data this request's *address* depends on
    /// (pointer chasing); issue waits for them.
    pub addr_deps: Vec<u32>,
}

/// One node: a group of consecutive µops ending at a request-bearing µop.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelNode {
    /// Number of µops the node retires.
    pub uops: u32,
    /// Execution weight in cycles (from the ideal training run).
    pub weight: u64,
    /// Requests issued when the node executes.
    pub requests: Vec<ModelRequest>,
    /// Earlier requests whose completion this node consumes.
    pub deps: Vec<u32>,
    /// How much of the wait for `deps` the node actually exposes, in
    /// [0, 1]: calibrated from the pessimal training run. 0 means the
    /// out-of-order window fully hid the upstream misses; 1 means the node
    /// serialized on them.
    pub stall_factor: f64,
}

/// A behavioral core model for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BadcoModel {
    /// Benchmark name the model was trained on.
    pub name: String,
    nodes: Vec<ModelNode>,
    uops_total: u64,
    requests_total: u32,
}

/// Maximum taint/dependence fan-in tracked per register and node.
const MAX_DEPS: usize = 6;
/// Maximum outstanding read requests a BADCO machine keeps in flight
/// (mirrors the detailed core's L1 MSHR file): beyond this, issuing a new
/// request waits for the oldest to return — this is what makes
/// bandwidth-bound streams bandwidth-bound in the behavioral model too.
pub const MAX_OUTSTANDING: usize = 16;

impl BadcoModel {
    /// Builds a model for one benchmark.
    ///
    /// Runs the detailed core twice (ideal + pessimal backend) over the
    /// first `n` µops of `trace`, then derives nodes, weights, dataflow
    /// dependences and blocking flags. The trace is reset between uses.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn build<T: TraceSource + Clone + 'static>(
        name: &str,
        core_cfg: &CoreConfig,
        trace: &T,
        n: u64,
        timing: BadcoTiming,
    ) -> BadcoModel {
        assert!(n > 0, "model needs a non-empty trace slice");
        let _span = mps_obs::span("badco.model.build");
        mps_obs::counter("badco.model.builds").incr();
        mps_obs::counter("badco.model.training_uops").add(2 * n);
        let mut ideal = FixedLatencyBackend::new(timing.hit_latency);
        let (hit_rec, _) = record_run(core_cfg.clone(), Box::new(trace.clone()), n, &mut ideal);
        let mut pessimal = FixedLatencyBackend::new(timing.miss_latency);
        let (miss_rec, _) = record_run(core_cfg.clone(), Box::new(trace.clone()), n, &mut pessimal);
        let mut replay = trace.clone();
        Self::from_recordings(name, &mut replay, n, &hit_rec, &miss_rec, timing)
    }

    /// Assembles a model from existing training recordings (exposed for
    /// tests and for callers that cache recordings).
    pub fn from_recordings(
        name: &str,
        trace: &mut dyn TraceSource,
        n: u64,
        hit_rec: &RunRecording,
        miss_rec: &RunRecording,
        timing: BadcoTiming,
    ) -> BadcoModel {
        assert_eq!(hit_rec.len(), n as usize, "hit recording length mismatch");
        assert_eq!(miss_rec.len(), n as usize, "miss recording length mismatch");

        // Requests in µop order (they are recorded in issue order, which
        // is out of order).
        let mut reqs: Vec<(u64, u64, bool)> = hit_rec
            .requests
            .iter()
            .map(|r| (r.uop_index, r.addr, r.write))
            .collect();
        reqs.sort_by_key(|&(u, a, w)| (u, a, w));

        // Walk the trace computing register taint (which request's data
        // flows into each register) and assign requests/deps to µops.
        trace.reset();
        let mut reg_taint: Vec<Vec<u32>> = vec![Vec::new(); mps_workloads::uop::NUM_REGS];
        let mut req_cursor = 0usize;
        let mut next_req_id: u32 = 0;

        // Per-µop: the requests it issues and the earlier requests it reads.
        struct UopInfo {
            requests: Vec<ModelRequest>,
            reads: Vec<u32>,
        }
        let mut uop_infos: Vec<UopInfo> = Vec::with_capacity(n as usize);

        for i in 0..n {
            let uop = trace.next_uop();
            let mut src_taints: Vec<u32> = Vec::new();
            for src in uop.srcs.iter().flatten() {
                for &t in &reg_taint[*src as usize] {
                    if !src_taints.contains(&t) {
                        src_taints.push(t);
                    }
                }
            }
            truncate_recent(&mut src_taints);

            let mut requests = Vec::new();
            let mut produced: Option<u32> = None;
            while req_cursor < reqs.len() && reqs[req_cursor].0 == i {
                let (_, addr, write) = reqs[req_cursor];
                let id = next_req_id;
                next_req_id += 1;
                requests.push(ModelRequest {
                    id,
                    addr,
                    write,
                    addr_deps: if write {
                        Vec::new()
                    } else {
                        src_taints.clone()
                    },
                });
                if !write && uop.kind == UopKind::Load {
                    produced = Some(id);
                }
                req_cursor += 1;
            }

            // Propagate taint through the destination register.
            if let Some(dst) = uop.dst {
                let slot = &mut reg_taint[dst as usize];
                slot.clear();
                match produced {
                    Some(id) => slot.push(id),
                    None => {
                        slot.extend(src_taints.iter().copied());
                        truncate_recent(slot);
                    }
                }
            }

            uop_infos.push(UopInfo {
                requests,
                reads: src_taints,
            });
        }
        trace.reset();

        // Cut nodes at request-bearing µops; compute weights from the
        // ideal run and blocking flags from the pessimal run.
        let mut nodes: Vec<ModelNode> = Vec::new();
        let mut node_start_uop: usize = 0;
        let mut pending_reads: Vec<u32> = Vec::new();
        let mut raw_nodes = Vec::new();
        for (i, info) in uop_infos.iter_mut().enumerate() {
            for &r in &info.reads {
                if !pending_reads.contains(&r) {
                    pending_reads.push(r);
                }
            }
            if !info.requests.is_empty() || i == n as usize - 1 {
                let requests = std::mem::take(&mut info.requests);
                // Node covering µops [node_start_uop, i].
                let first = node_start_uop;
                let prev_commit_hit = if first == 0 {
                    0
                } else {
                    hit_rec.commit_cycles[first - 1]
                };
                let prev_commit_miss = if first == 0 {
                    0
                } else {
                    miss_rec.commit_cycles[first - 1]
                };
                let weight = hit_rec.commit_cycles[i].saturating_sub(prev_commit_hit);
                let delta_miss = miss_rec.commit_cycles[i].saturating_sub(prev_commit_miss);
                let mut deps = std::mem::take(&mut pending_reads);
                // Own requests are not dependencies.
                deps.retain(|d| !requests.iter().any(|r| r.id == *d));
                deps.sort_unstable();
                deps.dedup();
                truncate_recent(&mut deps);
                raw_nodes.push((first, i, weight, delta_miss, deps, requests));
                node_start_uop = i + 1;
            }
        }

        let extra_per_miss = (timing.miss_latency - timing.hit_latency) as f64;
        for (first, upto, weight, delta_miss, deps, requests) in raw_nodes {
            let uops = (upto - first + 1) as u32;
            // How much extra time did the node take in the pessimal run
            // relative to the ideal one? Scaling by the injected latency
            // difference gives the fraction of one full-miss wait the node
            // actually exposed — the OoO window hides the rest.
            let observed_extra = delta_miss.saturating_sub(weight) as f64;
            let stall_factor = if deps.is_empty() {
                0.0
            } else {
                (observed_extra / extra_per_miss).clamp(0.0, 1.0)
            };
            nodes.push(ModelNode {
                uops,
                weight,
                requests,
                deps,
                stall_factor,
            });
        }

        BadcoModel {
            name: name.to_owned(),
            nodes,
            uops_total: n,
            requests_total: next_req_id,
        }
    }

    /// Reassembles a model from previously trained parts — the
    /// artifact-store deserialization path (`mps-harness` persists trained
    /// models across processes). The parts must come from
    /// [`BadcoModel::nodes`], [`BadcoModel::uops_total`] and
    /// [`BadcoModel::requests_total`] of a model built by
    /// [`BadcoModel::build`]; no re-validation is performed beyond cheap
    /// structural checks.
    ///
    /// # Panics
    ///
    /// Panics if the node list is empty or the µop counts disagree.
    pub fn from_parts(
        name: &str,
        nodes: Vec<ModelNode>,
        uops_total: u64,
        requests_total: u32,
    ) -> BadcoModel {
        assert!(!nodes.is_empty(), "a model needs at least one node");
        let node_uops: u64 = nodes.iter().map(|n| u64::from(n.uops)).sum();
        assert_eq!(node_uops, uops_total, "node µops must sum to the total");
        BadcoModel {
            name: name.to_owned(),
            nodes,
            uops_total,
            requests_total,
        }
    }

    /// A copy with every trained coefficient scaled by `factor`: node
    /// weights (rounded) and stall-exposure factors (clamped back to
    /// `[0, 1]`). `factor == 1.0` is the identity.
    ///
    /// This is a **validation-only** hook: `mps-harness validate
    /// --perturb` and the differential tests use it to prove the
    /// error-bound gate notices coefficient drift (see
    /// `docs/validation.md`). It must never feed a model used for
    /// results.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn perturbed(&self, factor: f64) -> BadcoModel {
        assert!(
            factor.is_finite() && factor > 0.0,
            "perturbation factor must be finite and positive: {factor}"
        );
        let nodes = self
            .nodes
            .iter()
            .map(|n| ModelNode {
                weight: ((n.weight as f64) * factor).round() as u64,
                stall_factor: (n.stall_factor * factor).clamp(0.0, 1.0),
                ..n.clone()
            })
            .collect();
        BadcoModel::from_parts(&self.name, nodes, self.uops_total, self.requests_total)
    }

    /// The model's nodes, in program order.
    pub fn nodes(&self) -> &[ModelNode] {
        &self.nodes
    }

    /// µops covered by one pass over the model (the trace slice length).
    pub fn uops_total(&self) -> u64 {
        self.uops_total
    }

    /// Total requests issued per pass.
    pub fn requests_total(&self) -> u32 {
        self.requests_total
    }

    /// Sum of node weights: the model's ideal-uncore execution time.
    pub fn ideal_cycles(&self) -> u64 {
        self.nodes.iter().map(|n| n.weight).sum()
    }
}

fn truncate_recent(v: &mut Vec<u32>) {
    if v.len() > MAX_DEPS {
        let excess = v.len() - MAX_DEPS;
        v.drain(..excess);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_uncore::PolicyKind;
    use mps_workloads::{benchmark_by_name, AccessPattern, SynthParams, SyntheticTrace};

    fn timing() -> BadcoTiming {
        BadcoTiming::from_uncore(&UncoreConfig::ispass2013(2, PolicyKind::Lru))
    }

    #[test]
    fn timing_from_uncore() {
        let t = timing();
        assert_eq!(t.hit_latency, 5);
        assert_eq!(t.miss_latency, 5 + 30 + 200);
    }

    #[test]
    fn model_accounts_for_every_uop() {
        let trace = benchmark_by_name("gcc").unwrap().trace();
        let m = BadcoModel::build("gcc", &CoreConfig::ispass2013(), &trace, 3_000, timing());
        let uops: u64 = m.nodes().iter().map(|n| u64::from(n.uops)).sum();
        assert_eq!(uops, 3_000);
        assert_eq!(m.uops_total(), 3_000);
        assert!(m.ideal_cycles() > 0);
    }

    #[test]
    fn request_ids_are_dense_and_ordered() {
        let trace = benchmark_by_name("soplex").unwrap().trace();
        let m = BadcoModel::build("soplex", &CoreConfig::ispass2013(), &trace, 2_000, timing());
        let mut expected = 0u32;
        for node in m.nodes() {
            for r in &node.requests {
                assert_eq!(r.id, expected);
                expected += 1;
            }
        }
        assert_eq!(expected, m.requests_total());
        assert!(expected > 0, "a High benchmark must issue requests");
    }

    #[test]
    fn deps_point_backwards_only() {
        let trace = benchmark_by_name("mcf").unwrap().trace();
        let m = BadcoModel::build("mcf", &CoreConfig::ispass2013(), &trace, 2_000, timing());
        let mut issued = 0u32;
        for node in m.nodes() {
            for &d in &node.deps {
                assert!(d < issued, "dep {d} not yet issued at node boundary");
            }
            for r in &node.requests {
                for &d in &r.addr_deps {
                    assert!(d < r.id);
                }
            }
            issued += node.requests.len() as u32;
        }
    }

    #[test]
    fn compute_bound_benchmark_has_few_nodes() {
        // Long enough that the steady-state rate dominates the cold start.
        let hot = benchmark_by_name("hmmer").unwrap();
        let low = BadcoModel::build(
            "hmmer",
            &CoreConfig::ispass2013(),
            &hot.trace(),
            20_000,
            timing(),
        );
        let stream = benchmark_by_name("libquantum").unwrap();
        let high = BadcoModel::build(
            "libquantum",
            &CoreConfig::ispass2013(),
            &stream.trace(),
            20_000,
            timing(),
        );
        assert!(
            low.nodes().len() * 2 < high.nodes().len(),
            "hmmer {} nodes vs libquantum {}",
            low.nodes().len(),
            high.nodes().len()
        );
    }

    #[test]
    fn pointer_chase_requests_carry_address_deps() {
        let params = SynthParams {
            pattern: AccessPattern::PointerChase,
            load_frac: 0.3,
            hot_fraction: 0.0,
            hot_bytes: 0,
            footprint: 8 << 20,
            store_frac: 0.0,
            branch_frac: 0.0,
            longlat_frac: 0.0,
            ..SynthParams::default()
        };
        let trace = SyntheticTrace::new(params);
        let m = BadcoModel::build("chase", &CoreConfig::ispass2013(), &trace, 3_000, timing());
        let with_deps = m
            .nodes()
            .iter()
            .flat_map(|n| &n.requests)
            .filter(|r| !r.addr_deps.is_empty())
            .count();
        assert!(
            with_deps > 10,
            "chase loads depend on one another: {with_deps}"
        );
        // And the chain should make many nodes expose most of their wait.
        let blocking = m.nodes().iter().filter(|n| n.stall_factor > 0.5).count();
        assert!(blocking > m.nodes().len() / 4, "blocking nodes: {blocking}");
    }

    #[test]
    fn streaming_benchmark_overlaps_misses() {
        // Independent sequential loads: the OoO window hides most misses,
        // so few nodes should be blocking.
        let params = SynthParams {
            pattern: AccessPattern::Sequential { stride: 64 },
            load_frac: 0.3,
            hot_fraction: 0.0,
            hot_bytes: 0,
            footprint: 8 << 20,
            store_frac: 0.0,
            branch_frac: 0.0,
            longlat_frac: 0.0,
            dep_chain: 0.0,
            ..SynthParams::default()
        };
        let trace = SyntheticTrace::new(params);
        let m = BadcoModel::build("stream", &CoreConfig::ispass2013(), &trace, 3_000, timing());
        let mean_stall: f64 =
            m.nodes().iter().map(|n| n.stall_factor).sum::<f64>() / m.nodes().len() as f64;
        assert!(
            mean_stall < 0.5,
            "stream should be mostly non-blocking: mean stall {mean_stall}"
        );
    }

    #[test]
    fn perturbed_identity_and_scaling() {
        let trace = benchmark_by_name("mcf").unwrap().trace();
        let m = BadcoModel::build("mcf", &CoreConfig::ispass2013(), &trace, 2_000, timing());
        assert_eq!(m.perturbed(1.0), m, "factor 1.0 must be the identity");
        let half = m.perturbed(0.5);
        assert_eq!(half.uops_total(), m.uops_total());
        assert_eq!(half.requests_total(), m.requests_total());
        assert!(half.ideal_cycles() < m.ideal_cycles());
        for (a, b) in half.nodes().iter().zip(m.nodes()) {
            assert!((0.0..=1.0).contains(&a.stall_factor));
            assert!(a.weight <= b.weight, "halved weights cannot grow");
            assert_eq!(a.requests, b.requests, "only coefficients change");
            assert_eq!(a.deps, b.deps);
        }
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn perturbed_rejects_nonpositive_factor() {
        let trace = benchmark_by_name("gcc").unwrap().trace();
        let m = BadcoModel::build("gcc", &CoreConfig::ispass2013(), &trace, 500, timing());
        let _ = m.perturbed(0.0);
    }

    #[test]
    fn model_build_is_deterministic() {
        let bench = benchmark_by_name("astar").unwrap();
        let t1 = bench.trace();
        let a = BadcoModel::build("astar", &CoreConfig::ispass2013(), &t1, 1_500, timing());
        let t2 = bench.trace();
        let b = BadcoModel::build("astar", &CoreConfig::ispass2013(), &t2, 1_500, timing());
        assert_eq!(a, b);
    }
}

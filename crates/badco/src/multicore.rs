//! Multiprogram BADCO simulation.
//!
//! One BADCO machine per core, all plugged into the shared
//! [`mps_uncore::Uncore`]. Machines are advanced in *time order* with
//! round-robin tie-breaking on the core index — the event-driven
//! equivalent of the paper's "round robin arbitration to decide which
//! BADCO machine can access the uncore". The measurement protocol matches
//! the detailed simulator: every thread runs (with restarts) until all
//! threads have committed their first `N` µops, and IPC is taken over the
//! first `N`.

use crate::machine::BadcoMachine;
use crate::model::BadcoModel;
use mps_uncore::{Uncore, UncoreStats};
use std::sync::Arc;
use std::time::Instant;

/// Outcome of a multicore BADCO run.
#[derive(Debug, Clone)]
pub struct BadcoSimResult {
    /// Per-core IPC over each thread's first `N` µops.
    pub ipc: Vec<f64>,
    /// Per-core finish cycle of the measured slice.
    pub finish_cycles: Vec<u64>,
    /// Cycle at which the last thread finished.
    pub total_cycles: u64,
    /// µops committed across cores, including restarts.
    pub instructions: u64,
    /// Aggregate uncore statistics.
    pub uncore_stats: UncoreStats,
    /// Per-core LLC demand misses.
    pub llc_misses_per_core: Vec<u64>,
    /// Wall-clock seconds of simulation.
    pub wall_seconds: f64,
}

impl BadcoSimResult {
    /// Simulation speed in million instructions per second (Table III).
    pub fn mips(&self) -> f64 {
        self.instructions as f64 / self.wall_seconds / 1e6
    }

    /// Per-core CPI.
    pub fn cpi(&self) -> Vec<f64> {
        self.ipc.iter().map(|&x| 1.0 / x).collect()
    }
}

/// K BADCO machines on the shared uncore.
pub struct BadcoMulticoreSim {
    uncore: Uncore,
    machines: Vec<BadcoMachine>,
}

impl std::fmt::Debug for BadcoMulticoreSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BadcoMulticoreSim")
            .field("cores", &self.machines.len())
            .finish_non_exhaustive()
    }
}

impl BadcoMulticoreSim {
    /// Binds one model per core. Each thread's measurement target is its
    /// model's full µop count.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty or its length differs from the
    /// uncore's core count.
    pub fn new(uncore: Uncore, models: Vec<Arc<BadcoModel>>) -> Self {
        assert!(!models.is_empty(), "need at least one core");
        assert_eq!(
            models.len(),
            uncore.cores(),
            "one model per uncore port required"
        );
        let machines = models
            .into_iter()
            .enumerate()
            .map(|(core, m)| {
                let target = m.uops_total();
                BadcoMachine::new(m, core, target)
            })
            .collect();
        BadcoMulticoreSim { uncore, machines }
    }

    /// Runs the workload to completion.
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds a generous step guard (deadlock).
    pub fn run(mut self) -> BadcoSimResult {
        let span = mps_obs::span("sim.badco.run");
        let steps_counter = mps_obs::counter("sim.badco.machine_steps");
        let start = Instant::now();
        let uncore_before = self.uncore.stats();
        let k = self.machines.len();
        let guard: u64 = self
            .machines
            .iter()
            .map(|m| m.committed().max(1))
            .sum::<u64>()
            .saturating_mul(1)
            .max(1_000_000_000);
        let mut steps: u64 = 0;
        // Advance the earliest machine first; ties resolve round-robin by
        // core index (the arbitration rule).
        while !self.machines.iter().all(BadcoMachine::done) {
            let next = self
                .machines
                .iter()
                .enumerate()
                .filter(|(_, m)| !m.done())
                .min_by_key(|(c, m)| (m.next_event_time(), *c))
                .map(|(c, _)| c)
                .expect("at least one unfinished machine");
            self.machines[next].step(&mut self.uncore);
            steps_counter.incr();
            steps += 1;
            assert!(steps < guard, "BADCO simulation deadlocked");
        }
        let finish_cycles: Vec<u64> = self
            .machines
            .iter()
            .map(|m| m.finish_cycle().expect("all machines done"))
            .collect();
        let ipc: Vec<f64> = self
            .machines
            .iter()
            .zip(&finish_cycles)
            .map(|(m, &f)| {
                let n = m.committed().min(m_target(m));
                n as f64 / f.max(1) as f64
            })
            .collect();
        let instructions: u64 = self.machines.iter().map(BadcoMachine::committed).sum();
        flush_obs(instructions, &uncore_before, &self.uncore.stats());
        span.finish();
        BadcoSimResult {
            ipc,
            total_cycles: finish_cycles.iter().copied().max().unwrap_or(0),
            finish_cycles,
            instructions,
            uncore_stats: self.uncore.stats(),
            llc_misses_per_core: (0..k).map(|c| self.uncore.core_misses(c)).collect(),
            wall_seconds: start.elapsed().as_secs_f64().max(1e-9),
        }
    }
}

/// Flushes one finished BADCO run into the process-global `sim.badco.*`
/// observability counters. The uncore may be handed in pre-warmed, so
/// cache figures are deltas over this run, not the uncore's lifetime.
fn flush_obs(instructions: u64, before: &UncoreStats, after: &UncoreStats) {
    mps_obs::counter("sim.badco.runs").incr();
    mps_obs::counter("sim.badco.instructions").add(instructions);
    mps_obs::counter("sim.badco.cache_accesses").add(after.requests - before.requests);
    mps_obs::counter("sim.badco.cache_misses").add(after.llc_misses - before.llc_misses);
}

/// The measurement target of a machine (its model's µop count).
fn m_target(m: &BadcoMachine) -> u64 {
    // committed ≥ target when done; the target equals the model length by
    // construction in `new`, so derive it back from the finish condition.
    // (Kept as a helper so the IPC expression stays readable.)
    m.target()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BadcoModel, BadcoTiming};
    use mps_sim_cpu::CoreConfig;
    use mps_uncore::{PolicyKind, UncoreConfig};
    use mps_workloads::benchmark_by_name;

    fn model(name: &str, n: u64, cores: usize) -> Arc<BadcoModel> {
        let bench = benchmark_by_name(name).unwrap();
        let timing = BadcoTiming::from_uncore(&UncoreConfig::ispass2013(cores, PolicyKind::Lru));
        Arc::new(BadcoModel::build(
            name,
            &CoreConfig::ispass2013(),
            &bench.trace(),
            n,
            timing,
        ))
    }

    fn run_two(policy: PolicyKind, a: &str, b: &str, n: u64) -> BadcoSimResult {
        let uncore = Uncore::new(UncoreConfig::ispass2013(2, policy), 2);
        BadcoMulticoreSim::new(uncore, vec![model(a, n, 2), model(b, n, 2)]).run()
    }

    #[test]
    fn two_core_run_completes_with_sane_ipcs() {
        let r = run_two(PolicyKind::Lru, "gcc", "soplex", 2_000);
        assert_eq!(r.ipc.len(), 2);
        for &ipc in &r.ipc {
            assert!(ipc > 0.005 && ipc < 4.0, "ipc={ipc}");
        }
        assert!(r.instructions >= 4_000);
        assert!(r.mips() > 0.0);
    }

    #[test]
    fn deterministic_replay() {
        let a = run_two(PolicyKind::Drrip, "bzip2", "mcf", 1_500);
        let b = run_two(PolicyKind::Drrip, "bzip2", "mcf", 1_500);
        assert_eq!(a.finish_cycles, b.finish_cycles);
    }

    #[test]
    fn contention_hurts_compared_to_solo() {
        let n = 2_000;
        let solo = {
            let uncore = Uncore::new(UncoreConfig::ispass2013(2, PolicyKind::Lru), 1);
            BadcoMulticoreSim::new(uncore, vec![model("omnetpp", n, 2)]).run()
        };
        let duo = run_two(PolicyKind::Lru, "omnetpp", "libquantum", n);
        assert!(
            duo.ipc[0] <= solo.ipc[0] * 1.02,
            "sharing cannot help omnetpp: {} vs {}",
            duo.ipc[0],
            solo.ipc[0]
        );
    }

    #[test]
    fn policies_produce_different_timings() {
        // A short slice only touches ~1700 distinct lines; shrink the LLC
        // so those lines genuinely compete for capacity.
        let run = |policy| {
            let cfg = UncoreConfig {
                llc_size: 64 << 10,
                ..UncoreConfig::ispass2013(2, policy)
            };
            let uncore = Uncore::new(cfg, 2);
            BadcoMulticoreSim::new(
                uncore,
                vec![model("omnetpp", 3_000, 2), model("soplex", 3_000, 2)],
            )
            .run()
        };
        let lru = run(PolicyKind::Lru);
        let rnd = run(PolicyKind::Random);
        assert_ne!(lru.finish_cycles, rnd.finish_cycles);
    }
}

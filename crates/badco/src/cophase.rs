//! Co-phase matrix simulation (the paper's footnote 4).
//!
//! "More rigorous multiprogram simulation methods could be used, such as
//! the co-phase matrix method [Van Biesbrouck, Eeckhout & Calder]. The
//! problem of defining representative benchmark combinations is orthogonal
//! and concerns the co-phase matrix method as well."
//!
//! This module implements that orthogonal method for two-thread workloads
//! over phased benchmarks: simulate each *pair of phases* once (with BADCO
//! machines on the shared uncore) to obtain steady per-core IPC rates, then
//! replay the phase schedules analytically — advancing both threads at
//! their co-phase rates and switching rates at every phase boundary —
//! to estimate whole-run IPCs without simulating the whole run.

use crate::model::BadcoModel;
use crate::multicore::BadcoMulticoreSim;
use mps_uncore::{Uncore, UncoreConfig};
use std::sync::Arc;

/// Steady per-core IPC rates for every pair of phases of two benchmarks.
#[derive(Debug, Clone, PartialEq)]
pub struct CoPhaseMatrix {
    /// `rates[i][j] = (ipc_a, ipc_b)` when thread A is in phase `i` and
    /// thread B in phase `j`.
    rates: Vec<Vec<(f64, f64)>>,
}

impl CoPhaseMatrix {
    /// Builds the matrix by running one BADCO co-simulation per phase pair.
    ///
    /// `phases_a[i]` / `phases_b[j]` are BADCO models trained on the
    /// respective single phases.
    ///
    /// # Panics
    ///
    /// Panics if either phase list is empty.
    pub fn build(
        phases_a: &[Arc<BadcoModel>],
        phases_b: &[Arc<BadcoModel>],
        uncore_cfg: &UncoreConfig,
    ) -> CoPhaseMatrix {
        assert!(
            !phases_a.is_empty() && !phases_b.is_empty(),
            "both benchmarks need at least one phase"
        );
        let rates = phases_a
            .iter()
            .map(|pa| {
                phases_b
                    .iter()
                    .map(|pb| {
                        let uncore = Uncore::new(uncore_cfg.clone(), 2);
                        let r =
                            BadcoMulticoreSim::new(uncore, vec![Arc::clone(pa), Arc::clone(pb)])
                                .run();
                        (r.ipc[0], r.ipc[1])
                    })
                    .collect()
            })
            .collect();
        CoPhaseMatrix { rates }
    }

    /// The co-phase IPC rates for phase pair `(i, j)`.
    pub fn rates(&self, i: usize, j: usize) -> (f64, f64) {
        self.rates[i][j]
    }

    /// Number of phases of thread A / thread B.
    pub fn shape(&self) -> (usize, usize) {
        (self.rates.len(), self.rates[0].len())
    }

    /// Estimates both threads' IPC over their first `target` µops by
    /// walking the phase schedules analytically (phase lengths in µops,
    /// cycled). Implements the thread-restart rule: each thread keeps
    /// running (its schedule keeps cycling) until *both* have committed
    /// `target` µops.
    ///
    /// # Panics
    ///
    /// Panics if a schedule is empty, a length is zero, or `target` is 0.
    pub fn estimate(&self, schedule_a: &[u64], schedule_b: &[u64], target: u64) -> (f64, f64) {
        assert!(target > 0, "need a positive target");
        assert_eq!(
            schedule_a.len(),
            self.rates.len(),
            "schedule A must match the matrix"
        );
        assert_eq!(
            schedule_b.len(),
            self.rates[0].len(),
            "schedule B must match the matrix"
        );
        assert!(
            schedule_a.iter().chain(schedule_b).all(|&l| l > 0),
            "phase lengths must be positive"
        );

        let mut phase = (0usize, 0usize);
        let mut rem = (schedule_a[0] as f64, schedule_b[0] as f64);
        let mut committed = (0.0f64, 0.0f64);
        let mut finish: (Option<f64>, Option<f64>) = (None, None);
        let mut time = 0.0f64;
        let tf = target as f64;
        // Bounded walk: each iteration crosses at least one phase boundary.
        for _ in 0..10_000_000u64 {
            let (ra, rb) = self.rates[phase.0][phase.1];
            assert!(ra > 0.0 && rb > 0.0, "co-phase rates must be positive");
            // Cycles until each thread's next event (phase end or target).
            let mut dt = (rem.0 / ra).min(rem.1 / rb);
            if finish.0.is_none() {
                dt = dt.min((tf - committed.0) / ra);
            }
            if finish.1.is_none() {
                dt = dt.min((tf - committed.1) / rb);
            }
            let dt = dt.max(1e-9);
            time += dt;
            committed.0 += ra * dt;
            committed.1 += rb * dt;
            rem.0 -= ra * dt;
            rem.1 -= rb * dt;
            if finish.0.is_none() && committed.0 >= tf - 1e-6 {
                finish.0 = Some(time);
            }
            if finish.1.is_none() && committed.1 >= tf - 1e-6 {
                finish.1 = Some(time);
            }
            if let (Some(fa), Some(fb)) = finish {
                return (tf / fa, tf / fb);
            }
            if rem.0 <= 1e-6 {
                phase.0 = (phase.0 + 1) % schedule_a.len();
                rem.0 = schedule_a[phase.0] as f64;
            }
            if rem.1 <= 1e-6 {
                phase.1 = (phase.1 + 1) % schedule_b.len();
                rem.1 = schedule_b[phase.1] as f64;
            }
        }
        panic!("co-phase walk failed to converge");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BadcoTiming;
    use mps_sim_cpu::CoreConfig;
    use mps_uncore::PolicyKind;
    use mps_workloads::{PhasedTrace, SynthParams, SyntheticTrace};

    fn uncore_cfg() -> UncoreConfig {
        UncoreConfig::ispass2013_scaled(2, PolicyKind::Lru, 16)
    }

    fn phase_trace(load: f64, footprint: u64, seed: u64) -> SyntheticTrace {
        SyntheticTrace::new(SynthParams {
            load_frac: load,
            store_frac: 0.05,
            branch_frac: 0.1,
            longlat_frac: 0.0,
            hot_fraction: 0.3,
            hot_bytes: 4 << 10,
            warm_fraction: 0.3,
            warm_bytes: 16 << 10,
            footprint,
            pattern: mps_workloads::AccessPattern::Sequential { stride: 8 },
            seed,
            ..SynthParams::default()
        })
    }

    fn model_of(t: &SyntheticTrace, n: u64) -> Arc<BadcoModel> {
        let timing = BadcoTiming::from_uncore(&uncore_cfg());
        Arc::new(BadcoModel::build(
            "phase",
            &CoreConfig::ispass2013(),
            t,
            n,
            timing,
        ))
    }

    #[test]
    fn synthetic_two_rate_estimate_is_exact() {
        // A hand-built matrix: one phase per thread — estimate must equal
        // the single co-phase rate.
        let m = CoPhaseMatrix {
            rates: vec![vec![(2.0, 1.0)]],
        };
        let (a, b) = m.estimate(&[1_000], &[1_000], 10_000);
        assert!((a - 2.0).abs() < 1e-6);
        assert!((b - 1.0).abs() < 1e-6);
    }

    #[test]
    fn alternating_phases_average_correctly() {
        // Thread A alternates phases that run at 2.0 and 1.0 IPC (with B
        // fixed): over equal-length phases, the *time*-weighted IPC is the
        // harmonic mean of the rates per committed µop.
        let m = CoPhaseMatrix {
            rates: vec![vec![(2.0, 1.0)], vec![(1.0, 1.0)]],
        };
        let (a, b) = m.estimate(&[600, 600], &[100_000_000], 1_200_000);
        // A commits equal µops in each phase: IPC = 2/(1/2 + 1/1) = 4/3.
        assert!((a - 4.0 / 3.0).abs() < 0.01, "a = {a}");
        assert!((b - 1.0).abs() < 0.01, "b = {b}");
    }

    #[test]
    fn cophase_estimate_tracks_direct_badco_simulation() {
        // Two 2-phase benchmarks: compare the co-phase estimate against a
        // direct BADCO co-simulation of the phased traces.
        let n_phase = 1_500u64;
        let a0 = phase_trace(0.10, 1 << 20, 0x10);
        let a1 = phase_trace(0.40, 8 << 20, 0x11);
        let b0 = phase_trace(0.35, 8 << 20, 0x12);
        let b1 = phase_trace(0.05, 1 << 20, 0x13);

        let matrix = CoPhaseMatrix::build(
            &[model_of(&a0, n_phase), model_of(&a1, n_phase)],
            &[model_of(&b0, n_phase), model_of(&b1, n_phase)],
            &uncore_cfg(),
        );
        assert_eq!(matrix.shape(), (2, 2));
        let target = 4 * n_phase;
        let (est_a, est_b) = matrix.estimate(&[n_phase, n_phase], &[n_phase, n_phase], target);

        // Direct simulation of the same phased workloads.
        let pa = PhasedTrace::new(vec![(a0, n_phase), (a1, n_phase)]);
        let pb = PhasedTrace::new(vec![(b0, n_phase), (b1, n_phase)]);
        let timing = BadcoTiming::from_uncore(&uncore_cfg());
        let ma = Arc::new(BadcoModel::build(
            "a",
            &CoreConfig::ispass2013(),
            &pa,
            target,
            timing,
        ));
        let mb = Arc::new(BadcoModel::build(
            "b",
            &CoreConfig::ispass2013(),
            &pb,
            target,
            timing,
        ));
        let direct = BadcoMulticoreSim::new(Uncore::new(uncore_cfg(), 2), vec![ma, mb]).run();

        for (est, dir, name) in [(est_a, direct.ipc[0], "A"), (est_b, direct.ipc[1], "B")] {
            let err = (est - dir).abs() / dir;
            assert!(
                err < 0.30,
                "thread {name}: co-phase {est:.3} vs direct {dir:.3} ({:.0}% off)",
                err * 100.0
            );
        }
    }

    #[test]
    #[should_panic(expected = "schedule A must match")]
    fn schedule_shape_mismatch_panics() {
        let m = CoPhaseMatrix {
            rates: vec![vec![(1.0, 1.0)]],
        };
        m.estimate(&[10, 10], &[10], 100);
    }

    #[test]
    #[should_panic(expected = "positive target")]
    fn zero_target_panics() {
        let m = CoPhaseMatrix {
            rates: vec![vec![(1.0, 1.0)]],
        };
        m.estimate(&[10], &[10], 0);
    }
}

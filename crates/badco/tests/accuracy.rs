//! BADCO accuracy integration tests: the properties the paper's Section
//! IV-B establishes for its approximate simulator, checked end-to-end.

use mps_badco::{BadcoModel, BadcoMulticoreSim, BadcoTiming};
use mps_sim_cpu::{CoreConfig, MulticoreSim};
use mps_uncore::{PolicyKind, Uncore, UncoreConfig};
use mps_workloads::{suite, BenchmarkSpec, TraceSource};
use std::sync::Arc;

const N: u64 = 4_000;

fn cfg(policy: PolicyKind) -> UncoreConfig {
    UncoreConfig::ispass2013_scaled(2, policy, 16)
}

fn badco_solo_cpi(b: &BenchmarkSpec, policy: PolicyKind) -> f64 {
    let timing = BadcoTiming::from_uncore(&cfg(PolicyKind::Lru));
    let m = Arc::new(BadcoModel::build(
        b.name(),
        &CoreConfig::ispass2013(),
        &b.trace(),
        N,
        timing,
    ));
    let r = BadcoMulticoreSim::new(Uncore::new(cfg(policy), 1), vec![m]).run();
    1.0 / r.ipc[0]
}

fn detailed_solo_cpi(b: &BenchmarkSpec, policy: PolicyKind) -> f64 {
    let traces: Vec<Box<dyn TraceSource>> = vec![Box::new(b.trace())];
    let r = MulticoreSim::new(
        CoreConfig::ispass2013(),
        Uncore::new(cfg(policy), 1),
        traces,
    )
    .run(N);
    1.0 / r.ipc[0]
}

#[test]
fn solo_cpi_errors_are_bounded_across_the_suite() {
    // A representative slice of the suite: one per class plus extremes.
    let names = ["hmmer", "povray", "gcc", "astar", "libquantum", "mcf"];
    let mut errors = Vec::new();
    for name in names {
        let b = suite().into_iter().find(|b| b.name() == name).unwrap();
        let det = detailed_solo_cpi(&b, PolicyKind::Lru);
        let bad = badco_solo_cpi(&b, PolicyKind::Lru);
        let err = (bad - det).abs() / det;
        errors.push((name, det, bad, err));
    }
    let mean: f64 = errors.iter().map(|e| e.3).sum::<f64>() / errors.len() as f64;
    // The paper reports a few percent; our coarser model stays within a
    // generous but meaningful bound — and must never be wildly off.
    assert!(mean < 0.30, "mean CPI error {mean:.2}: {errors:?}");
    for (name, det, bad, err) in &errors {
        assert!(
            *err < 0.75,
            "{name}: detailed {det:.3} vs badco {bad:.3} ({err:.2})"
        );
    }
}

#[test]
fn cpi_ordering_across_benchmarks_is_preserved() {
    // BADCO must rank a compute-bound benchmark faster than a
    // latency-bound one, like the detailed simulator does.
    let hmmer = suite().into_iter().find(|b| b.name() == "hmmer").unwrap();
    let mcf = suite().into_iter().find(|b| b.name() == "mcf").unwrap();
    let det_ratio =
        detailed_solo_cpi(&mcf, PolicyKind::Lru) / detailed_solo_cpi(&hmmer, PolicyKind::Lru);
    let bad_ratio = badco_solo_cpi(&mcf, PolicyKind::Lru) / badco_solo_cpi(&hmmer, PolicyKind::Lru);
    assert!(det_ratio > 3.0, "detailed: mcf/hmmer = {det_ratio:.1}");
    assert!(bad_ratio > 3.0, "badco: mcf/hmmer = {bad_ratio:.1}");
}

#[test]
fn speedups_are_predicted_better_than_raw_cpis() {
    // The paper's Section IV-B: "BADCO is notably better at predicting
    // speedups than raw CPIs". Check on a policy pair with real effect:
    // per-benchmark relative speedup LRU→RND, badco vs detailed.
    let names = ["gcc", "soplex", "omnetpp", "astar"];
    let mut cpi_errs = Vec::new();
    let mut spd_errs = Vec::new();
    for name in names {
        let b = suite().into_iter().find(|b| b.name() == name).unwrap();
        let det_lru = detailed_solo_cpi(&b, PolicyKind::Lru);
        let det_rnd = detailed_solo_cpi(&b, PolicyKind::Random);
        let bad_lru = badco_solo_cpi(&b, PolicyKind::Lru);
        let bad_rnd = badco_solo_cpi(&b, PolicyKind::Random);
        cpi_errs.push((bad_lru - det_lru).abs() / det_lru);
        let det_speedup = det_rnd / det_lru;
        let bad_speedup = bad_rnd / bad_lru;
        spd_errs.push((bad_speedup - det_speedup).abs() / det_speedup);
    }
    let mean_cpi = cpi_errs.iter().sum::<f64>() / cpi_errs.len() as f64;
    let mean_spd = spd_errs.iter().sum::<f64>() / spd_errs.len() as f64;
    assert!(
        mean_spd < mean_cpi + 0.02,
        "speedup error {mean_spd:.3} should not exceed CPI error {mean_cpi:.3}"
    );
    assert!(mean_spd < 0.15, "speedup error {mean_spd:.3}");
}

#[test]
fn badco_differentiates_policies_in_the_same_direction_as_detailed() {
    // Aggregate over several two-benchmark workloads under capacity
    // pressure: when the detailed simulator sees a clear LRU-vs-RND gap,
    // BADCO must agree on the direction.
    let pairs = [["omnetpp", "soplex"], ["mcf", "gcc"], ["bzip2", "leslie3d"]];
    let timing = BadcoTiming::from_uncore(&cfg(PolicyKind::Lru));
    let mut det_gap = 0.0;
    let mut bad_gap = 0.0;
    let mut det_total = 0.0;
    for pair in pairs {
        let specs: Vec<BenchmarkSpec> = pair
            .iter()
            .map(|n| suite().into_iter().find(|b| b.name() == *n).unwrap())
            .collect();
        for policy in [PolicyKind::Lru, PolicyKind::Random] {
            let traces: Vec<Box<dyn TraceSource>> = specs
                .iter()
                .map(|b| Box::new(b.trace()) as Box<dyn TraceSource>)
                .collect();
            let det = MulticoreSim::new(
                CoreConfig::ispass2013(),
                Uncore::new(cfg(policy), 2),
                traces,
            )
            .run(N);
            let models = specs
                .iter()
                .map(|b| {
                    Arc::new(BadcoModel::build(
                        b.name(),
                        &CoreConfig::ispass2013(),
                        &b.trace(),
                        N,
                        timing,
                    ))
                })
                .collect();
            let bad = BadcoMulticoreSim::new(Uncore::new(cfg(policy), 2), models).run();
            let sign = if policy == PolicyKind::Lru { 1.0 } else { -1.0 };
            det_gap += sign * det.ipc.iter().sum::<f64>();
            bad_gap += sign * bad.ipc.iter().sum::<f64>();
            if policy == PolicyKind::Lru {
                det_total += det.ipc.iter().sum::<f64>();
            }
        }
    }
    // Direction agreement is only required for a non-trivial gap; this
    // aggregate can genuinely be a tie (the paper's "close pair" regime).
    let rel = det_gap.abs() / det_total.max(1e-9);
    if rel > 0.01 {
        assert_eq!(
            det_gap > 0.0,
            bad_gap > 0.0,
            "direction disagreement: detailed {det_gap:+.4}, badco {bad_gap:+.4}"
        );
    }
    // Either way the gaps must be of comparable (small or large) size.
    assert!(
        (det_gap - bad_gap).abs() < 0.2 * det_total.max(1e-9),
        "gap magnitudes diverge: detailed {det_gap:+.4}, badco {bad_gap:+.4}"
    );
}

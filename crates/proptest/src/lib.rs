//! Offline stand-in for the subset of [`proptest`](https://docs.rs/proptest)
//! this workspace uses.
//!
//! The build environment has no network access and no vendored registry, so
//! the real crate cannot be fetched. This stub keeps the workspace's
//! property-based tests *running* (not just compiling): it implements the
//! `proptest!` macro, range/collection/`Just`/`prop_oneof!` strategies and
//! the `prop_assert*` family on top of a small deterministic splitmix64
//! generator. Shrinking is intentionally not implemented — on failure the
//! offending inputs are printed verbatim instead.
//!
//! Seeds derive from the test's module path and name, so every run of a
//! given test exercises the same case sequence (reproducibility matters
//! more here than case diversity; see `docs/observability.md` for the
//! workspace-wide determinism policy).

/// Internal marker distinguishing `prop_assume!` rejections from failures.
pub const REJECTED: &str = "__proptest_stub_case_rejected__";

pub mod test_runner {
    //! Test configuration and the deterministic RNG behind strategies.

    /// Per-`proptest!` block configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 40 }
        }
    }

    /// Deterministic splitmix64 generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds the generator from an arbitrary string (the test path).
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(h)
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0, "below(0)");
            // Multiply-shift bounded sampling; bias is negligible for test
            // ranges (all far below 2^64).
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the combinators the workspace uses.

    use crate::test_runner::TestRng;

    /// A generator of values for one `proptest!` argument.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy producing a clone of a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128) as u64;
                    debug_assert!(span > 0, "empty integer range strategy");
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128 - *self.start() as i128) as u64 + 1;
                    (*self.start() as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Uniform choice between boxed strategies (the `prop_oneof!` backend).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} arms)", self.arms.len())
        }
    }

    impl<T> Union<T> {
        /// Builds a union over the given arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    /// Boxes a strategy for use in [`Union`] (`prop_oneof!` helper).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy wrapper returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    /// The full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! `prop::collection::vec` — vectors of strategy-generated elements.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive length bounds for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `elem` and whose length
    /// lies within `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Fails the current case (returning control to the runner) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = ($lhs, $rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?} == {:?}` ({} == {})",
                lhs, rhs, stringify!($lhs), stringify!($rhs),
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = ($lhs, $rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?} == {:?}`: {}",
                lhs, rhs, ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Inequality assertion for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = ($lhs, $rhs);
        if lhs == rhs {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?} != {:?}`",
                lhs,
                rhs,
            ));
        }
    }};
}

/// Discards the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::REJECTED.to_string());
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes a regular `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@block ($cfg) $($rest)*);
    };
    (@block ($cfg:expr) $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(20).max(1000),
                    "proptest stub: too many rejected cases in {}",
                    stringify!($name),
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                let inputs: ::std::string::String = {
                    let mut s = ::std::string::String::new();
                    $(
                        s.push_str(&::std::format!(
                            "  {} = {:?}\n", stringify!($arg), &$arg,
                        ));
                    )*
                    s
                };
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err(e) if e == $crate::REJECTED => {}
                    ::std::result::Result::Err(e) => panic!(
                        "proptest case {} of {} failed: {}\ninputs:\n{}",
                        accepted, config.cases, e, inputs,
                    ),
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @block ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -3.0f64..7.5, n in 1u64..50, k in 2usize..9) {
            prop_assert!((-3.0..7.5).contains(&x));
            prop_assert!((1..50).contains(&n));
            prop_assert!((2..9).contains(&k));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len = {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_only_yields_arms(x in prop_oneof![Just(1u8), Just(4u8), Just(9u8)]) {
            prop_assert!(x == 1 || x == 4 || x == 9);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}

//! `mps-par` — a dependency-free, deterministic, work-stealing thread pool
//! for the experiment grids of this workspace.
//!
//! # Why a bespoke pool
//!
//! Every expensive artifact in the study — the population throughput
//! tables (12 650 workloads at 4 cores), BADCO model training (22
//! benchmarks × ideal/pessimal runs), the resample loops behind the
//! confidence figures — is an *embarrassingly parallel grid*: a fixed list
//! of independent items whose results are combined in input order. The
//! paper's methodology guarantees the independence (each workload is its
//! own simulation); this crate supplies the parallelism without pulling in
//! rayon (the build environment has no registry access).
//!
//! # Determinism contract
//!
//! [`par_map_indexed`] guarantees **bit-identical output regardless of the
//! number of workers**: the function is applied exactly once per index,
//! results are merged in input-index order, and no worker-visible state
//! leaks into results. Anything order-dependent (RNG streams, shared
//! accumulators) must be derived *from the index*, never from execution
//! order — see `empirical_confidence` in `mps-sampling` for the pattern.
//! The thread-invariance suite in the workspace root asserts this end to
//! end (`MPS_JOBS=1` vs `MPS_JOBS=8` ⇒ byte-identical experiment
//! artifacts).
//!
//! # Scheduling
//!
//! Items `0..n` are split into one contiguous interval per worker. Each
//! worker owns a lock-free deque — an `AtomicU64` packing the interval's
//! `[lo, hi)` bounds — and pops chunks from the front with a CAS. A worker
//! whose interval drains picks the victim with the most remaining work and
//! steals the back half of its interval (again one CAS), making the stolen
//! range its own deque so it can in turn be stolen from. Intervals only
//! ever shrink, so the single-word CAS is ABA-free. Workers run on
//! [`std::thread::scope`] threads; worker panics propagate to the caller
//! after all workers have been joined.
//!
//! # Observability
//!
//! Each call updates `mps-obs` counters (`par.calls`, `par.items`,
//! `par.workers`, `par.steals`, `par.stolen_items`,
//! `par.imbalance_permille`), records every steal's size into the
//! `par.steal.size` histogram, and tracks the pool-wide remaining-item
//! count in the `par.queue.depth` gauge (updated at call start/end and at
//! every steal — the natural rebalancing points) so `mps-harness
//! --profile` and the live `/metrics` endpoint can show parallel
//! efficiency; see `docs/observability.md`.

use std::sync::atomic::{AtomicU64, Ordering};

/// One worker's deque: a contiguous `[lo, hi)` interval of item indices
/// packed into a single `AtomicU64` (`hi` in the high 32 bits).
///
/// The owner pops chunks from the front, thieves steal halves from the
/// back; both transitions strictly shrink the interval, so a compare-
/// exchange on the packed word cannot suffer ABA.
#[derive(Debug)]
struct IntervalDeque(AtomicU64);

fn pack(lo: u32, hi: u32) -> u64 {
    (u64::from(hi) << 32) | u64::from(lo)
}

fn unpack(v: u64) -> (u32, u32) {
    (v as u32, (v >> 32) as u32)
}

impl IntervalDeque {
    fn new(lo: u32, hi: u32) -> Self {
        IntervalDeque(AtomicU64::new(pack(lo, hi)))
    }

    /// Remaining items in the interval.
    fn remaining(&self) -> u32 {
        let (lo, hi) = unpack(self.0.load(Ordering::Acquire));
        hi.saturating_sub(lo)
    }

    /// Owner side: claim up to `chunk` items from the front.
    fn pop_front(&self, chunk: u32) -> Option<std::ops::Range<u32>> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            let take = chunk.min(hi - lo).max(1);
            match self.0.compare_exchange_weak(
                cur,
                pack(lo + take, hi),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(lo..lo + take),
                Err(v) => cur = v,
            }
        }
    }

    /// Thief side: claim the back half (at least one item).
    fn steal_back(&self) -> Option<std::ops::Range<u32>> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            let take = ((hi - lo) / 2).max(1);
            match self.0.compare_exchange_weak(
                cur,
                pack(lo, hi - take),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(hi - take..hi),
                Err(v) => cur = v,
            }
        }
    }

    /// Owner side: replace an empty deque with a freshly stolen range.
    ///
    /// Only the owner ever *grows* its interval, and only when it is
    /// empty — thieves cannot touch an empty interval — so a plain store
    /// cannot race with a successful steal.
    fn refill(&self, range: &std::ops::Range<u32>) {
        debug_assert_eq!(self.remaining(), 0, "refill of a non-empty deque");
        self.0
            .store(pack(range.start, range.end), Ordering::Release);
    }
}

/// Number of worker threads to use by default: the `MPS_JOBS` environment
/// variable if set to a positive integer, otherwise
/// [`std::thread::available_parallelism`], otherwise 1.
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("MPS_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
        eprintln!("mps-par: ignoring invalid MPS_JOBS={v:?} (want a positive integer)");
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Resolves a job count: an explicit request (e.g. a `--jobs` flag) wins,
/// otherwise [`default_jobs`]. Zero is treated as "not specified".
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    match explicit {
        Some(n) if n > 0 => n,
        _ => default_jobs(),
    }
}

/// Statistics of one [`par_map_indexed`] call, mirrored into `mps-obs`
/// counters and returned by [`par_map_indexed_stats`] for tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParStats {
    /// Worker threads actually spawned (0 when the call ran inline).
    pub workers: usize,
    /// Items executed (always the input length).
    pub items: usize,
    /// Successful steal operations.
    pub steals: u64,
    /// Items that changed hands through steals.
    pub stolen_items: u64,
    /// Idle-capacity permille: `1000·(1 − items/(workers·max_per_worker))`.
    /// 0 means perfectly balanced; inline runs report 0.
    pub imbalance_permille: u64,
}

/// Applies `f` to every `(index, item)` pair using up to `jobs` worker
/// threads and returns the results **in input-index order**.
///
/// Output is bit-identical for every `jobs` value (including 1): `f` runs
/// exactly once per index and the merge is by index, not completion order.
/// `jobs` is clamped to the item count; `jobs <= 1` (or fewer than two
/// items) runs inline on the calling thread with no spawns.
///
/// # Panics
///
/// A panic inside `f` is propagated to the caller after all workers have
/// drained (the first payload observed in worker order is rethrown).
pub fn par_map_indexed<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_indexed_stats(jobs, items, f).0
}

/// [`par_map_indexed`] variant that also returns the scheduling
/// statistics of this call (used by the scheduler's own tests and the
/// `par_speedup` bench).
pub fn par_map_indexed_stats<T, R, F>(jobs: usize, items: &[T], f: F) -> (Vec<R>, ParStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    assert!(
        u32::try_from(n).is_ok(),
        "par_map_indexed supports at most u32::MAX items (got {n})"
    );
    mps_obs::counter("par.calls").incr();
    mps_obs::counter("par.items").add(n as u64);
    let workers = jobs.min(n).max(1);
    if workers == 1 {
        let out = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        return (
            out,
            ParStats {
                items: n,
                ..ParStats::default()
            },
        );
    }

    // Initial partition: contiguous, near-equal intervals (the first
    // `n % workers` workers take one extra item).
    let deques: Vec<IntervalDeque> = {
        let base = (n / workers) as u32;
        let extra = (n % workers) as u32;
        let mut lo = 0u32;
        (0..workers as u32)
            .map(|w| {
                let len = base + u32::from(w < extra);
                let d = IntervalDeque::new(lo, lo + len);
                lo += len;
                d
            })
            .collect()
    };
    // Front-of-deque chunk size: coarse enough to keep CAS traffic low on
    // huge grids, fine enough (≤ remaining/2 via steals) for balance.
    let chunk = ((n / (workers * 8)) as u32).max(1);

    // Steals are rare (rebalancing points), so updating the depth gauge
    // and steal-size histogram there costs nothing on the hot path.
    let steal_size_hist = mps_obs::histogram("par.steal.size");
    let queue_depth = mps_obs::gauge("par.queue.depth");
    queue_depth.set(n as i64);

    struct WorkerOutcome<R> {
        /// `(index, result)` pairs in execution order.
        results: Vec<(u32, R)>,
        steals: u64,
        stolen_items: u64,
    }

    let run_worker = |me: usize| -> WorkerOutcome<R> {
        let mut out = WorkerOutcome {
            results: Vec::with_capacity(n / workers + 1),
            steals: 0,
            stolen_items: 0,
        };
        loop {
            // Drain the own deque front-to-back.
            while let Some(range) = deques[me].pop_front(chunk) {
                for i in range {
                    out.results.push((i, f(i as usize, &items[i as usize])));
                }
            }
            // Steal from the victim with the most remaining work.
            let victim = (0..workers)
                .filter(|&w| w != me)
                .map(|w| (deques[w].remaining(), w))
                .max()
                .filter(|&(rem, _)| rem > 0)
                .map(|(_, w)| w);
            match victim.and_then(|v| deques[v].steal_back()) {
                Some(range) => {
                    out.steals += 1;
                    out.stolen_items += u64::from(range.end - range.start);
                    steal_size_hist.record(u64::from(range.end - range.start));
                    let depth: u32 = (0..workers).map(|w| deques[w].remaining()).sum();
                    queue_depth.set(i64::from(depth) + i64::from(range.end - range.start));
                    deques[me].refill(&range);
                }
                // No stealable work anywhere: since the item set is fixed
                // (nothing respawns work), empty deques mean we are done.
                None => {
                    if (0..workers).all(|w| deques[w].remaining() == 0) {
                        break;
                    }
                    // A steal raced with another thief; rescan.
                    std::hint::spin_loop();
                }
            }
        }
        out
    };

    let joined: Vec<std::thread::Result<WorkerOutcome<R>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| s.spawn(move || run_worker(w)))
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    });

    let mut outcomes = Vec::with_capacity(workers);
    let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
    for j in joined {
        match j {
            Ok(o) => outcomes.push(o),
            Err(p) => panic = panic.or(Some(p)),
        }
    }
    if let Some(p) = panic {
        std::panic::resume_unwind(p);
    }

    let mut stats = ParStats {
        workers,
        items: n,
        ..ParStats::default()
    };
    let max_per_worker = outcomes.iter().map(|o| o.results.len()).max().unwrap_or(0);
    for o in &outcomes {
        stats.steals += o.steals;
        stats.stolen_items += o.stolen_items;
    }
    if max_per_worker > 0 {
        let capacity = (workers * max_per_worker) as u64;
        stats.imbalance_permille = 1000 - (n as u64 * 1000) / capacity;
    }
    queue_depth.set(0);
    mps_obs::counter("par.workers").add(workers as u64);
    mps_obs::counter("par.steals").add(stats.steals);
    mps_obs::counter("par.stolen_items").add(stats.stolen_items);
    mps_obs::counter("par.imbalance_permille").add(stats.imbalance_permille);

    // Order-independent merge: scatter by index, then unwrap in order.
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for o in outcomes {
        for (i, r) in o.results {
            let slot = &mut slots[i as usize];
            debug_assert!(slot.is_none(), "index {i} executed twice");
            *slot = Some(r);
        }
    }
    let out = slots
        .into_iter()
        .map(|s| s.expect("every index executed exactly once"))
        .collect();
    (out, stats)
}

/// Convenience wrapper mapping over `0..n` without a backing slice.
pub fn par_map_range<R, F>(jobs: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    // A unit slice keeps the whole scheduler in one code path.
    let units = vec![(); n];
    par_map_indexed(jobs, &units, |i, ()| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_index_order_for_every_jobs_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let got = par_map_indexed(jobs, &items, |_, &x| x * 3 + 1);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_single_inputs_run_inline() {
        let empty: Vec<u8> = vec![];
        let (out, stats) = par_map_indexed_stats(8, &empty, |_, &x| x);
        assert!(out.is_empty());
        assert_eq!(stats.workers, 0, "no threads for empty input");
        let (out, stats) = par_map_indexed_stats(8, &[41], |i, &x| x + i as i32 + 1);
        assert_eq!(out, vec![42]);
        assert_eq!(stats.workers, 0, "no threads for a single item");
    }

    #[test]
    fn every_index_executes_exactly_once() {
        let n = 1000;
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..n).collect();
        par_map_indexed(7, &items, |i, _| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn steals_rebalance_skewed_work() {
        // One pathologically expensive item at the front of the first
        // worker's interval forces the others to steal its leftovers.
        let items: Vec<u64> = (0..64).collect();
        let (_, stats) = par_map_indexed_stats(4, &items, |i, _| {
            let spins = if i == 0 { 3_000_000 } else { 1_000 };
            let mut acc = 0u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            std::hint::black_box(acc)
        });
        assert!(stats.steals > 0, "expected steals, got {stats:?}");
    }

    #[test]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..100).collect();
        let r = std::panic::catch_unwind(|| {
            par_map_indexed(4, &items, |i, _| {
                assert!(i != 57, "boom at 57");
                i
            })
        });
        assert!(r.is_err(), "panic must propagate to the caller");
    }

    #[test]
    fn resolve_jobs_prefers_explicit() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert!(resolve_jobs(None) >= 1);
        assert!(resolve_jobs(Some(0)) >= 1);
    }

    #[test]
    fn par_map_range_matches_sequential() {
        let got = par_map_range(5, 100, |i| i * i);
        let expect: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn interval_deque_pop_and_steal_shrink() {
        let d = IntervalDeque::new(0, 10);
        assert_eq!(d.pop_front(3), Some(0..3));
        assert_eq!(d.steal_back(), Some(7..10), "steal takes the back half");
        assert_eq!(d.remaining(), 4);
        assert_eq!(d.pop_front(8), Some(3..7));
        assert_eq!(d.pop_front(1), None);
        assert_eq!(d.steal_back(), None);
    }
}

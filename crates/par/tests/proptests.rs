//! Property-based tests for the work-stealing runner.
//!
//! The contract under test is the one `tests/thread_invariance.rs` relies
//! on end-to-end: for *any* item count and *any* worker count,
//! `par_map_indexed` visits every index exactly once and returns results
//! in input-index order — i.e. it is observationally identical to a
//! sequential `iter().enumerate().map()`.

// The vendored `proptest!` macro is a token-tree muncher; a block this
// size needs a larger limit (doc comments on tests count as tokens too,
// hence the plain `//` comments inside the block).
#![recursion_limit = "2048"]

use mps_par::{par_map_indexed, par_map_indexed_stats, par_map_range, resolve_jobs};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Results come back in input-index order for arbitrary item and
    // worker counts, matching the sequential map exactly.
    #[test]
    fn matches_sequential_map(n in 0usize..300, jobs in 1usize..17) {
        let items: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        let expect: Vec<u64> = items.iter().enumerate().map(|(i, v)| v ^ i as u64).collect();
        let got = par_map_indexed(jobs, &items, |i, v| v ^ i as u64);
        prop_assert_eq!(got, expect);
    }

    // Every index is visited exactly once, no matter how the deques are
    // carved up or how the steals interleave.
    #[test]
    fn each_index_exactly_once(n in 0usize..300, jobs in 1usize..17) {
        let counts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let items: Vec<usize> = (0..n).collect();
        par_map_indexed(jobs, &items, |i, &v| {
            assert_eq!(i, v, "closure sees the input's own index");
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counts.iter().enumerate() {
            prop_assert_eq!(c.load(Ordering::Relaxed), 1, "index {} visited wrong number of times", i);
        }
    }

    // The stats variant returns the same results as the plain variant and
    // self-consistent accounting: items processed equals input length and
    // stolen items never exceed total items.
    #[test]
    fn stats_are_consistent(n in 0usize..300, jobs in 1usize..17) {
        let items: Vec<usize> = (0..n).collect();
        let (got, stats) = par_map_indexed_stats(jobs, &items, |i, &v| i + v);
        let expect: Vec<usize> = (0..n).map(|i| 2 * i).collect();
        prop_assert_eq!(got, expect);
        prop_assert_eq!(stats.items, n);
        prop_assert!(stats.workers <= jobs);
        prop_assert!(stats.stolen_items <= n as u64);
        prop_assert!(stats.imbalance_permille <= 1000);
    }

    // `par_map_range` agrees with the slice version over a unit range.
    #[test]
    fn range_matches_slice(n in 0usize..300, jobs in 1usize..17) {
        let items: Vec<()> = vec![(); n];
        let a = par_map_range(jobs, n, |i| i * 3 + 1);
        let b = par_map_indexed(jobs, &items, |i, _| i * 3 + 1);
        prop_assert_eq!(a, b);
    }

    // jobs = 1 is the sequential inline path and must still satisfy the
    // same contract (this is the baseline the invariance suite compares
    // every other worker count against).
    #[test]
    fn single_job_is_sequential(n in 0usize..100) {
        let items: Vec<u32> = (0..n as u32).collect();
        let got = par_map_indexed(1, &items, |i, v| u64::from(*v) + i as u64);
        let expect: Vec<u64> = (0..n as u64).map(|i| 2 * i).collect();
        prop_assert_eq!(got, expect);
    }

    // Empty input returns an empty vec for any worker count without
    // spawning anything (would deadlock or panic otherwise).
    #[test]
    fn empty_input(jobs in 1usize..33) {
        let items: Vec<u8> = Vec::new();
        let got: Vec<u8> = par_map_indexed(jobs, &items, |_, v| *v);
        prop_assert!(got.is_empty());
    }

    // Explicit job counts always win over the environment default.
    #[test]
    fn explicit_jobs_resolve(jobs in 1usize..64) {
        prop_assert_eq!(resolve_jobs(Some(jobs)), jobs);
    }
}

//! Minimal self-describing binary codec for artifact payloads.
//!
//! The build environment is offline — no `serde`, no `bincode` — so the
//! store ships its own little-endian record codec. Floats travel as raw
//! IEEE-754 bit patterns, which is what makes a loaded artifact
//! *bit-identical* to the computed one (decimal round-tripping would not
//! be). Every decode is bounds-checked and returns [`Error::Corrupt`]
//! instead of panicking, so a truncated or bit-flipped payload can never
//! take the process down.

use crate::error::{Error, Result};

/// Append-only encoder building an artifact payload.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    /// Consumes the encoder, returning the payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length prefix for a following sequence.
    pub fn len(&mut self, n: usize) {
        self.u32(n as u32);
    }

    /// Appends a length-prefixed `f64` slice (bit patterns).
    pub fn f64s(&mut self, vs: &[f64]) {
        self.len(vs.len());
        for &v in vs {
            self.f64(v);
        }
    }

    /// Appends a length-prefixed `u32` slice.
    pub fn u32s(&mut self, vs: &[u32]) {
        self.len(vs.len());
        for &v in vs {
            self.u32(v);
        }
    }
}

/// Bounds-checked decoder over an artifact payload.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Logical name reported in corruption errors.
    what: &'a str,
}

impl<'a> Dec<'a> {
    /// Creates a decoder over `buf`; `what` names the artifact in errors.
    pub fn new(buf: &'a [u8], what: &'a str) -> Self {
        Dec { buf, pos: 0, what }
    }

    fn corrupt(&self, detail: impl Into<String>) -> Error {
        Error::Corrupt {
            path: self.what.to_owned(),
            detail: detail.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(self.corrupt(format!(
                "payload truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool, rejecting anything but 0/1.
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(self.corrupt(format!("invalid bool byte {b}"))),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length prefix, sanity-capped against the remaining bytes
    /// (`min_elem_size` bytes per element) so a corrupted length cannot
    /// trigger a huge allocation.
    pub fn len(&mut self, min_elem_size: usize) -> Result<usize> {
        let n = self.u32()? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(min_elem_size.max(1)) > remaining {
            return Err(self.corrupt(format!(
                "length {n} exceeds remaining payload ({remaining} bytes)"
            )));
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| self.corrupt("string payload is not valid UTF-8"))
    }

    /// Reads a length-prefixed `f64` slice.
    pub fn f64s(&mut self) -> Result<Vec<f64>> {
        let n = self.len(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    /// Reads a length-prefixed `u32` slice.
    pub fn u32s(&mut self) -> Result<Vec<u32>> {
        let n = self.len(4)?;
        (0..n).map(|_| self.u32()).collect()
    }

    /// Asserts the whole payload was consumed (trailing garbage is a sign
    /// of a schema mismatch that happened to parse).
    pub fn finish(self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(self.corrupt(format!(
                "{} trailing bytes after the last record",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// FNV-1a 64-bit hash — the store's content checksum and key hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut e = Enc::new();
        e.u8(7);
        e.bool(true);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 3);
        e.f64(-0.0);
        e.str("hé");
        e.f64s(&[f64::NAN, 1.5]);
        e.u32s(&[1, 2, 3]);
        let b = e.into_bytes();
        let mut d = Dec::new(&b, "test");
        assert_eq!(d.u8().unwrap(), 7);
        assert!(d.bool().unwrap());
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(d.str().unwrap(), "hé");
        let fs = d.f64s().unwrap();
        assert!(fs[0].is_nan() && fs[1] == 1.5);
        assert_eq!(d.u32s().unwrap(), vec![1, 2, 3]);
        d.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut e = Enc::new();
        e.f64s(&[1.0, 2.0, 3.0]);
        let b = e.into_bytes();
        for cut in 0..b.len() {
            let mut d = Dec::new(&b[..cut], "t");
            assert!(d.f64s().is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut e = Enc::new();
        e.u32(u32::MAX); // claims 4 billion elements
        let b = e.into_bytes();
        let mut d = Dec::new(&b, "t");
        assert!(matches!(d.f64s(), Err(Error::Corrupt { .. })));
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut e = Enc::new();
        e.u8(1);
        e.u8(2);
        let b = e.into_bytes();
        let mut d = Dec::new(&b, "t");
        d.u8().unwrap();
        assert!(d.finish().is_err());
    }
}

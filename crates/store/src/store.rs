//! The content-addressed artifact store.
//!
//! # Layout
//!
//! ```text
//! <root>/
//!   artifacts/<kind>-<fnv64 of key spec, hex>.mps   one record per artifact
//!   checkpoints/<grid>-<hex>.jsonl                  append-only resume logs
//!   quarantine/<original name>.<n>                  poisoned files, kept for forensics
//! ```
//!
//! # Record format (schema 2)
//!
//! ```text
//! {"schema":2,"kind":"perf-table","key":"1f2e…","rev":3}\n   ASCII JSON header line
//! <payload bytes>                                            codec-encoded body
//! <u64 LE payload length><u64 LE FNV-1a64 of payload>        16-byte footer
//! ```
//!
//! Schema 1 is the same layout without the `rev` field; the reader still
//! accepts it (and treats the revision as matching). Anything newer than
//! [`SCHEMA`] yields [`Error::SchemaVersion`] from the strict reader and a
//! plain miss from the lenient one.
//!
//! # Failure behaviour
//!
//! *Writes* are atomic: payloads land in a `.tmp` sibling first and are
//! renamed into place, so readers never observe a half-written artifact
//! and a killed writer leaves only a disposable temp file (cleaned at the
//! next [`Store::open`]). *Reads* detect truncation (length footer),
//! bit rot (checksum) and malformed headers; the lenient path quarantines
//! the poisoned file and reports a miss so the caller recomputes —
//! a poisoned artifact can degrade performance, never correctness.

use crate::codec::fnv1a64;
use crate::error::{Error, Result};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Current on-disk schema revision.
pub const SCHEMA: u32 = 2;

/// Oldest schema revision the reader still accepts.
pub const MIN_SCHEMA: u32 = 1;

/// Revision of the simulation kernels whose outputs the store caches.
///
/// Artifacts are only reused when the revision they were computed with
/// matches; a mismatch evicts the stale file. **Bump this whenever a
/// change alters simulator semantics** (core model, uncore, BADCO
/// training, trace generation, RNG derivation) — pure refactors and new
/// experiments don't require a bump.
pub const KERNEL_REV: u32 = 3;

/// Identifies one artifact: a `kind` (namespace, e.g. `"perf-table"`) and
/// a canonical `spec` string carrying every input the artifact depends on
/// (scale fingerprint, suite, core count, policy, …). The file name is
/// the FNV-1a64 of both, so equal specs collide on purpose — that *is*
/// the content addressing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    kind: String,
    spec: String,
}

impl ArtifactKey {
    /// Creates a key. `kind` must be filesystem-safe (lowercase, dashes).
    pub fn new(kind: impl Into<String>, spec: impl Into<String>) -> Self {
        let kind = kind.into();
        debug_assert!(
            kind.bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-'),
            "artifact kind {kind:?} must be lowercase-dashed"
        );
        ArtifactKey {
            kind,
            spec: spec.into(),
        }
    }

    /// The artifact namespace.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// The canonical input-spec string.
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// Hex content hash used as the file name stem.
    pub fn hash_hex(&self) -> String {
        let mut bytes = Vec::with_capacity(self.kind.len() + self.spec.len() + 1);
        bytes.extend_from_slice(self.kind.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(self.spec.as_bytes());
        format!("{:016x}", fnv1a64(&bytes))
    }
}

/// Atomic hit/miss/corruption accounting for one store.
#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    puts: AtomicU64,
    corrupt: AtomicU64,
    evicted: AtomicU64,
}

/// A point-in-time snapshot of a store's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Artifacts served from disk.
    pub hits: u64,
    /// Lookups that found no (valid, current) artifact.
    pub misses: u64,
    /// Artifacts written.
    pub puts: u64,
    /// Poisoned files detected and quarantined.
    pub corrupt: u64,
    /// Stale or over-cap files evicted.
    pub evicted: u64,
}

/// The on-disk artifact store. Cheap to clone behind an `Arc`; all
/// methods take `&self` and are safe to call from many threads (the
/// underlying primitives are atomic file operations).
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    counters: Counters,
    obs_hit: mps_obs::Counter,
    obs_miss: mps_obs::Counter,
    obs_put: mps_obs::Counter,
    obs_corrupt: mps_obs::Counter,
    obs_evict: mps_obs::Counter,
    obs_read_bytes: mps_obs::Histogram,
    obs_write_bytes: mps_obs::Histogram,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// Removes leftover temp files from killed writers, and — when the
    /// `MPS_STORE_CAP_BYTES` environment variable is set — evicts the
    /// oldest artifacts until the store fits the cap.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        let store = Store {
            root,
            counters: Counters::default(),
            obs_hit: mps_obs::counter("store.hit"),
            obs_miss: mps_obs::counter("store.miss"),
            obs_put: mps_obs::counter("store.put"),
            obs_corrupt: mps_obs::counter("store.corrupt"),
            obs_evict: mps_obs::counter("store.evict"),
            obs_read_bytes: mps_obs::histogram("store.read.bytes"),
            obs_write_bytes: mps_obs::histogram("store.write.bytes"),
        };
        for sub in ["artifacts", "checkpoints", "quarantine"] {
            let dir = store.root.join(sub);
            fs::create_dir_all(&dir)
                .map_err(|e| Error::Io(format!("create {}: {e}", dir.display())))?;
        }
        store.sweep_temp_files();
        if let Some(cap) = std::env::var("MPS_STORE_CAP_BYTES")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            store.evict_to_cap(cap);
        }
        Ok(store)
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Directory holding checkpoint logs (used by [`crate::Checkpoint`]).
    pub(crate) fn checkpoints_dir(&self) -> PathBuf {
        self.root.join("checkpoints")
    }

    /// Snapshot of the hit/miss/corruption counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            puts: self.counters.puts.load(Ordering::Relaxed),
            corrupt: self.counters.corrupt.load(Ordering::Relaxed),
            evicted: self.counters.evicted.load(Ordering::Relaxed),
        }
    }

    fn artifact_path(&self, key: &ArtifactKey) -> PathBuf {
        self.root
            .join("artifacts")
            .join(format!("{}-{}.mps", key.kind(), key.hash_hex()))
    }

    /// Writes an artifact atomically (temp file + rename).
    pub fn put(&self, key: &ArtifactKey, payload: &[u8]) -> Result<()> {
        let path = self.artifact_path(key);
        let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
        let header = format!(
            "{{\"schema\":{SCHEMA},\"kind\":\"{}\",\"key\":\"{}\",\"rev\":{KERNEL_REV}}}\n",
            key.kind(),
            key.hash_hex()
        );
        let mut bytes = Vec::with_capacity(header.len() + payload.len() + 16);
        bytes.extend_from_slice(header.as_bytes());
        bytes.extend_from_slice(payload);
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            fs::rename(&tmp, &path)
        };
        write().map_err(|e| {
            let _ = fs::remove_file(&tmp);
            Error::Io(format!("write {}: {e}", path.display()))
        })?;
        self.counters.puts.fetch_add(1, Ordering::Relaxed);
        self.obs_put.incr();
        self.obs_write_bytes.record(bytes.len() as u64);
        Ok(())
    }

    /// Strict read: `Ok(None)` when absent, `Err` on corruption or an
    /// unsupported schema. Does not quarantine — see [`Store::get`] for
    /// the self-healing path.
    pub fn read(&self, key: &ArtifactKey) -> Result<Option<Vec<u8>>> {
        let path = self.artifact_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(Error::Io(format!("read {}: {e}", path.display()))),
        };
        let (payload, rev) = parse_record(&bytes, &path.display().to_string())?;
        if let Some(rev) = rev {
            if rev != KERNEL_REV {
                // Stale kernel revision: not corrupt, just outdated.
                return Ok(None);
            }
        }
        Ok(Some(payload.to_vec()))
    }

    /// Lenient read used by load-or-compute paths: a valid, current
    /// artifact counts a `store.hit`; anything else degrades to a miss.
    /// Corrupt files are quarantined, stale-revision files evicted.
    pub fn get(&self, key: &ArtifactKey) -> Option<Vec<u8>> {
        let path = self.artifact_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.record_miss();
                return None;
            }
        };
        match parse_record(&bytes, &path.display().to_string()) {
            Ok((payload, rev)) => {
                if rev.is_some_and(|r| r != KERNEL_REV) {
                    self.evict(&path);
                    self.record_miss();
                    return None;
                }
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                self.obs_hit.incr();
                self.obs_read_bytes.record(bytes.len() as u64);
                Some(payload.to_vec())
            }
            Err(Error::SchemaVersion { .. }) => {
                // Written by a newer build: leave it alone, report a miss.
                self.record_miss();
                None
            }
            Err(e) => {
                self.quarantine(&path, &e);
                self.record_miss();
                None
            }
        }
    }

    /// Quarantines a poisoned artifact the *caller* detected (e.g. the
    /// payload parsed but failed domain decoding), so the next lookup
    /// recomputes instead of tripping on it again.
    pub fn quarantine_key(&self, key: &ArtifactKey, why: &Error) {
        self.quarantine(&self.artifact_path(key), why);
    }

    fn record_miss(&self) {
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        self.obs_miss.incr();
    }

    fn quarantine(&self, path: &Path, why: &Error) {
        self.counters.corrupt.fetch_add(1, Ordering::Relaxed);
        self.obs_corrupt.incr();
        mps_obs::event(
            "store.quarantine",
            &[
                ("path", path.display().to_string()),
                ("why", why.to_string()),
            ],
        );
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "artifact".to_owned());
        // Pick the first free quarantine slot so repeat offenders keep
        // their history instead of overwriting it.
        for n in 0..u32::MAX {
            let dest = self.root.join("quarantine").join(format!("{name}.{n}"));
            if !dest.exists() {
                if fs::rename(path, &dest).is_err() {
                    // Rename can fail across filesystems or races; fall
                    // back to removal so the poison is gone either way.
                    let _ = fs::remove_file(path);
                }
                break;
            }
        }
    }

    fn evict(&self, path: &Path) {
        if fs::remove_file(path).is_ok() {
            self.counters.evicted.fetch_add(1, Ordering::Relaxed);
            self.obs_evict.incr();
            mps_obs::event("store.evict", &[("path", path.display().to_string())]);
        }
    }

    /// Removes temp files abandoned by killed writers.
    fn sweep_temp_files(&self) {
        let Ok(entries) = fs::read_dir(self.root.join("artifacts")) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.contains(".tmp-") {
                let _ = fs::remove_file(entry.path());
            }
        }
    }

    /// Evicts oldest-modified artifacts until total size fits `cap` bytes.
    pub fn evict_to_cap(&self, cap: u64) {
        let Ok(entries) = fs::read_dir(self.root.join("artifacts")) else {
            return;
        };
        let mut files: Vec<(std::time::SystemTime, u64, PathBuf)> = entries
            .flatten()
            .filter_map(|e| {
                let md = e.metadata().ok()?;
                Some((
                    md.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH),
                    md.len(),
                    e.path(),
                ))
            })
            .collect();
        let mut total: u64 = files.iter().map(|f| f.1).sum();
        files.sort_by_key(|f| f.0);
        for (_, size, path) in files {
            if total <= cap {
                break;
            }
            self.evict(&path);
            total = total.saturating_sub(size);
        }
    }
}

/// Splits a raw record into (payload, kernel revision) after validating
/// header, schema, length footer and checksum. `rev` is `None` for
/// schema-1 records, which predate revision tracking.
fn parse_record<'a>(bytes: &'a [u8], path: &str) -> Result<(&'a [u8], Option<u32>)> {
    let corrupt = |detail: &str| Error::Corrupt {
        path: path.to_owned(),
        detail: detail.to_owned(),
    };
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| corrupt("missing header line"))?;
    let header = std::str::from_utf8(&bytes[..nl]).map_err(|_| corrupt("non-UTF-8 header"))?;
    let schema = json_u32_field(header, "schema").ok_or_else(|| corrupt("header lacks schema"))?;
    if schema > SCHEMA {
        return Err(Error::SchemaVersion {
            path: path.to_owned(),
            found: schema,
            supported: SCHEMA,
        });
    }
    if schema < MIN_SCHEMA {
        return Err(corrupt(&format!("schema {schema} predates {MIN_SCHEMA}")));
    }
    let rest = &bytes[nl + 1..];
    if rest.len() < 16 {
        return Err(corrupt("record truncated before footer"));
    }
    let (payload, footer) = rest.split_at(rest.len() - 16);
    let stored_len = u64::from_le_bytes(footer[..8].try_into().unwrap());
    let stored_sum = u64::from_le_bytes(footer[8..].try_into().unwrap());
    if stored_len != payload.len() as u64 {
        return Err(corrupt(&format!(
            "payload length {} != recorded {stored_len} (truncated write?)",
            payload.len()
        )));
    }
    if stored_sum != fnv1a64(payload) {
        return Err(corrupt("payload checksum mismatch"));
    }
    // Schema 1 headers carry no "rev"; treat them as revision-agnostic.
    let rev = if schema >= 2 {
        Some(json_u32_field(header, "rev").ok_or_else(|| corrupt("schema>=2 header lacks rev"))?)
    } else {
        None
    };
    Ok((payload, rev))
}

/// Extracts an unsigned integer field from a flat one-line JSON object.
/// Only handles the store's own headers — not a general JSON parser.
pub(crate) fn json_u32_field(json: &str, name: &str) -> Option<u32> {
    let needle = format!("\"{name}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = &json[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts a string field from a flat one-line JSON object (no escapes —
/// the store never writes any).
pub(crate) fn json_str_field<'a>(json: &'a str, name: &str) -> Option<&'a str> {
    let needle = format!("\"{name}\":\"");
    let at = json.find(&needle)? + needle.len();
    let rest = &json[at..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir().join(format!(
            "mps-store-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        Store::open(dir).unwrap()
    }

    #[test]
    fn round_trip_hit() {
        let s = tmp_store("rt");
        let k = ArtifactKey::new("demo", "cores=2");
        assert!(s.get(&k).is_none());
        s.put(&k, b"payload").unwrap();
        assert_eq!(s.get(&k).unwrap(), b"payload");
        let st = s.stats();
        assert_eq!((st.hits, st.misses, st.puts), (1, 1, 1));
    }

    #[test]
    fn distinct_specs_do_not_collide() {
        let s = tmp_store("keys");
        let a = ArtifactKey::new("demo", "cores=2");
        let b = ArtifactKey::new("demo", "cores=4");
        s.put(&a, b"two").unwrap();
        s.put(&b, b"four").unwrap();
        assert_eq!(s.get(&a).unwrap(), b"two");
        assert_eq!(s.get(&b).unwrap(), b"four");
    }

    #[test]
    fn truncated_record_is_quarantined_and_recomputable() {
        let s = tmp_store("trunc");
        let k = ArtifactKey::new("demo", "x");
        s.put(&k, &[7u8; 64]).unwrap();
        let path = s.artifact_path(&k);
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 9]).unwrap();
        assert!(s.get(&k).is_none(), "truncated record must miss");
        assert_eq!(s.stats().corrupt, 1);
        assert!(!path.exists(), "poisoned file must leave the hot path");
        // Recompute + put heals the slot.
        s.put(&k, &[7u8; 64]).unwrap();
        assert_eq!(s.get(&k).unwrap(), vec![7u8; 64]);
    }

    #[test]
    fn bit_flip_fails_checksum() {
        let s = tmp_store("flip");
        let k = ArtifactKey::new("demo", "x");
        s.put(&k, &[1, 2, 3, 4]).unwrap();
        let path = s.artifact_path(&k);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() - 20; // inside the payload
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(s.get(&k).is_none());
        assert_eq!(s.stats().corrupt, 1);
    }

    #[test]
    fn schema1_records_are_still_readable() {
        // Schema bump 1 → 2 added the "rev" field; the reader must keep
        // accepting the old layout (revision-agnostic).
        let s = tmp_store("schema1");
        let k = ArtifactKey::new("demo", "legacy");
        let payload = b"legacy payload";
        let mut bytes = format!(
            "{{\"schema\":1,\"kind\":\"demo\",\"key\":\"{}\"}}\n",
            k.hash_hex()
        )
        .into_bytes();
        bytes.extend_from_slice(payload);
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        fs::write(s.artifact_path(&k), bytes).unwrap();
        assert_eq!(s.get(&k).unwrap(), payload);
        assert_eq!(s.read(&k).unwrap().unwrap(), payload);
    }

    #[test]
    fn newer_schema_is_refused_strictly_and_skipped_leniently() {
        let s = tmp_store("schema3");
        let k = ArtifactKey::new("demo", "future");
        let payload = b"from the future";
        let mut bytes = b"{\"schema\":3,\"kind\":\"demo\",\"rev\":9}\n".to_vec();
        bytes.extend_from_slice(payload);
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        let path = s.artifact_path(&k);
        fs::write(&path, bytes).unwrap();
        assert!(matches!(
            s.read(&k),
            Err(Error::SchemaVersion { found: 3, .. })
        ));
        assert!(s.get(&k).is_none());
        assert!(path.exists(), "future-schema files must not be destroyed");
        assert_eq!(s.stats().corrupt, 0);
    }

    #[test]
    fn stale_kernel_rev_is_evicted() {
        let s = tmp_store("rev");
        let k = ArtifactKey::new("demo", "old-rev");
        let payload = b"stale";
        let mut bytes = format!(
            "{{\"schema\":2,\"kind\":\"demo\",\"rev\":{}}}\n",
            KERNEL_REV - 1
        )
        .into_bytes();
        bytes.extend_from_slice(payload);
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        fs::write(s.artifact_path(&k), bytes).unwrap();
        assert!(s.get(&k).is_none());
        assert_eq!(s.stats().evicted, 1);
    }

    #[test]
    fn evict_to_cap_drops_oldest_first() {
        let s = tmp_store("cap");
        let old = ArtifactKey::new("demo", "old");
        let new = ArtifactKey::new("demo", "new");
        s.put(&old, &[0u8; 256]).unwrap();
        // Ensure distinct mtimes even on coarse filesystems.
        let old_path = s.artifact_path(&old);
        let past = std::time::SystemTime::now() - std::time::Duration::from_secs(3600);
        let _ = fs::File::open(&old_path).and_then(|f| f.set_modified(past).map(|_| f));
        s.put(&new, &[0u8; 64]).unwrap();
        // Cap fits the small new file but not both: only `old` must go.
        s.evict_to_cap(400);
        assert!(s.get(&new).is_some(), "newest artifact survives");
        assert!(s.get(&old).is_none(), "oldest artifact evicted");
        assert!(s.stats().evicted >= 1);
    }

    #[test]
    fn json_field_helpers() {
        let h = "{\"schema\":2,\"kind\":\"x\",\"key\":\"abc\",\"rev\":31}";
        assert_eq!(json_u32_field(h, "schema"), Some(2));
        assert_eq!(json_u32_field(h, "rev"), Some(31));
        assert_eq!(json_str_field(h, "key"), Some("abc"));
        assert_eq!(json_u32_field(h, "absent"), None);
    }
}

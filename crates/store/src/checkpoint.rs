//! Append-only checkpoint logs: crash-safe resume for experiment grids.
//!
//! A [`Checkpoint`] records each completed grid cell — e.g. one
//! `(method, sample-size)` point of a resampling loop — as a JSONL line
//! carrying the cell's id and its `f64` result as an exact bit pattern.
//! A killed run leaves at worst one torn trailing line; reopening with
//! `resume` keeps every complete record and silently drops the tail, so
//! the rerun recomputes only what was genuinely lost. Values are written
//! bit-exactly, which is what lets a resumed run reproduce the
//! uninterrupted run byte for byte.
//!
//! The `MPS_ABORT_AFTER_CELLS=<n>` environment variable makes the
//! process `abort()` after the n-th recorded cell across all checkpoints
//! — the kill-and-resume integration tests use it to simulate a SIGKILL
//! at a deterministic point in the grid.

use crate::codec::fnv1a64;
use crate::error::{Error, Result};
use crate::store::{json_str_field, Store, SCHEMA};
use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Global cell-record counter backing the abort-injection test hook.
static RECORDED_CELLS: AtomicU64 = AtomicU64::new(0);

fn abort_after() -> Option<u64> {
    static LIMIT: OnceLock<Option<u64>> = OnceLock::new();
    *LIMIT.get_or_init(|| {
        std::env::var("MPS_ABORT_AFTER_CELLS")
            .ok()
            .and_then(|v| v.parse().ok())
    })
}

/// A resumable grid-progress log (one per experiment grid per store).
#[derive(Debug)]
pub struct Checkpoint {
    grid: String,
    path: std::path::PathBuf,
    file: Mutex<fs::File>,
    cells: Mutex<HashMap<String, u64>>,
    loaded: usize,
}

impl Checkpoint {
    /// Opens the log for `grid` (keyed additionally by `spec`, the same
    /// canonical input string artifact keys use). With `resume` set,
    /// previously completed cells are loaded — torn trailing records are
    /// dropped; without it the log is truncated and the grid starts
    /// fresh.
    pub fn open(store: &Store, grid: &str, spec: &str, resume: bool) -> Result<Self> {
        let hash = fnv1a64(format!("{grid}\0{spec}").as_bytes());
        let path = store
            .checkpoints_dir()
            .join(format!("{grid}-{hash:016x}.jsonl"));
        let mut cells = HashMap::new();
        let mut loaded = 0;
        if resume {
            if let Ok(text) = fs::read_to_string(&path) {
                for line in text.lines() {
                    // A torn final line (no trailing newline or cut mid-
                    // record) fails to parse; everything before it counts.
                    let (Some(cell), Some(bits)) = (
                        json_str_field(line, "cell"),
                        json_str_field(line, "bits").and_then(|b| u64::from_str_radix(b, 16).ok()),
                    ) else {
                        break;
                    };
                    cells.insert(cell.to_owned(), bits);
                    loaded += 1;
                }
            }
        }
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| Error::Io(format!("open checkpoint {}: {e}", path.display())))?;
        let ckpt = Checkpoint {
            grid: grid.to_owned(),
            path: path.clone(),
            file: Mutex::new(file),
            cells: Mutex::new(cells),
            loaded,
        };
        if !resume {
            // Fresh run: drop any previous progress for this grid.
            let file = fs::File::create(&path)
                .map_err(|e| Error::Io(format!("truncate checkpoint {}: {e}", path.display())))?;
            *ckpt
                .file
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = file;
        } else if loaded > 0 {
            // The loaded prefix may end in a torn record: rewrite the log
            // to exactly the accepted cells so the append stream stays
            // line-aligned.
            ckpt.rewrite()?;
        }
        mps_obs::event(
            "store.resume",
            &[
                ("grid", grid.to_owned()),
                ("loaded_cells", loaded.to_string()),
                ("resume", resume.to_string()),
            ],
        );
        Ok(ckpt)
    }

    fn rewrite(&self) -> Result<()> {
        let cells = self
            .cells
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut lines: Vec<String> = cells
            .iter()
            .map(|(cell, bits)| record_line(cell, *bits))
            .collect();
        lines.sort(); // deterministic on-disk order
        let mut file = fs::File::create(&self.path)
            .map_err(|e| Error::Io(format!("rewrite checkpoint {}: {e}", self.path.display())))?;
        for line in &lines {
            file.write_all(line.as_bytes())
                .map_err(|e| Error::Io(e.to_string()))?;
        }
        file.sync_all().map_err(|e| Error::Io(e.to_string()))?;
        *self
            .file
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| Error::Io(e.to_string()))?;
        Ok(())
    }

    /// The grid this checkpoint tracks.
    pub fn grid(&self) -> &str {
        &self.grid
    }

    /// How many completed cells the open loaded (0 on a fresh run).
    pub fn loaded(&self) -> usize {
        self.loaded
    }

    /// The recorded result of `cell`, if that cell already completed.
    pub fn lookup(&self, cell: &str) -> Option<f64> {
        self.cells
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(cell)
            .map(|&bits| f64::from_bits(bits))
    }

    /// Records a completed cell, flushing it to disk before returning so
    /// a crash immediately after cannot lose it.
    pub fn record(&self, cell: &str, value: f64) {
        debug_assert!(
            !cell.contains(['"', '\\', '\n']),
            "cell ids must be JSON-literal-safe: {cell:?}"
        );
        let bits = value.to_bits();
        {
            let mut cells = self
                .cells
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if cells.insert(cell.to_owned(), bits).is_some() {
                return; // already durable; don't write a duplicate line
            }
        }
        let line = record_line(cell, bits);
        {
            let mut file = self
                .file
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            // Best effort: a failed append degrades resume, not results.
            let _ = file.write_all(line.as_bytes());
            let _ = file.flush();
            let _ = file.sync_data();
        }
        mps_obs::counter("store.ckpt.recorded").incr();
        let n = RECORDED_CELLS.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(limit) = abort_after() {
            if n >= limit {
                eprintln!("MPS_ABORT_AFTER_CELLS={limit}: simulating a killed run");
                std::process::abort();
            }
        }
    }
}

fn record_line(cell: &str, bits: u64) -> String {
    format!("{{\"schema\":{SCHEMA},\"cell\":\"{cell}\",\"bits\":\"{bits:016x}\"}}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir().join(format!(
            "mps-ckpt-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        Store::open(dir).unwrap()
    }

    #[test]
    fn records_survive_reopen_with_resume() {
        let s = tmp_store("reopen");
        {
            let c = Checkpoint::open(&s, "fig9", "scale=test", false).unwrap();
            c.record("w=5", 0.25);
            c.record("w=10", 0.75);
        }
        let c = Checkpoint::open(&s, "fig9", "scale=test", true).unwrap();
        assert_eq!(c.loaded(), 2);
        assert_eq!(c.lookup("w=5"), Some(0.25));
        assert_eq!(c.lookup("w=10"), Some(0.75));
        assert_eq!(c.lookup("w=20"), None);
    }

    #[test]
    fn fresh_open_discards_previous_progress() {
        let s = tmp_store("fresh");
        {
            let c = Checkpoint::open(&s, "grid", "x", false).unwrap();
            c.record("a", 1.0);
        }
        let c = Checkpoint::open(&s, "grid", "x", false).unwrap();
        assert_eq!(c.loaded(), 0);
        assert_eq!(c.lookup("a"), None);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let s = tmp_store("torn");
        let path = {
            let c = Checkpoint::open(&s, "grid", "x", false).unwrap();
            c.record("a", 1.5);
            c.record("b", 2.5);
            c.path.clone()
        };
        // Simulate a kill mid-append: cut the final record in half.
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() - 10]).unwrap();
        let c = Checkpoint::open(&s, "grid", "x", true).unwrap();
        assert_eq!(c.lookup("a"), Some(1.5));
        assert_eq!(c.lookup("b"), None, "torn record must not resurrect");
        // And the log must be append-consistent after recovery.
        c.record("b", 2.5);
        drop(c);
        let c = Checkpoint::open(&s, "grid", "x", true).unwrap();
        assert_eq!(c.loaded(), 2);
    }

    #[test]
    fn distinct_specs_use_distinct_logs() {
        let s = tmp_store("spec");
        let a = Checkpoint::open(&s, "grid", "scale=test", false).unwrap();
        a.record("w=5", 0.1);
        let b = Checkpoint::open(&s, "grid", "scale=small", true).unwrap();
        assert_eq!(b.loaded(), 0);
    }

    #[test]
    fn values_round_trip_bit_exactly() {
        let s = tmp_store("bits");
        let c = Checkpoint::open(&s, "grid", "x", false).unwrap();
        for (i, v) in [f64::NAN, -0.0, 1.0 / 3.0, f64::MIN_POSITIVE]
            .into_iter()
            .enumerate()
        {
            c.record(&format!("cell{i}"), v);
        }
        drop(c);
        let c = Checkpoint::open(&s, "grid", "x", true).unwrap();
        assert_eq!(c.lookup("cell0").unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(c.lookup("cell1").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(c.lookup("cell2"), Some(1.0 / 3.0));
        assert_eq!(c.lookup("cell3"), Some(f64::MIN_POSITIVE));
    }
}

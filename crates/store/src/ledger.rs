//! The run ledger: one durable record per harness invocation.
//!
//! Where a [`crate::Checkpoint`] tracks progress *inside* one run, the
//! ledger tracks runs themselves: an append-only, schema-versioned JSONL
//! file (`ledger.jsonl` at the store root) gaining one record per
//! completed `mps-harness run` — config hash, kernel revision, scale,
//! jobs, per-experiment durations, store hit ratio and the final
//! convergence summary. `mps-harness runs list|show` reads it back and
//! `mps-harness report` renders it into the HTML dashboard, so run-over-
//! run comparisons need no external database.
//!
//! Records reuse the obs JSONL event encoding (`{"type":"event",
//! "name":"run","fields":{…}}`), so any trace tooling parses the ledger
//! too. Like the checkpoint log, the file tolerates a torn trailing line:
//! reading stops at the first unparsable record and keeps the complete
//! prefix. Records written by a *newer* ledger schema are skipped rather
//! than misread; old-schema records remain readable forever (fields are
//! free-form strings).

use crate::error::{Error, Result};
use crate::store::Store;
use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Current ledger record schema. Bump when a field changes meaning;
/// readers skip records from the future instead of misreading them.
pub const LEDGER_SCHEMA: u32 = 1;

/// File name of the ledger inside a store root.
const LEDGER_FILE: &str = "ledger.jsonl";

/// One run's durable summary: free-form ordered string fields.
///
/// Field names follow the workspace dotted convention (`exp.fig3.ms`,
/// `store.hit_ratio`, `conv.convergence.fig3.c2.cv`); values are the
/// exact strings the run formatted, so floats round-trip bit-identically
/// through Rust's shortest-representation `Display`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunRecord {
    /// Ordered key/value payload.
    pub fields: BTreeMap<String, String>,
}

impl RunRecord {
    /// An empty record stamped with the current [`LEDGER_SCHEMA`].
    pub fn new() -> Self {
        let mut r = RunRecord {
            fields: BTreeMap::new(),
        };
        r.set("ledger_schema", LEDGER_SCHEMA.to_string());
        r
    }

    /// Sets one field (replacing any previous value).
    pub fn set(&mut self, key: &str, value: impl Into<String>) {
        self.fields.insert(key.to_owned(), value.into());
    }

    /// The field's raw string value, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields.get(key).map(String::as_str)
    }

    /// The field parsed as `f64`, if present and numeric.
    pub fn f64(&self, key: &str) -> Option<f64> {
        self.get(key)?.parse().ok()
    }

    /// The field parsed as `u64`, if present and numeric.
    pub fn u64(&self, key: &str) -> Option<u64> {
        self.get(key)?.parse().ok()
    }

    /// The schema this record was written under (0 if absent).
    pub fn schema(&self) -> u32 {
        self.get("ledger_schema")
            .and_then(|s| s.parse().ok())
            .unwrap_or(0)
    }
}

/// An append-only ledger file.
#[derive(Debug, Clone)]
pub struct Ledger {
    path: PathBuf,
}

impl Ledger {
    /// The ledger at an explicit file path (need not exist yet).
    pub fn at_path(path: impl Into<PathBuf>) -> Self {
        Ledger { path: path.into() }
    }

    /// The store's ledger (`<root>/ledger.jsonl`).
    pub fn in_store(store: &Store) -> Self {
        Ledger::at_path(store.root().join(LEDGER_FILE))
    }

    /// The ledger's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record, fsyncing before returning so a crash
    /// immediately after cannot lose it.
    ///
    /// # Errors
    ///
    /// Propagates file create/append failures.
    pub fn append(&self, record: &RunRecord) -> Result<()> {
        let fields: Vec<(&str, String)> = record
            .fields
            .iter()
            .map(|(k, v)| (k.as_str(), v.clone()))
            .collect();
        let mut line = mps_obs::jsonl::encode_event("run", &fields);
        line.push('\n');
        // A crash mid-append leaves a torn line with no trailing newline;
        // isolate it on its own (unparsable, hence skipped) line instead
        // of gluing the new record onto it.
        if fs::metadata(&self.path).is_ok_and(|m| m.len() > 0)
            && !fs::read(&self.path).is_ok_and(|b| b.ends_with(b"\n"))
        {
            line.insert(0, '\n');
        }
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .map_err(|e| Error::Io(format!("open ledger {}: {e}", self.path.display())))?;
        file.write_all(line.as_bytes())
            .map_err(|e| Error::Io(format!("append ledger: {e}")))?;
        file.sync_data()
            .map_err(|e| Error::Io(format!("sync ledger: {e}")))?;
        mps_obs::counter("ledger.appended").incr();
        Ok(())
    }

    /// Reads every complete record, oldest first.
    ///
    /// A missing file is an empty ledger. Torn lines (crash mid-append)
    /// and unparsable garbage are skipped, keeping every complete record
    /// around them. Records stamped with a schema newer than
    /// [`LEDGER_SCHEMA`] are skipped too.
    ///
    /// # Errors
    ///
    /// Propagates read failures other than "file does not exist".
    pub fn read_all(&self) -> Result<Vec<RunRecord>> {
        let text = match fs::read_to_string(&self.path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => {
                return Err(Error::Io(format!(
                    "read ledger {}: {e}",
                    self.path.display()
                )))
            }
        };
        let mut out = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let Ok(mps_obs::jsonl::Record::Event { name, fields }) = mps_obs::jsonl::parse(line)
            else {
                continue; // torn or garbled line: keep the records around it
            };
            if name != "run" {
                continue; // foreign event in the file: ignore, keep reading
            }
            let rec = RunRecord { fields };
            if rec.schema() > LEDGER_SCHEMA {
                continue; // from the future: skip rather than misread
            }
            out.push(rec);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_ledger(tag: &str) -> Ledger {
        let dir = std::env::temp_dir().join(format!(
            "mps-ledger-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        Ledger::at_path(dir.join(LEDGER_FILE))
    }

    fn record(i: u32) -> RunRecord {
        let mut r = RunRecord::new();
        r.set("wall_ms", (1000 + i).to_string());
        r.set("conv.fig3.cv", format!("{}", 0.4 + f64::from(i)));
        r
    }

    #[test]
    fn appended_records_read_back_in_order() {
        let l = tmp_ledger("order");
        assert!(l.read_all().unwrap().is_empty(), "missing file is empty");
        for i in 0..3 {
            l.append(&record(i)).unwrap();
        }
        let recs = l.read_all().unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].u64("wall_ms"), Some(1000));
        assert_eq!(recs[2].u64("wall_ms"), Some(1002));
        assert_eq!(recs[0].schema(), LEDGER_SCHEMA);
        assert_eq!(recs[1].f64("conv.fig3.cv"), Some(1.4));
    }

    #[test]
    fn torn_tail_is_dropped_and_later_appends_survive() {
        let l = tmp_ledger("torn");
        l.append(&record(0)).unwrap();
        l.append(&record(1)).unwrap();
        let text = fs::read_to_string(l.path()).unwrap();
        fs::write(l.path(), &text[..text.len() - 7]).unwrap();
        assert_eq!(
            l.read_all().unwrap().len(),
            1,
            "torn record must not resurrect"
        );
        // The next run appends after the crash: its record must parse
        // (append isolates the torn bytes on their own line).
        l.append(&record(2)).unwrap();
        let recs = l.read_all().unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].u64("wall_ms"), Some(1002));
    }

    #[test]
    fn future_schema_records_are_skipped() {
        let l = tmp_ledger("future");
        l.append(&record(0)).unwrap();
        let mut future = RunRecord::new();
        future.set("ledger_schema", (LEDGER_SCHEMA + 1).to_string());
        l.append(&future).unwrap();
        l.append(&record(2)).unwrap();
        let recs = l.read_all().unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].u64("wall_ms"), Some(1002));
    }

    #[test]
    fn foreign_events_are_ignored_not_fatal() {
        let l = tmp_ledger("foreign");
        l.append(&record(0)).unwrap();
        let mut f = fs::OpenOptions::new().append(true).open(l.path()).unwrap();
        writeln!(
            f,
            "{}",
            mps_obs::jsonl::encode_event("heartbeat", &[("cells_done", "3".to_owned())])
        )
        .unwrap();
        drop(f);
        l.append(&record(1)).unwrap();
        let recs = l.read_all().unwrap();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn float_fields_round_trip_exactly() {
        let l = tmp_ledger("floats");
        let mut r = RunRecord::new();
        let v = 1.0 / 3.0;
        r.set("conv.x.cv", format!("{v}"));
        l.append(&r).unwrap();
        let recs = l.read_all().unwrap();
        assert_eq!(recs[0].f64("conv.x.cv"), Some(v), "bit-exact round trip");
    }
}

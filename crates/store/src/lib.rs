//! `mps-store` — durable artifacts for long-running studies.
//!
//! The paper's workflow (a large approximate-simulation pass feeding a
//! detailed-simulation phase) is exactly the kind of restartable batch
//! job that must survive crashes: this crate provides the persistence
//! layer everything above it builds on.
//!
//! * [`Store`] — a content-addressed, schema-versioned on-disk artifact
//!   store with atomic write-then-rename, checksum + truncation
//!   detection, quarantine of poisoned files and capacity-cap eviction.
//!   Hits, misses, puts, corruptions and evictions are mirrored into the
//!   `store.*` observability counters.
//! * [`Checkpoint`] — append-only JSONL progress logs that let a killed
//!   experiment grid resume bit-identically from its last completed cell.
//! * [`Ledger`] — an append-only, schema-versioned run ledger: one
//!   [`RunRecord`] per harness invocation (config hash, durations, store
//!   hit ratio, convergence summary), read back by `mps-harness runs`
//!   and rendered by `mps-harness report`.
//! * [`Enc`]/[`Dec`] — the offline-friendly binary codec artifacts are
//!   serialized with (exact `f64` bit patterns, bounds-checked reads).
//! * [`Error`] — the workspace-wide durable-run error enum, re-exported
//!   by the `mps` facade as `mps::Error`.
//!
//! See `docs/durability.md` for the store layout, keying scheme, resume
//! semantics and the failure matrix.

mod checkpoint;
mod codec;
mod error;
mod ledger;
#[allow(clippy::module_inception)]
mod store;

pub use checkpoint::Checkpoint;
pub use codec::{fnv1a64, Dec, Enc};
pub use error::{Error, Result};
pub use ledger::{Ledger, RunRecord, LEDGER_SCHEMA};
pub use store::{ArtifactKey, Store, StoreStats, KERNEL_REV, MIN_SCHEMA, SCHEMA};

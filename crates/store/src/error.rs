//! The workspace-wide durable-run error type.
//!
//! Everything that used to `panic!`/`unwrap` on an I/O hiccup in the
//! harness and store paths now surfaces one of these variants instead.
//! The enum is `#[non_exhaustive]`: new failure classes may be added
//! without a breaking release, so downstream matches need a `_` arm.

use std::fmt;

/// Error type shared by the artifact store, the study context and the
/// fault-tolerant experiment runner (re-exported as `mps::Error`).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// An underlying I/O operation failed (message includes the path).
    Io(String),
    /// A stored artifact failed validation: truncated payload, checksum
    /// mismatch, malformed header or undecodable body. The offending file
    /// is quarantined and the artifact recomputed.
    Corrupt {
        /// Path (or logical name) of the poisoned artifact.
        path: String,
        /// What exactly failed to validate.
        detail: String,
    },
    /// An artifact was written by an incompatible (newer) schema revision.
    SchemaVersion {
        /// Path of the artifact.
        path: String,
        /// Schema number found in the header.
        found: u32,
        /// Highest schema this reader supports.
        supported: u32,
    },
    /// A worker did not finish within its per-experiment deadline.
    Timeout {
        /// What timed out (experiment or artifact name).
        what: String,
        /// The deadline that was exceeded, in seconds.
        secs: u64,
    },
    /// A worker terminated without producing a result (killed run,
    /// disconnected channel, interrupted syscall).
    Interrupted {
        /// What was interrupted.
        what: String,
    },
    /// A caller passed an argument outside the domain the study supports
    /// (e.g. a core count with no defined population).
    InvalidInput(String),
    /// An isolated worker panicked; the payload is the panic message.
    /// Bounded retry may still recover the experiment.
    WorkerPanic {
        /// What panicked.
        what: String,
        /// The panic payload, stringified.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(msg) => write!(f, "i/o error: {msg}"),
            Error::Corrupt { path, detail } => {
                write!(f, "corrupt artifact {path}: {detail}")
            }
            Error::SchemaVersion {
                path,
                found,
                supported,
            } => write!(
                f,
                "artifact {path} has schema {found}, this reader supports <= {supported}"
            ),
            Error::Timeout { what, secs } => {
                write!(f, "{what} exceeded its {secs}s deadline")
            }
            Error::Interrupted { what } => write!(f, "{what} was interrupted"),
            Error::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            Error::WorkerPanic { what, detail } => {
                write!(f, "worker running {what} panicked: {detail}")
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::Interrupted {
            Error::Interrupted {
                what: "i/o operation".to_owned(),
            }
        } else {
            Error::Io(e.to_string())
        }
    }
}

/// Convenience alias used throughout the store and harness.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::SchemaVersion {
            path: "a.mps".into(),
            found: 3,
            supported: 2,
        };
        assert!(e.to_string().contains("schema 3"));
        assert!(e.to_string().contains("<= 2"));
    }

    #[test]
    fn io_errors_convert() {
        let e: Error = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, Error::Io(_)));
        let e: Error = std::io::Error::new(std::io::ErrorKind::Interrupted, "sig").into();
        assert!(matches!(e, Error::Interrupted { .. }));
    }
}

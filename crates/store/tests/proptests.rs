//! Property-based tests for the artifact store: round-trip fidelity and
//! truncated-file recovery for arbitrary payloads and cut points.

#![recursion_limit = "2048"]

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

use mps_store::{ArtifactKey, Checkpoint, Dec, Enc, Store};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_store(tag: &str) -> Store {
    let dir = std::env::temp_dir().join(format!(
        "mps-store-prop-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    Store::open(dir).unwrap()
}

fn artifact_file(store: &Store, key: &ArtifactKey) -> std::path::PathBuf {
    let dir = store.root().join("artifacts");
    let entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .collect();
    assert_eq!(
        entries.len(),
        1,
        "expected exactly one artifact for {key:?}"
    );
    entries.into_iter().next().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // put → get returns the payload byte for byte, for arbitrary content
    // (including bytes that look like newlines, headers or footers).
    #[test]
    fn payload_round_trips(payload in proptest::collection::vec(0u8..=255, 0..512)) {
        let s = fresh_store("rt");
        let k = ArtifactKey::new("prop", "case");
        s.put(&k, &payload).unwrap();
        prop_assert_eq!(s.get(&k).unwrap(), payload);
        prop_assert_eq!(s.stats().hits, 1);
    }

    // Codec round-trip: an encoded f64 table decodes to bit-identical
    // values through a store put/get cycle.
    #[test]
    fn f64_tables_round_trip_bit_exactly(vals in proptest::collection::vec(-1.0e12f64..1.0e12, 0..128)) {
        let s = fresh_store("f64");
        let k = ArtifactKey::new("prop", "f64s");
        let mut e = Enc::new();
        e.f64s(&vals);
        s.put(&k, &e.into_bytes()).unwrap();
        let bytes = s.get(&k).unwrap();
        let mut d = Dec::new(&bytes, "f64s");
        let got = d.f64s().unwrap();
        d.finish().unwrap();
        let want_bits: Vec<u64> = vals.iter().map(|v| v.to_bits()).collect();
        let got_bits: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(got_bits, want_bits);
    }

    // Truncating the on-disk record at ANY byte boundary must be detected:
    // get() degrades to a miss (quarantining the file), never panics and
    // never returns wrong data — and a fresh put() heals the slot.
    #[test]
    fn any_truncation_recovers(payload in proptest::collection::vec(0u8..=255, 1..256), cut_frac in 0.0f64..1.0) {
        let s = fresh_store("trunc");
        let k = ArtifactKey::new("prop", "trunc");
        s.put(&k, &payload).unwrap();
        let path = artifact_file(&s, &k);
        let full = std::fs::read(&path).unwrap();
        let cut = ((full.len() - 1) as f64 * cut_frac) as usize;
        std::fs::write(&path, &full[..cut]).unwrap();
        // Cutting exactly at the payload/footer boundary of a record
        // can never reproduce a valid footer, so any Some() would be a
        // detection failure…
        prop_assert!(s.get(&k).is_none(), "truncated record served as valid (cut at {})", cut);
        prop_assert!(s.stats().corrupt >= 1, "truncation must be counted as corruption");
        s.put(&k, &payload).unwrap();
        prop_assert_eq!(s.get(&k).unwrap(), payload);
    }

    // A single flipped bit anywhere in the payload region is caught by
    // the checksum.
    #[test]
    fn any_bit_flip_is_caught(payload in proptest::collection::vec(0u8..=255, 8..128), pos_frac in 0.0f64..1.0, bit in 0u32..8) {
        let s = fresh_store("flip");
        let k = ArtifactKey::new("prop", "flip");
        s.put(&k, &payload).unwrap();
        let path = artifact_file(&s, &k);
        let mut bytes = std::fs::read(&path).unwrap();
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        let payload_region = header_end..bytes.len() - 16;
        let span = payload_region.end - payload_region.start;
        let pos = payload_region.start + ((span - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        prop_assert!(s.get(&k).is_none(), "bit flip at {} must not serve", pos);
    }

    // Checkpoint logs cut at an arbitrary byte recover a strict prefix of
    // the recorded cells, each with its exact value.
    #[test]
    fn checkpoint_truncation_recovers_prefix(n in 1usize..20, cut_frac in 0.0f64..1.0) {
        let s = fresh_store("ckpt");
        let values: Vec<f64> = (0..n).map(|i| (i as f64) * 0.37 - 1.0).collect();
        {
            let c = Checkpoint::open(&s, "grid", "spec", false).unwrap();
            for (i, &v) in values.iter().enumerate() {
                c.record(&format!("cell{i:03}"), v);
            }
        }
        let dir = s.root().join("checkpoints");
        let path = std::fs::read_dir(&dir).unwrap().flatten().next().unwrap().path();
        let full = std::fs::read(&path).unwrap();
        let cut = (full.len() as f64 * cut_frac) as usize;
        std::fs::write(&path, &full[..cut]).unwrap();
        let c = Checkpoint::open(&s, "grid", "spec", true).unwrap();
        prop_assert!(c.loaded() <= n);
        // Loaded cells must be a prefix with exact values; cells past the
        // first missing one must all be absent.
        let mut seen_gap = false;
        for (i, &v) in values.iter().enumerate() {
            match c.lookup(&format!("cell{i:03}")) {
                Some(got) => {
                    prop_assert!(!seen_gap, "cell{} present after a gap", i);
                    prop_assert_eq!(got.to_bits(), v.to_bits());
                }
                None => seen_gap = true,
            }
        }
    }
}

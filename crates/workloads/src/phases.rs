//! Program phases.
//!
//! Real benchmarks alternate between behaviours (compute bursts, memory
//! sweeps, ...). [`PhasedTrace`] composes several [`SyntheticTrace`]
//! generators into one µop stream that cycles through them with fixed
//! per-phase lengths — the workload model behind the co-phase-matrix
//! simulation method the paper's footnote 4 points to (Van Biesbrouck,
//! Eeckhout & Calder).

use crate::synth::SyntheticTrace;
use crate::uop::{TraceSource, Uop};

/// A deterministic multi-phase µop stream.
///
/// # Example
///
/// ```
/// use mps_workloads::{PhasedTrace, SynthParams, SyntheticTrace, TraceSource};
///
/// let compute = SyntheticTrace::new(SynthParams {
///     load_frac: 0.1, ..SynthParams::default() });
/// let memory = SyntheticTrace::new(SynthParams {
///     load_frac: 0.4, ..SynthParams::default() });
/// let mut t = PhasedTrace::new(vec![(compute, 1_000), (memory, 500)]);
/// let first = t.next_uop();
/// t.reset();
/// assert_eq!(t.next_uop(), first);
/// ```
#[derive(Debug, Clone)]
pub struct PhasedTrace {
    phases: Vec<(SyntheticTrace, u64)>,
    current: usize,
    remaining: u64,
}

impl PhasedTrace {
    /// Composes phases as `(generator, µops per visit)` pairs, cycled in
    /// order forever.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any phase length is zero.
    pub fn new(phases: Vec<(SyntheticTrace, u64)>) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        assert!(
            phases.iter().all(|(_, len)| *len > 0),
            "phase lengths must be positive"
        );
        let remaining = phases[0].1;
        PhasedTrace {
            phases,
            current: 0,
            remaining,
        }
    }

    /// Number of phases.
    pub fn num_phases(&self) -> usize {
        self.phases.len()
    }

    /// The phase index the *next* µop will come from.
    pub fn current_phase(&self) -> usize {
        self.current
    }

    /// Per-phase lengths in µops.
    pub fn phase_lengths(&self) -> Vec<u64> {
        self.phases.iter().map(|(_, len)| *len).collect()
    }

    /// Total µops of one full cycle through all phases.
    pub fn cycle_length(&self) -> u64 {
        self.phases.iter().map(|(_, len)| len).sum()
    }
}

impl TraceSource for PhasedTrace {
    fn next_uop(&mut self) -> Uop {
        if self.remaining == 0 {
            self.current = (self.current + 1) % self.phases.len();
            self.remaining = self.phases[self.current].1;
        }
        self.remaining -= 1;
        self.phases[self.current].0.next_uop()
    }

    fn reset(&mut self) {
        for (t, _) in &mut self.phases {
            t.reset();
        }
        self.current = 0;
        self.remaining = self.phases[0].1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthParams;
    use crate::uop::UopKind;

    fn phase(load_frac: f64, seed: u64) -> SyntheticTrace {
        SyntheticTrace::new(SynthParams {
            load_frac,
            store_frac: 0.0,
            branch_frac: 0.0,
            longlat_frac: 0.0,
            seed,
            ..SynthParams::default()
        })
    }

    #[test]
    fn phases_alternate_with_given_lengths() {
        let mut t = PhasedTrace::new(vec![(phase(1.0, 1), 100), (phase(0.0, 2), 100)]);
        let first: Vec<Uop> = (0..100).map(|_| t.next_uop()).collect();
        let second: Vec<Uop> = (0..100).map(|_| t.next_uop()).collect();
        assert!(first.iter().all(|u| u.kind == UopKind::Load));
        assert!(second.iter().all(|u| u.kind != UopKind::Load));
        assert_eq!(t.current_phase(), 1);
        // Third hundred wraps back to phase 0.
        let third: Vec<Uop> = (0..100).map(|_| t.next_uop()).collect();
        assert!(third.iter().all(|u| u.kind == UopKind::Load));
    }

    #[test]
    fn reset_restores_exactly() {
        let mut t = PhasedTrace::new(vec![(phase(0.5, 3), 37), (phase(0.1, 4), 53)]);
        let a: Vec<Uop> = (0..500).map(|_| t.next_uop()).collect();
        t.reset();
        let b: Vec<Uop> = (0..500).map(|_| t.next_uop()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn phase_generators_pause_and_resume() {
        // Phase 0's generator must continue where it left off, not restart.
        let mut phased = PhasedTrace::new(vec![(phase(0.3, 5), 10), (phase(0.0, 6), 10)]);
        let mut solo = phase(0.3, 5);
        let mut phase0_uops = Vec::new();
        for i in 0..100 {
            let u = phased.next_uop();
            if (i / 10) % 2 == 0 {
                phase0_uops.push(u);
            }
        }
        let expected: Vec<Uop> = (0..phase0_uops.len()).map(|_| solo.next_uop()).collect();
        assert_eq!(phase0_uops, expected);
    }

    #[test]
    fn cycle_length_and_metadata() {
        let t = PhasedTrace::new(vec![(phase(0.2, 7), 30), (phase(0.4, 8), 70)]);
        assert_eq!(t.num_phases(), 2);
        assert_eq!(t.cycle_length(), 100);
        assert_eq!(t.phase_lengths(), vec![30, 70]);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_panic() {
        PhasedTrace::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_length_phase_panics() {
        PhasedTrace::new(vec![(phase(0.1, 9), 0)]);
    }
}

//! Trace capture and replay — the reproduction's analogue of the
//! SimpleScalar **EIO traces** the paper relies on ("We used SimpleScalar
//! EIO tracing feature, which is included in the Zesto simulation
//! package. ... traces represent exactly the same sequence of dynamic
//! µops").
//!
//! [`write_trace`] captures the first `n` µops of any [`TraceSource`] into
//! a compact binary format; [`FileTrace`] replays a captured buffer as a
//! `TraceSource` (cycling at the end, matching the thread-restart rule).
//! The codec is self-contained: a 16-byte header (magic, version, count)
//! followed by fixed-width little-endian records.

use crate::uop::{Reg, TraceSource, Uop, UopKind};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"MPST";
const VERSION: u32 = 1;
/// Bytes per encoded µop record.
const RECORD_BYTES: usize = 1 + 3 + 8 + 1 + 8 + 1 + 8;

fn kind_code(kind: UopKind) -> u8 {
    match kind {
        UopKind::IntAlu => 0,
        UopKind::IntMul => 1,
        UopKind::IntDiv => 2,
        UopKind::FpAdd => 3,
        UopKind::FpMul => 4,
        UopKind::FpDiv => 5,
        UopKind::Load => 6,
        UopKind::Store => 7,
        UopKind::Branch => 8,
    }
}

fn kind_from(code: u8) -> Option<UopKind> {
    Some(match code {
        0 => UopKind::IntAlu,
        1 => UopKind::IntMul,
        2 => UopKind::IntDiv,
        3 => UopKind::FpAdd,
        4 => UopKind::FpMul,
        5 => UopKind::FpDiv,
        6 => UopKind::Load,
        7 => UopKind::Store,
        8 => UopKind::Branch,
        _ => return None,
    })
}

fn reg_byte(r: Option<Reg>) -> u8 {
    r.map_or(0xFF, |x| x)
}

fn reg_from(b: u8) -> Option<Reg> {
    if b == 0xFF {
        None
    } else {
        Some(b)
    }
}

/// Captures the first `n` µops of `source` (after a reset) into `out`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn write_trace<W: Write>(source: &mut dyn TraceSource, n: u64, mut out: W) -> io::Result<()> {
    assert!(n > 0, "cannot capture an empty trace");
    source.reset();
    out.write_all(MAGIC)?;
    out.write_all(&VERSION.to_le_bytes())?;
    out.write_all(&n.to_le_bytes())?;
    let mut buf = [0u8; RECORD_BYTES];
    for _ in 0..n {
        let u = source.next_uop();
        buf[0] = kind_code(u.kind);
        buf[1] = reg_byte(u.srcs[0]);
        buf[2] = reg_byte(u.srcs[1]);
        buf[3] = reg_byte(u.dst);
        buf[4..12].copy_from_slice(&u.addr.to_le_bytes());
        buf[12] = u.size;
        buf[13..21].copy_from_slice(&u.pc.to_le_bytes());
        buf[21] = u8::from(u.taken);
        buf[22..30].copy_from_slice(&u.target.to_le_bytes());
        out.write_all(&buf)?;
    }
    source.reset();
    Ok(())
}

/// A captured trace replayed as a [`TraceSource`] (cycling past the end).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileTrace {
    uops: Vec<Uop>,
    pos: usize,
}

impl FileTrace {
    /// Parses a captured trace from a reader.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a bad magic/version/record, or any
    /// underlying I/O error.
    pub fn read<R: Read>(mut input: R) -> io::Result<FileTrace> {
        let mut header = [0u8; 16];
        input.read_exact(&mut header)?;
        if &header[0..4] != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported trace version {version}"),
            ));
        }
        let n = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "empty trace"));
        }
        let mut uops = Vec::with_capacity(n as usize);
        let mut buf = [0u8; RECORD_BYTES];
        for i in 0..n {
            input
                .read_exact(&mut buf)
                .map_err(|e| io::Error::new(e.kind(), format!("truncated at record {i}: {e}")))?;
            let kind = kind_from(buf[0]).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad µop kind {} at record {i}", buf[0]),
                )
            })?;
            uops.push(Uop {
                kind,
                srcs: [reg_from(buf[1]), reg_from(buf[2])],
                dst: reg_from(buf[3]),
                addr: u64::from_le_bytes(buf[4..12].try_into().expect("8 bytes")),
                size: buf[12],
                pc: u64::from_le_bytes(buf[13..21].try_into().expect("8 bytes")),
                taken: buf[21] != 0,
                target: u64::from_le_bytes(buf[22..30].try_into().expect("8 bytes")),
            });
        }
        Ok(FileTrace { uops, pos: 0 })
    }

    /// Number of captured µops (one cycle of the replay).
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether the trace is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }
}

impl TraceSource for FileTrace {
    fn next_uop(&mut self) -> Uop {
        let u = self.uops[self.pos];
        self.pos = (self.pos + 1) % self.uops.len();
        u
    }

    fn reset(&mut self) {
        self.pos = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::benchmark_by_name;

    #[test]
    fn round_trip_preserves_uops_exactly() {
        let bench = benchmark_by_name("gcc").unwrap();
        let mut original = bench.trace();
        let mut buf = Vec::new();
        write_trace(&mut original, 5_000, &mut buf).unwrap();
        assert_eq!(buf.len(), 16 + 5_000 * RECORD_BYTES);

        let mut replay = FileTrace::read(buf.as_slice()).unwrap();
        assert_eq!(replay.len(), 5_000);
        original.reset();
        for i in 0..5_000 {
            assert_eq!(replay.next_uop(), original.next_uop(), "µop {i}");
        }
    }

    #[test]
    fn replay_cycles_like_thread_restart() {
        let bench = benchmark_by_name("hmmer").unwrap();
        let mut buf = Vec::new();
        write_trace(&mut bench.trace(), 100, &mut buf).unwrap();
        let mut replay = FileTrace::read(buf.as_slice()).unwrap();
        let first: Vec<Uop> = (0..100).map(|_| replay.next_uop()).collect();
        let second: Vec<Uop> = (0..100).map(|_| replay.next_uop()).collect();
        assert_eq!(first, second, "replay must cycle");
        replay.reset();
        assert_eq!(replay.next_uop(), first[0]);
    }

    #[test]
    fn file_trace_drives_the_detailed_simulator() {
        // A captured trace must be a drop-in TraceSource.
        let bench = benchmark_by_name("povray").unwrap();
        let mut buf = Vec::new();
        write_trace(&mut bench.trace(), 1_000, &mut buf).unwrap();
        let replay = FileTrace::read(buf.as_slice()).unwrap();
        // Compare against the generator itself through a trivial consumer.
        let mut a = replay.clone();
        let mut b = bench.trace();
        for _ in 0..1_000 {
            assert_eq!(a.next_uop(), b.next_uop());
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = FileTrace::read(&b"NOPE0000000000000"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&[0u8; RECORD_BYTES]);
        let err = FileTrace::read(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn truncated_trace_is_rejected_with_position() {
        let bench = benchmark_by_name("mcf").unwrap();
        let mut buf = Vec::new();
        write_trace(&mut bench.trace(), 10, &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        let err = FileTrace::read(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("record 9"), "{err}");
    }

    #[test]
    fn bad_kind_byte_is_rejected() {
        let bench = benchmark_by_name("mcf").unwrap();
        let mut buf = Vec::new();
        write_trace(&mut bench.trace(), 2, &mut buf).unwrap();
        buf[16] = 42; // corrupt first record's kind
        let err = FileTrace::read(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("bad µop kind"));
    }

    #[test]
    fn empty_trace_header_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = FileTrace::read(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("empty"));
    }
}

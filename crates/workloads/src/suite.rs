//! The 22-benchmark suite (stand-ins for the paper's SPEC CPU2006 subset).
//!
//! The paper uses the 22 SPEC CPU2006 benchmarks it could simulate with
//! Zesto and classifies them by memory intensity in Table IV. Each entry
//! here is a [`SyntheticTrace`] parameterization named after — and
//! class-calibrated to — one of those benchmarks.
//!
//! Calibration note: the paper measures MPKI over 100M-instruction traces;
//! this reproduction runs configurable (much shorter) traces, so the
//! generators are calibrated such that the *measured* class over the
//! default experiment trace length matches the nominal class (verified by
//! an integration test in `mps-harness`). Footprints are scaled relative to
//! the Table II LLC sizes so that high-intensity benchmarks genuinely
//! compete for LLC capacity, which is what differentiates the replacement
//! policies under study.

use crate::classify::MpkiClass;
use crate::synth::{AccessPattern, SynthParams, SyntheticTrace};

/// One benchmark of the suite: identity, nominal Table IV class, and the
/// generator parameters realizing it.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// Dense benchmark id: index into [`suite`]'s vector.
    pub id: usize,
    /// Nominal memory-intensity class (paper Table IV).
    pub nominal_class: MpkiClass,
    /// Trace-generator parameters (including the benchmark name).
    pub params: SynthParams,
}

impl BenchmarkSpec {
    /// Benchmark name (e.g. `"mcf"`).
    pub fn name(&self) -> &str {
        &self.params.name
    }

    /// Instantiates a fresh deterministic trace generator.
    pub fn trace(&self) -> SyntheticTrace {
        SyntheticTrace::new(self.params.clone())
    }
}

macro_rules! spec {
    ($name:literal, $class:expr, $($field:ident : $value:expr),* $(,)?) => {
        // Some specs set every SynthParams field explicitly, making the
        // defaulting spread redundant for them — that is fine.
        #[allow(clippy::needless_update)]
        ($name, $class, SynthParams {
            name: $name.to_owned(),
            $($field: $value,)*
            ..SynthParams::default()
        })
    };
}

// Calibration model (steady state, after warmup): the cold stream sets the
// memory-traffic rate in lines per kilo-instruction,
//
//   MPKI ≈ (load_frac + store_frac) × cold_frac × 1000 × lines_per_access
//
// with cold_frac = 1 − hot_fraction − warm_fraction and lines_per_access =
// min(stride,64)/64 for sequential/strided patterns and 1 for random /
// pointer-chase. Hot sets are sized for the L1 (≤ 8 kB), warm sets for the
// capacity-scaled shared LLC (16 kB – 56 kB) — the warm sets are what the replacement
// policies compete on when benchmarks are combined.
fn raw_suite() -> Vec<(&'static str, MpkiClass, SynthParams)> {
    use AccessPattern::*;
    use MpkiClass::*;
    const K: u64 = 1 << 10;
    const M: u64 = 1 << 20;
    vec![
        // ------------------------------------------------------ Low MPKI
        spec!("povray", Low,
            fp_frac: 0.6, load_frac: 0.28, store_frac: 0.08, branch_frac: 0.12,
            longlat_frac: 0.06, hot_fraction: 0.60, hot_bytes: 4 * K,
            warm_fraction: 0.39, warm_bytes: 16 * K,
            footprint: 8 * M, pattern: Sequential { stride: 8 }, dep_chain: 0.35,
            branch_predictability: 0.985, code_footprint: 24 * K, seed: 0x5001),
        spec!("gromacs", Low,
            fp_frac: 0.7, load_frac: 0.30, store_frac: 0.10, branch_frac: 0.08,
            longlat_frac: 0.08, hot_fraction: 0.62, hot_bytes: 8 * K,
            warm_fraction: 0.37, warm_bytes: 16 * K,
            footprint: 8 * M, pattern: Sequential { stride: 8 },
            dep_chain: 0.3, branch_predictability: 0.99, seed: 0x5002),
        spec!("milc", Low,
            fp_frac: 0.8, load_frac: 0.32, store_frac: 0.12, branch_frac: 0.05,
            longlat_frac: 0.05, hot_fraction: 0.50, hot_bytes: 8 * K,
            warm_fraction: 0.485, warm_bytes: 16 * K,
            footprint: 8 * M, pattern: Sequential { stride: 8 },
            dep_chain: 0.25, branch_predictability: 0.995, seed: 0x5003),
        spec!("calculix", Low,
            fp_frac: 0.75, load_frac: 0.28, store_frac: 0.08, branch_frac: 0.07,
            longlat_frac: 0.10, hot_fraction: 0.70, hot_bytes: 4 * K,
            warm_fraction: 0.295, warm_bytes: 12 * K,
            footprint: 8 * M, pattern: Sequential { stride: 8 }, dep_chain: 0.4,
            branch_predictability: 0.99, seed: 0x5004),
        spec!("namd", Low,
            fp_frac: 0.85, load_frac: 0.30, store_frac: 0.06, branch_frac: 0.06,
            longlat_frac: 0.07, hot_fraction: 0.66, hot_bytes: 6 * K,
            warm_fraction: 0.337, warm_bytes: 12 * K,
            footprint: 8 * M, pattern: Sequential { stride: 8 }, dep_chain: 0.15,
            branch_predictability: 0.99, seed: 0x5005),
        spec!("dealII", Low,
            fp_frac: 0.55, load_frac: 0.32, store_frac: 0.10, branch_frac: 0.12,
            longlat_frac: 0.04, hot_fraction: 0.55, hot_bytes: 6 * K,
            warm_fraction: 0.44, warm_bytes: 16 * K,
            footprint: 8 * M, pattern: Sequential { stride: 8 }, dep_chain: 0.45,
            branch_predictability: 0.97, seed: 0x5006),
        spec!("perlbench", Low,
            fp_frac: 0.0, load_frac: 0.30, store_frac: 0.12, branch_frac: 0.20,
            longlat_frac: 0.02, hot_fraction: 0.60, hot_bytes: 8 * K,
            warm_fraction: 0.39, warm_bytes: 16 * K,
            footprint: 8 * M, pattern: Sequential { stride: 8 }, dep_chain: 0.5,
            branch_predictability: 0.95, code_footprint: 28 * K, seed: 0x5007),
        spec!("gobmk", Low,
            fp_frac: 0.0, load_frac: 0.26, store_frac: 0.10, branch_frac: 0.22,
            longlat_frac: 0.02, hot_fraction: 0.62, hot_bytes: 8 * K,
            warm_fraction: 0.37, warm_bytes: 12 * K,
            footprint: 8 * M, pattern: Sequential { stride: 8 }, dep_chain: 0.45,
            branch_predictability: 0.88, code_footprint: 28 * K, seed: 0x5008),
        spec!("h264ref", Low,
            fp_frac: 0.1, load_frac: 0.35, store_frac: 0.12, branch_frac: 0.10,
            longlat_frac: 0.04, hot_fraction: 0.55, hot_bytes: 4 * K,
            warm_fraction: 0.435, warm_bytes: 16 * K,
            footprint: 8 * M, pattern: Sequential { stride: 8 },
            dep_chain: 0.3, branch_predictability: 0.96, seed: 0x5009),
        spec!("hmmer", Low,
            fp_frac: 0.0, load_frac: 0.40, store_frac: 0.14, branch_frac: 0.08,
            longlat_frac: 0.02, hot_fraction: 0.70, hot_bytes: 4 * K,
            warm_fraction: 0.295, warm_bytes: 8 * K,
            footprint: 8 * M, pattern: Sequential { stride: 8 },
            dep_chain: 0.2, branch_predictability: 0.98, seed: 0x500A),
        spec!("sjeng", Low,
            fp_frac: 0.0, load_frac: 0.24, store_frac: 0.08, branch_frac: 0.20,
            longlat_frac: 0.03, hot_fraction: 0.65, hot_bytes: 8 * K,
            warm_fraction: 0.345, warm_bytes: 12 * K,
            footprint: 8 * M, pattern: Sequential { stride: 8 }, dep_chain: 0.4,
            branch_predictability: 0.91, seed: 0x500B),
        // --------------------------------------------------- Medium MPKI
        spec!("bzip2", Medium,
            fp_frac: 0.0, load_frac: 0.30, store_frac: 0.14, branch_frac: 0.14,
            longlat_frac: 0.02, hot_fraction: 0.45, hot_bytes: 8 * K,
            warm_fraction: 0.52, warm_bytes: 24 * K,
            footprint: 8 * M, pattern: Sequential { stride: 8 }, dep_chain: 0.35,
            branch_predictability: 0.93, seed: 0x6001),
        spec!("gcc", Medium,
            fp_frac: 0.0, load_frac: 0.28, store_frac: 0.12, branch_frac: 0.18,
            longlat_frac: 0.02, hot_fraction: 0.41, hot_bytes: 8 * K,
            warm_fraction: 0.57, warm_bytes: 32 * K,
            footprint: 8 * M, pattern: Sequential { stride: 16 }, dep_chain: 0.45,
            branch_predictability: 0.94, code_footprint: 32 * K, seed: 0x6002),
        spec!("astar", Medium,
            fp_frac: 0.0, load_frac: 0.30, store_frac: 0.08, branch_frac: 0.16,
            longlat_frac: 0.02, hot_fraction: 0.40, hot_bytes: 8 * K,
            warm_fraction: 0.595, warm_bytes: 24 * K,
            footprint: 8 * M, pattern: PointerChase, dep_chain: 0.5,
            branch_predictability: 0.9, seed: 0x6003),
        spec!("zeusmp", Medium,
            fp_frac: 0.7, load_frac: 0.30, store_frac: 0.12, branch_frac: 0.05,
            longlat_frac: 0.06, hot_fraction: 0.36, hot_bytes: 8 * K,
            warm_fraction: 0.61, warm_bytes: 32 * K,
            footprint: 8 * M, pattern: Sequential { stride: 16 },
            dep_chain: 0.3, branch_predictability: 0.99, seed: 0x6004),
        spec!("cactusADM", Medium,
            fp_frac: 0.75, load_frac: 0.32, store_frac: 0.14, branch_frac: 0.04,
            longlat_frac: 0.08, hot_fraction: 0.40, hot_bytes: 8 * K,
            warm_fraction: 0.5975, warm_bytes: 28 * K,
            footprint: 8 * M, pattern: Strided { stride: 128 },
            dep_chain: 0.35, branch_predictability: 0.99, seed: 0x6005),
        // ----------------------------------------------------- High MPKI
        spec!("libquantum", High,
            fp_frac: 0.0, load_frac: 0.25, store_frac: 0.10, branch_frac: 0.12,
            longlat_frac: 0.01, hot_fraction: 0.0, hot_bytes: 0,
            warm_fraction: 0.0, warm_bytes: 0,
            footprint: 8 * M, pattern: Sequential { stride: 8 },
            dep_chain: 0.2, branch_predictability: 0.99, seed: 0x7001),
        spec!("omnetpp", High,
            fp_frac: 0.0, load_frac: 0.30, store_frac: 0.12, branch_frac: 0.16,
            longlat_frac: 0.02, hot_fraction: 0.30, hot_bytes: 8 * K,
            warm_fraction: 0.66, warm_bytes: 56 * K,
            footprint: 8 * M, pattern: Random, dep_chain: 0.45,
            branch_predictability: 0.92, seed: 0x7002),
        spec!("leslie3d", High,
            fp_frac: 0.7, load_frac: 0.32, store_frac: 0.14, branch_frac: 0.04,
            longlat_frac: 0.05, hot_fraction: 0.20, hot_bytes: 8 * K,
            warm_fraction: 0.68, warm_bytes: 40 * K,
            footprint: 8 * M, pattern: Sequential { stride: 16 },
            dep_chain: 0.3, branch_predictability: 0.99, seed: 0x7003),
        spec!("bwaves", High,
            fp_frac: 0.8, load_frac: 0.30, store_frac: 0.10, branch_frac: 0.03,
            longlat_frac: 0.05, hot_fraction: 0.30, hot_bytes: 8 * K,
            warm_fraction: 0.54, warm_bytes: 32 * K,
            footprint: 8 * M, pattern: Sequential { stride: 32 },
            dep_chain: 0.25, branch_predictability: 0.995, seed: 0x7004),
        spec!("mcf", High,
            fp_frac: 0.0, load_frac: 0.35, store_frac: 0.08, branch_frac: 0.14,
            longlat_frac: 0.01, hot_fraction: 0.30, hot_bytes: 8 * K,
            warm_fraction: 0.55, warm_bytes: 56 * K,
            footprint: 16 * M, pattern: PointerChase, dep_chain: 0.55,
            branch_predictability: 0.9, seed: 0x7005),
        spec!("soplex", High,
            fp_frac: 0.4, load_frac: 0.32, store_frac: 0.10, branch_frac: 0.10,
            longlat_frac: 0.04, hot_fraction: 0.25, hot_bytes: 8 * K,
            warm_fraction: 0.72, warm_bytes: 48 * K,
            footprint: 8 * M, pattern: Random, dep_chain: 0.4,
            branch_predictability: 0.95, seed: 0x7006),
    ]
}

/// The full 22-benchmark suite, in Table IV order (Low, Medium, High).
///
/// # Example
///
/// ```
/// let suite = mps_workloads::suite();
/// assert_eq!(suite.len(), 22);
/// assert_eq!(suite[0].name(), "povray");
/// assert_eq!(suite[0].id, 0);
/// ```
pub fn suite() -> Vec<BenchmarkSpec> {
    raw_suite()
        .into_iter()
        .enumerate()
        .map(|(id, (_, class, params))| BenchmarkSpec {
            id,
            nominal_class: class,
            params,
        })
        .collect()
}

/// Looks a benchmark up by name.
///
/// # Example
///
/// ```
/// use mps_workloads::{benchmark_by_name, MpkiClass};
///
/// let mcf = benchmark_by_name("mcf").expect("mcf is in the suite");
/// assert_eq!(mcf.nominal_class, MpkiClass::High);
/// assert!(benchmark_by_name("nonexistent").is_none());
/// ```
pub fn benchmark_by_name(name: &str) -> Option<BenchmarkSpec> {
    suite().into_iter().find(|b| b.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_22_benchmarks_with_unique_names_and_seeds() {
        let s = suite();
        assert_eq!(s.len(), 22);
        let names: std::collections::BTreeSet<_> = s.iter().map(|b| b.name().to_owned()).collect();
        assert_eq!(names.len(), 22);
        let seeds: std::collections::BTreeSet<_> = s.iter().map(|b| b.params.seed).collect();
        assert_eq!(seeds.len(), 22);
    }

    #[test]
    fn ids_are_dense_indices() {
        for (i, b) in suite().iter().enumerate() {
            assert_eq!(b.id, i);
        }
    }

    #[test]
    fn class_counts_match_table_iv() {
        let s = suite();
        let count = |c| s.iter().filter(|b| b.nominal_class == c).count();
        assert_eq!(count(MpkiClass::Low), 11);
        assert_eq!(count(MpkiClass::Medium), 5);
        assert_eq!(count(MpkiClass::High), 6);
    }

    #[test]
    fn table_iv_membership() {
        for (name, class) in [
            ("povray", MpkiClass::Low),
            ("milc", MpkiClass::Low),
            ("sjeng", MpkiClass::Low),
            ("bzip2", MpkiClass::Medium),
            ("cactusADM", MpkiClass::Medium),
            ("libquantum", MpkiClass::High),
            ("mcf", MpkiClass::High),
            ("soplex", MpkiClass::High),
        ] {
            assert_eq!(
                benchmark_by_name(name).unwrap().nominal_class,
                class,
                "{name}"
            );
        }
    }

    #[test]
    fn all_parameters_validate() {
        for b in suite() {
            assert!(b.params.validate().is_ok(), "{}", b.name());
        }
    }

    #[test]
    fn all_traces_instantiate_and_produce_uops() {
        use crate::uop::TraceSource;
        for b in suite() {
            let mut t = b.trace();
            for _ in 0..100 {
                let _ = t.next_uop();
            }
        }
    }

    #[test]
    fn predicted_stream_rate_respects_class_bands() {
        // The calibration model from the module comment: the cold-stream
        // line rate must respect the Table IV class bands by construction.
        let rate = |b: &BenchmarkSpec| {
            let p = &b.params;
            let mem = p.load_frac + p.store_frac;
            let cold = (1.0 - p.hot_fraction - p.warm_fraction).max(0.0);
            let lines_per_access = match p.pattern {
                AccessPattern::Sequential { stride } | AccessPattern::Strided { stride } => {
                    (stride.min(64)) as f64 / 64.0
                }
                AccessPattern::Random | AccessPattern::PointerChase => 1.0,
            };
            mem * cold * 1000.0 * lines_per_access
        };
        for b in suite() {
            let r = rate(&b);
            match b.nominal_class {
                MpkiClass::Low => assert!(r < 1.0, "{}: rate {r}", b.name()),
                MpkiClass::Medium => {
                    assert!((1.0..5.0).contains(&r), "{}: rate {r}", b.name())
                }
                // Prefetcher overshoot only ever raises the measured rate,
                // so High only needs the model rate near/above the band.
                MpkiClass::High => assert!(r >= 4.0, "{}: rate {r}", b.name()),
            }
        }
    }
}

//! Parameterized synthetic µop-trace generator.
//!
//! One [`SyntheticTrace`] stands in for one SPEC benchmark. The generator
//! is a small abstract program: it executes nested loops over a code
//! footprint, mixes ALU / FP / long-latency / memory / branch µops with
//! configurable frequencies, and addresses a data footprint with one of
//! several access patterns blended with a hot working set. Everything is
//! driven by a seeded [`mps_stats::rng::Rng`], and [`TraceSource::reset`]
//! restores the generator bit-exactly.
//!
//! The knobs map to microarchitectural behaviours:
//!
//! * `footprint` + `pattern` + `load_frac` set the cache-miss profile
//!   (hence the benchmark's MPKI class),
//! * `hot_fraction`/`hot_bytes` add temporal locality that caches and
//!   replacement policies can exploit (this is what differentiates LRU,
//!   DIP, DRRIP, ... on the shared LLC),
//! * `dep_chain` sets attainable ILP,
//! * `branch_predictability` sets the branch misprediction rate,
//! * `longlat_frac`/`fp_frac` shift pressure to long-latency units.

use crate::uop::{Reg, TraceSource, Uop, UopKind, NUM_REGS};
use mps_stats::rng::Rng;

/// Data-access pattern of a synthetic benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Streaming: consecutive addresses with the given stride in bytes.
    Sequential {
        /// Per-access address increment in bytes.
        stride: u64,
    },
    /// Constant large stride (touches a new cache line almost every access).
    Strided {
        /// Per-access address increment in bytes.
        stride: u64,
    },
    /// Uniformly random over the footprint.
    Random,
    /// Serialized dependent loads (each load's address depends on the
    /// previous load's result), randomly scattered over the footprint.
    PointerChase,
}

/// Parameters of a synthetic benchmark.
///
/// Fractions are probabilities per generated µop and must satisfy
/// `load_frac + store_frac + branch_frac + longlat_frac ≤ 1`; the remainder
/// is single-cycle ALU/FP work.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthParams {
    /// Human-readable benchmark name.
    pub name: String,
    /// Fraction of µops that are loads.
    pub load_frac: f64,
    /// Fraction of µops that are stores.
    pub store_frac: f64,
    /// Fraction of µops that are branches.
    pub branch_frac: f64,
    /// Fraction of µops that are long-latency (mul/div).
    pub longlat_frac: f64,
    /// Fraction of computational µops that are floating point.
    pub fp_frac: f64,
    /// Probability that a branch follows its per-site bias (the rest are
    /// random outcomes a predictor cannot learn).
    pub branch_predictability: f64,
    /// Data footprint of the cold region in bytes.
    pub footprint: u64,
    /// Fraction of accesses directed at the hot working set.
    pub hot_fraction: f64,
    /// Size of the hot working set in bytes (sized to live in the L1).
    pub hot_bytes: u64,
    /// Fraction of accesses directed at the warm working set — a randomly
    /// accessed region sized for the *shared LLC* (much larger than the
    /// L1): this is the reusable working set whose retention the LLC
    /// replacement policies compete on.
    pub warm_fraction: f64,
    /// Size of the warm working set in bytes.
    pub warm_bytes: u64,
    /// Cold-region access pattern.
    pub pattern: AccessPattern,
    /// Probability a µop source is a recently produced register
    /// (dependence density: higher ⇒ less ILP).
    pub dep_chain: f64,
    /// Code footprint in bytes (instruction fetch working set).
    pub code_footprint: u64,
    /// Seed of the generator's private RNG.
    pub seed: u64,
}

impl Default for SynthParams {
    fn default() -> Self {
        SynthParams {
            name: "synthetic".to_owned(),
            load_frac: 0.25,
            store_frac: 0.10,
            branch_frac: 0.15,
            longlat_frac: 0.05,
            fp_frac: 0.0,
            branch_predictability: 0.97,
            footprint: 64 << 10,
            hot_fraction: 0.6,
            hot_bytes: 8 << 10,
            warm_fraction: 0.0,
            warm_bytes: 0,
            pattern: AccessPattern::Random,
            dep_chain: 0.4,
            code_footprint: 8 << 10,
            seed: 1,
        }
    }
}

impl SynthParams {
    /// Validates fraction and size constraints, returning a diagnostic for
    /// the first violated one.
    pub fn validate(&self) -> Result<(), String> {
        let fracs = [
            ("load_frac", self.load_frac),
            ("store_frac", self.store_frac),
            ("branch_frac", self.branch_frac),
            ("longlat_frac", self.longlat_frac),
            ("fp_frac", self.fp_frac),
            ("branch_predictability", self.branch_predictability),
            ("hot_fraction", self.hot_fraction),
            ("warm_fraction", self.warm_fraction),
            ("dep_chain", self.dep_chain),
        ];
        for (name, v) in fracs {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0,1], got {v}"));
            }
        }
        let sum = self.load_frac + self.store_frac + self.branch_frac + self.longlat_frac;
        if sum > 1.0 + 1e-9 {
            return Err(format!("µop class fractions sum to {sum} > 1"));
        }
        if self.hot_fraction + self.warm_fraction > 1.0 + 1e-9 {
            return Err("hot_fraction + warm_fraction exceed 1".into());
        }
        if self.footprint < 64 {
            return Err("footprint must be at least one cache line".into());
        }
        if self.warm_fraction > 0.0 && self.warm_bytes < 64 {
            return Err("warm region used but warm_bytes below one line".into());
        }
        if self.code_footprint < 64 {
            return Err("code_footprint must be at least one cache line".into());
        }
        Ok(())
    }
}

const CODE_BASE: u64 = 0x0040_0000;
const DATA_BASE: u64 = 0x1000_0000;
/// Hot set lives above the cold region so they never alias.
fn hot_base(p: &SynthParams) -> u64 {
    DATA_BASE + p.footprint.next_multiple_of(4096) + 4096
}
/// Warm set lives above the hot region.
fn warm_base(p: &SynthParams) -> u64 {
    hot_base(p) + p.hot_bytes.next_multiple_of(4096) + 4096
}

/// Deterministic synthetic µop stream. See the module docs for the model.
#[derive(Debug, Clone)]
pub struct SyntheticTrace {
    params: SynthParams,
    rng: Rng,
    /// Sequential/strided position within the cold region.
    stream_pos: u64,
    /// Pointer-chase cursor.
    chase_addr: u64,
    pc: u64,
    /// Destination-register rotation cursor.
    next_dst: usize,
    /// Ring of recently written registers (dependence targets).
    recent: [Reg; 4],
    recent_len: usize,
    /// Destination register of the most recent load (pointer chasing).
    last_load_dst: Option<Reg>,
    /// Per-branch-site bias, keyed by a small hash of the PC.
    site_bias: [bool; 64],
    /// Process-global synthesized-µop counter (one relaxed add per µop;
    /// a no-op without the `obs` feature).
    obs_uops: mps_obs::Counter,
}

impl SyntheticTrace {
    /// Creates a generator from validated parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`SynthParams::validate`].
    pub fn new(params: SynthParams) -> Self {
        if let Err(e) = params.validate() {
            panic!("invalid SynthParams for {:?}: {e}", params.name);
        }
        let mut t = SyntheticTrace {
            params,
            rng: Rng::new(0),
            stream_pos: 0,
            chase_addr: DATA_BASE,
            pc: CODE_BASE,
            next_dst: 0,
            recent: [0; 4],
            recent_len: 0,
            last_load_dst: None,
            site_bias: [false; 64],
            obs_uops: mps_obs::counter("workloads.synth.uops"),
        };
        t.reset();
        t
    }

    /// The parameters this generator was built from.
    pub fn params(&self) -> &SynthParams {
        &self.params
    }

    fn pick_dst(&mut self) -> Reg {
        let r = (self.next_dst % NUM_REGS) as Reg;
        self.next_dst = (self.next_dst + 1) % NUM_REGS;
        let i = self.recent_len % 4;
        self.recent[i] = r;
        self.recent_len += 1;
        r
    }

    fn pick_src(&mut self) -> Reg {
        if self.recent_len > 0 && self.rng.chance(self.params.dep_chain) {
            let n = self.recent_len.min(4);
            self.recent[self.rng.index(n)]
        } else {
            self.rng.index(NUM_REGS) as Reg
        }
    }

    fn data_address(&mut self) -> u64 {
        let p = &self.params;
        let roll = self.rng.next_f64();
        if p.hot_bytes > 0 && roll < p.hot_fraction {
            // Hot set: uniform within a small region (high temporal reuse).
            let off = self.rng.below(p.hot_bytes.max(8)) & !7;
            return hot_base(p) + off;
        }
        if p.warm_bytes > 0 && roll < p.hot_fraction + p.warm_fraction {
            // Warm set: uniform over the LLC-scale working set.
            let off = self.rng.below(p.warm_bytes.max(8)) & !7;
            return warm_base(p) + off;
        }
        match p.pattern {
            AccessPattern::Sequential { stride } | AccessPattern::Strided { stride } => {
                let off = (self.stream_pos.wrapping_mul(stride)) % p.footprint;
                self.stream_pos += 1;
                DATA_BASE + (off & !7)
            }
            AccessPattern::Random => DATA_BASE + (self.rng.below(p.footprint.max(8)) & !7),
            AccessPattern::PointerChase => {
                // Next pointer lands pseudo-randomly in the footprint; the
                // dependence is expressed through last_load_dst.
                let off = self.rng.below(p.footprint.max(8)) & !7;
                self.chase_addr = DATA_BASE + off;
                self.chase_addr
            }
        }
    }

    fn advance_pc(&mut self) -> u64 {
        let pc = self.pc;
        self.pc += 4;
        if self.pc >= CODE_BASE + self.params.code_footprint {
            self.pc = CODE_BASE;
        }
        pc
    }
}

impl TraceSource for SyntheticTrace {
    fn next_uop(&mut self) -> Uop {
        self.obs_uops.incr();
        let pc = self.advance_pc();
        // Copy the scalar knobs out of `params` up front: everything the
        // µop-class roll needs is `Copy`, and cloning the whole struct here
        // would heap-allocate (the benchmark-name `String`) on every µop.
        let pattern = self.params.pattern;
        let predictability = self.params.branch_predictability;
        let fp_frac = self.params.fp_frac;
        let load_t = self.params.load_frac;
        let store_t = load_t + self.params.store_frac;
        let branch_t = store_t + self.params.branch_frac;
        let longlat_t = branch_t + self.params.longlat_frac;
        let roll = self.rng.next_f64();

        if roll < load_t {
            // Load.
            let is_chase = matches!(pattern, AccessPattern::PointerChase);
            let addr = self.data_address();
            let src = if is_chase {
                self.last_load_dst
            } else {
                Some(self.pick_src())
            };
            let dst = self.pick_dst();
            self.last_load_dst = Some(dst);
            Uop {
                kind: UopKind::Load,
                srcs: [src, None],
                dst: Some(dst),
                addr,
                size: 8,
                pc,
                taken: false,
                target: 0,
            }
        } else if roll < store_t {
            let addr = self.data_address();
            let data = self.pick_src();
            let base = self.pick_src();
            Uop {
                kind: UopKind::Store,
                srcs: [Some(data), Some(base)],
                dst: None,
                addr,
                size: 8,
                pc,
                taken: false,
                target: 0,
            }
        } else if roll < branch_t {
            // Branch: per-site bias, perturbed by (1 − predictability).
            let site = ((pc >> 2) % 64) as usize;
            let mut taken = self.site_bias[site];
            if !self.rng.chance(predictability) {
                taken = self.rng.chance(0.5);
            }
            // Backward branch to the start of the code loop when taken.
            let target = if taken { CODE_BASE } else { pc + 4 };
            if taken {
                self.pc = target;
            }
            Uop {
                kind: UopKind::Branch,
                srcs: [Some(self.pick_src()), None],
                dst: None,
                addr: 0,
                size: 0,
                pc,
                taken,
                target,
            }
        } else {
            let kind = if roll < longlat_t {
                if self.rng.chance(fp_frac) {
                    UopKind::FpDiv
                } else if self.rng.chance(0.5) {
                    UopKind::IntDiv
                } else {
                    UopKind::IntMul
                }
            } else if self.rng.chance(fp_frac) {
                if self.rng.chance(0.5) {
                    UopKind::FpAdd
                } else {
                    UopKind::FpMul
                }
            } else {
                UopKind::IntAlu
            };
            let s1 = self.pick_src();
            let s2 = self.pick_src();
            let dst = self.pick_dst();
            Uop {
                kind,
                srcs: [Some(s1), Some(s2)],
                dst: Some(dst),
                addr: 0,
                size: 0,
                pc,
                taken: false,
                target: 0,
            }
        }
    }

    fn reset(&mut self) {
        self.rng = Rng::new(self.params.seed);
        self.stream_pos = 0;
        self.chase_addr = DATA_BASE;
        self.pc = CODE_BASE;
        self.next_dst = 0;
        self.recent = [0; 4];
        self.recent_len = 0;
        self.last_load_dst = None;
        // Branch-site biases: mostly-taken loop branches with a few
        // not-taken sites, fixed per seed.
        let mut bias_rng = Rng::new(self.params.seed ^ 0xB1A5_B1A5);
        for b in &mut self.site_bias {
            *b = bias_rng.chance(0.7);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(trace: &mut SyntheticTrace, n: usize) -> Vec<Uop> {
        (0..n).map(|_| trace.next_uop()).collect()
    }

    #[test]
    fn reset_reproduces_exact_stream() {
        let mut t = SyntheticTrace::new(SynthParams::default());
        let a = collect(&mut t, 5000);
        t.reset();
        let b = collect(&mut t, 5000);
        assert_eq!(a, b);
    }

    #[test]
    fn two_instances_same_seed_agree() {
        let p = SynthParams {
            seed: 99,
            ..SynthParams::default()
        };
        let mut t1 = SyntheticTrace::new(p.clone());
        let mut t2 = SyntheticTrace::new(p);
        assert_eq!(collect(&mut t1, 1000), collect(&mut t2, 1000));
    }

    #[test]
    fn different_seeds_differ() {
        let mut t1 = SyntheticTrace::new(SynthParams {
            seed: 1,
            ..SynthParams::default()
        });
        let mut t2 = SyntheticTrace::new(SynthParams {
            seed: 2,
            ..SynthParams::default()
        });
        assert_ne!(collect(&mut t1, 200), collect(&mut t2, 200));
    }

    #[test]
    fn uop_mix_matches_fractions() {
        let p = SynthParams {
            load_frac: 0.3,
            store_frac: 0.1,
            branch_frac: 0.2,
            longlat_frac: 0.05,
            ..SynthParams::default()
        };
        let mut t = SyntheticTrace::new(p);
        let n = 100_000;
        let uops = collect(&mut t, n);
        let frac = |k: fn(&Uop) -> bool| uops.iter().filter(|u| k(u)).count() as f64 / n as f64;
        let loads = frac(|u| u.kind == UopKind::Load);
        let stores = frac(|u| u.kind == UopKind::Store);
        let branches = frac(|u| u.kind == UopKind::Branch);
        assert!((loads - 0.3).abs() < 0.01, "loads={loads}");
        assert!((stores - 0.1).abs() < 0.01, "stores={stores}");
        assert!((branches - 0.2).abs() < 0.01, "branches={branches}");
    }

    #[test]
    fn memory_uops_have_aligned_in_range_addresses() {
        let p = SynthParams {
            footprint: 1 << 20,
            hot_bytes: 4 << 10,
            ..SynthParams::default()
        };
        let hot_lo = hot_base(&p);
        let hot_hi = hot_lo + p.hot_bytes;
        let mut t = SyntheticTrace::new(p);
        for u in collect(&mut t, 20_000) {
            if u.kind.is_memory() {
                assert_eq!(u.addr % 8, 0, "unaligned {:#x}", u.addr);
                let in_cold = (DATA_BASE..DATA_BASE + (1 << 20)).contains(&u.addr);
                let in_hot = (hot_lo..hot_hi).contains(&u.addr);
                assert!(in_cold || in_hot, "address {:#x} out of range", u.addr);
            } else {
                assert_eq!(u.addr, 0);
            }
        }
    }

    #[test]
    fn pcs_stay_in_code_footprint() {
        let p = SynthParams {
            code_footprint: 4096,
            ..SynthParams::default()
        };
        let mut t = SyntheticTrace::new(p);
        for u in collect(&mut t, 20_000) {
            assert!((CODE_BASE..CODE_BASE + 4096).contains(&u.pc));
            assert_eq!(u.pc % 4, 0);
        }
    }

    #[test]
    fn sequential_pattern_walks_the_footprint() {
        let p = SynthParams {
            pattern: AccessPattern::Sequential { stride: 8 },
            hot_fraction: 0.0,
            load_frac: 1.0,
            store_frac: 0.0,
            branch_frac: 0.0,
            longlat_frac: 0.0,
            footprint: 1024,
            hot_bytes: 0,
            ..SynthParams::default()
        };
        let mut t = SyntheticTrace::new(p);
        let uops = collect(&mut t, 128);
        for (i, u) in uops.iter().enumerate() {
            assert_eq!(u.addr, DATA_BASE + ((i as u64 * 8) % 1024), "i={i}");
        }
    }

    #[test]
    fn pointer_chase_loads_depend_on_previous_load() {
        let p = SynthParams {
            pattern: AccessPattern::PointerChase,
            hot_fraction: 0.0,
            hot_bytes: 0,
            load_frac: 1.0,
            store_frac: 0.0,
            branch_frac: 0.0,
            longlat_frac: 0.0,
            ..SynthParams::default()
        };
        let mut t = SyntheticTrace::new(p);
        let uops = collect(&mut t, 100);
        for w in uops.windows(2) {
            assert_eq!(w[1].srcs[0], w[0].dst, "chase must serialize loads");
        }
    }

    #[test]
    fn branch_predictability_extremes() {
        // Fully predictable branches follow a fixed per-site bias.
        let count_flips = |pred: f64| {
            let p = SynthParams {
                branch_frac: 1.0,
                load_frac: 0.0,
                store_frac: 0.0,
                longlat_frac: 0.0,
                branch_predictability: pred,
                ..SynthParams::default()
            };
            let mut t = SyntheticTrace::new(p);
            // Same PC repeats (taken branches jump to CODE_BASE); count
            // outcome changes at a fixed site.
            let uops = collect(&mut t, 4000);
            let mut per_site: std::collections::HashMap<u64, Vec<bool>> = Default::default();
            for u in uops {
                per_site.entry(u.pc).or_default().push(u.taken);
            }
            let mut flips = 0usize;
            let mut total = 0usize;
            for outcomes in per_site.values() {
                for w in outcomes.windows(2) {
                    total += 1;
                    if w[0] != w[1] {
                        flips += 1;
                    }
                }
            }
            flips as f64 / total.max(1) as f64
        };
        assert_eq!(count_flips(1.0), 0.0);
        assert!(count_flips(0.0) > 0.2);
    }

    #[test]
    #[should_panic(expected = "fractions sum")]
    fn overfull_mix_panics() {
        SyntheticTrace::new(SynthParams {
            load_frac: 0.7,
            store_frac: 0.4,
            ..SynthParams::default()
        });
    }

    #[test]
    #[should_panic(expected = "warm region used")]
    fn warm_without_size_panics() {
        SyntheticTrace::new(SynthParams {
            warm_fraction: 0.2,
            warm_bytes: 0,
            ..SynthParams::default()
        });
    }

    #[test]
    fn warm_accesses_fall_in_warm_region() {
        let p = SynthParams {
            hot_fraction: 0.0,
            hot_bytes: 0,
            warm_fraction: 1.0,
            warm_bytes: 64 << 10,
            load_frac: 1.0,
            store_frac: 0.0,
            branch_frac: 0.0,
            longlat_frac: 0.0,
            ..SynthParams::default()
        };
        let lo = warm_base(&p);
        let hi = lo + (64 << 10);
        let mut t = SyntheticTrace::new(p);
        for u in collect(&mut t, 2_000) {
            assert!(
                (lo..hi).contains(&u.addr),
                "{:#x} outside warm region",
                u.addr
            );
        }
    }

    #[test]
    fn hot_and_warm_fractions_may_not_exceed_one() {
        let p = SynthParams {
            hot_fraction: 0.7,
            warm_fraction: 0.5,
            warm_bytes: 4096,
            ..SynthParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_catches_bad_fraction() {
        let p = SynthParams {
            dep_chain: 1.5,
            ..SynthParams::default()
        };
        assert!(p.validate().is_err());
    }
}

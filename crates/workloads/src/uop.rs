//! The micro-operation (µop) trace model.
//!
//! Both simulators in this workspace — the detailed out-of-order core in
//! `mps-sim-cpu` and the behavioral core in `mps-badco` — consume the same
//! µop streams. A µop carries exactly the information a timing model needs:
//! operation class (for functional-unit latency), register operands (for
//! dependencies), a memory address (for the cache hierarchy) and a branch
//! outcome (for the predictor).

/// Architectural register name. The suite uses a flat space of 32 integer +
/// FP registers; the simulators rename them anyway.
pub type Reg = u8;

/// Number of architectural registers used by trace generators.
pub const NUM_REGS: usize = 32;

/// Operation class of a µop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UopKind {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Pipelined integer multiply (3 cycles).
    IntMul,
    /// Unpipelined integer divide (20 cycles).
    IntDiv,
    /// Pipelined FP add/sub (3 cycles).
    FpAdd,
    /// Pipelined FP multiply (5 cycles).
    FpMul,
    /// Unpipelined FP divide (24 cycles).
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional or unconditional branch.
    Branch,
}

impl UopKind {
    /// Nominal execution latency in cycles (excluding memory).
    pub fn latency(self) -> u32 {
        match self {
            UopKind::IntAlu | UopKind::Branch => 1,
            UopKind::IntMul | UopKind::FpAdd => 3,
            UopKind::FpMul => 5,
            UopKind::IntDiv => 20,
            UopKind::FpDiv => 24,
            // Loads/stores add cache latency on top of address generation.
            UopKind::Load | UopKind::Store => 1,
        }
    }

    /// Whether this µop accesses data memory.
    pub fn is_memory(self) -> bool {
        matches!(self, UopKind::Load | UopKind::Store)
    }
}

/// One dynamic micro-operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Uop {
    /// Operation class.
    pub kind: UopKind,
    /// Up to two source registers.
    pub srcs: [Option<Reg>; 2],
    /// Destination register, if any.
    pub dst: Option<Reg>,
    /// Effective virtual byte address (loads/stores), else 0.
    pub addr: u64,
    /// Access size in bytes (loads/stores), else 0.
    pub size: u8,
    /// Instruction virtual address.
    pub pc: u64,
    /// Branch outcome (branches only).
    pub taken: bool,
    /// Branch target (branches only; fall-through if not taken).
    pub target: u64,
}

impl Uop {
    /// A canonical single-cycle ALU µop, useful as a test fixture.
    pub fn nop_like(pc: u64) -> Self {
        Uop {
            kind: UopKind::IntAlu,
            srcs: [None, None],
            dst: None,
            addr: 0,
            size: 0,
            pc,
            taken: false,
            target: 0,
        }
    }
}

/// A deterministic, resettable stream of µops.
///
/// Streams are conceptually infinite: the multiprogram simulation rule in
/// the paper restarts a thread that finishes its slice until every thread
/// in the workload has run its first `N` instructions, and an infinite
/// stream models that naturally. [`TraceSource::reset`] must restore the
/// exact initial state so that two runs over the same source produce the
/// same dynamic µop sequence (the paper's reproducibility assumption).
pub trait TraceSource {
    /// Produces the next µop.
    fn next_uop(&mut self) -> Uop;

    /// Rewinds to the exact initial state.
    fn reset(&mut self);
}

/// Blanket impl so `&mut T` can be passed where a source is consumed.
impl<T: TraceSource + ?Sized> TraceSource for &mut T {
    fn next_uop(&mut self) -> Uop {
        (**self).next_uop()
    }
    fn reset(&mut self) {
        (**self).reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_are_ordered_sensibly() {
        assert!(UopKind::IntAlu.latency() <= UopKind::IntMul.latency());
        assert!(UopKind::IntMul.latency() <= UopKind::IntDiv.latency());
        assert!(UopKind::FpAdd.latency() <= UopKind::FpMul.latency());
        assert!(UopKind::FpMul.latency() <= UopKind::FpDiv.latency());
    }

    #[test]
    fn memory_classification() {
        assert!(UopKind::Load.is_memory());
        assert!(UopKind::Store.is_memory());
        assert!(!UopKind::IntAlu.is_memory());
        assert!(!UopKind::Branch.is_memory());
    }

    #[test]
    fn nop_like_has_no_operands() {
        let u = Uop::nop_like(0x400000);
        assert_eq!(u.kind, UopKind::IntAlu);
        assert_eq!(u.srcs, [None, None]);
        assert_eq!(u.dst, None);
        assert_eq!(u.pc, 0x400000);
    }
}

//! Microarchitecture-independent trace analysis.
//!
//! The automatic workload-selection literature the paper builds on (Van
//! Biesbrouck et al., Vandierendonck & Seznec) characterizes benchmarks by
//! *microarchitecture-independent* profiles. This module computes such a
//! profile from a trace slice: instruction mix, memory footprint, spatial
//! locality, branch behaviour and dependence density. The profiles feed
//! the k-means benchmark classification in `mps-sampling::cluster` as an
//! automatic alternative to the manual Table IV MPKI classes.

use crate::uop::{TraceSource, UopKind};
use std::collections::{BTreeSet, HashMap};

/// Microarchitecture-independent profile of a trace slice.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceProfile {
    /// µops analyzed.
    pub uops: u64,
    /// Fraction of loads.
    pub load_frac: f64,
    /// Fraction of stores.
    pub store_frac: f64,
    /// Fraction of branches.
    pub branch_frac: f64,
    /// Fraction of long-latency (mul/div) operations.
    pub longlat_frac: f64,
    /// Distinct 64-byte data lines touched.
    pub data_lines: u64,
    /// Distinct 64-byte instruction lines touched.
    pub code_lines: u64,
    /// Fraction of memory accesses whose line was already touched
    /// (temporal line reuse).
    pub line_reuse: f64,
    /// Fraction of memory accesses that hit the same or next line as the
    /// previous access (spatial locality).
    pub spatial_locality: f64,
    /// Per-branch-site outcome entropy in bits, averaged over sites
    /// (0 = perfectly biased, 1 = coin flips).
    pub branch_entropy: f64,
    /// Fraction of µops reading a register written by one of the previous
    /// four µops (dependence density).
    pub dep_density: f64,
}

impl TraceProfile {
    /// Analyzes the first `n` µops of a trace (the trace is reset first).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn analyze(trace: &mut dyn TraceSource, n: u64) -> TraceProfile {
        assert!(n > 0, "need a non-empty slice");
        trace.reset();
        let mut loads = 0u64;
        let mut stores = 0u64;
        let mut branches = 0u64;
        let mut longlat = 0u64;
        let mut data_lines = BTreeSet::new();
        let mut code_lines = BTreeSet::new();
        let mut reuse_hits = 0u64;
        let mut mem_accesses = 0u64;
        let mut spatial_hits = 0u64;
        let mut last_line: Option<u64> = None;
        // Per-site (taken, total) counts.
        let mut sites: HashMap<u64, (u64, u64)> = HashMap::new();
        let mut recent_dsts: [Option<u8>; 4] = [None; 4];
        let mut dep_hits = 0u64;

        for i in 0..n {
            let u = trace.next_uop();
            code_lines.insert(u.pc / 64);
            match u.kind {
                UopKind::Load => loads += 1,
                UopKind::Store => stores += 1,
                UopKind::Branch => branches += 1,
                UopKind::IntMul | UopKind::IntDiv | UopKind::FpDiv => longlat += 1,
                _ => {}
            }
            if u.kind.is_memory() {
                mem_accesses += 1;
                let line = u.addr / 64;
                if !data_lines.insert(line) {
                    reuse_hits += 1;
                }
                if let Some(prev) = last_line {
                    if line == prev || line == prev + 1 || prev == line + 1 {
                        spatial_hits += 1;
                    }
                }
                last_line = Some(line);
            }
            if u.kind == UopKind::Branch {
                let e = sites.entry(u.pc).or_insert((0, 0));
                e.0 += u64::from(u.taken);
                e.1 += 1;
            }
            if u.srcs
                .iter()
                .flatten()
                .any(|s| recent_dsts.iter().flatten().any(|d| d == s))
            {
                dep_hits += 1;
            }
            recent_dsts[(i % 4) as usize] = u.dst;
        }
        trace.reset();

        let entropy = if sites.is_empty() {
            0.0
        } else {
            let mut acc = 0.0;
            for &(taken, total) in sites.values() {
                let p = taken as f64 / total as f64;
                acc += binary_entropy(p);
            }
            acc / sites.len() as f64
        };
        let nf = n as f64;
        TraceProfile {
            uops: n,
            load_frac: loads as f64 / nf,
            store_frac: stores as f64 / nf,
            branch_frac: branches as f64 / nf,
            longlat_frac: longlat as f64 / nf,
            data_lines: data_lines.len() as u64,
            code_lines: code_lines.len() as u64,
            line_reuse: reuse_hits as f64 / (mem_accesses.max(1)) as f64,
            spatial_locality: spatial_hits as f64 / (mem_accesses.max(1)) as f64,
            branch_entropy: entropy,
            dep_density: dep_hits as f64 / nf,
        }
    }

    /// The profile as a feature vector for clustering: instruction mix,
    /// log-footprint, locality and branch behaviour.
    pub fn features(&self) -> Vec<f64> {
        vec![
            self.load_frac + self.store_frac,
            self.branch_frac,
            (self.data_lines as f64 + 1.0).log2(),
            self.line_reuse,
            self.spatial_locality,
            self.branch_entropy,
            self.dep_density,
        ]
    }

    /// Touched data footprint in bytes.
    pub fn data_footprint_bytes(&self) -> u64 {
        self.data_lines * 64
    }
}

fn binary_entropy(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 {
        0.0
    } else {
        -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::benchmark_by_name;
    use crate::synth::{AccessPattern, SynthParams, SyntheticTrace};

    #[test]
    fn mix_matches_generator_parameters() {
        let p = SynthParams {
            load_frac: 0.3,
            store_frac: 0.1,
            branch_frac: 0.2,
            longlat_frac: 0.05,
            ..SynthParams::default()
        };
        let mut t = SyntheticTrace::new(p);
        let prof = TraceProfile::analyze(&mut t, 50_000);
        assert!((prof.load_frac - 0.3).abs() < 0.01);
        assert!((prof.store_frac - 0.1).abs() < 0.01);
        assert!((prof.branch_frac - 0.2).abs() < 0.01);
        assert!((prof.longlat_frac - 0.05).abs() < 0.01);
    }

    #[test]
    fn streaming_has_high_spatial_low_reuse() {
        let p = SynthParams {
            pattern: AccessPattern::Sequential { stride: 8 },
            hot_fraction: 0.0,
            hot_bytes: 0,
            footprint: 64 << 20,
            load_frac: 0.5,
            store_frac: 0.0,
            branch_frac: 0.0,
            longlat_frac: 0.0,
            ..SynthParams::default()
        };
        let mut t = SyntheticTrace::new(p);
        let prof = TraceProfile::analyze(&mut t, 20_000);
        assert!(prof.spatial_locality > 0.9, "{}", prof.spatial_locality);
        // Stride 8 touches each line 8 times: reuse ≈ 7/8 within lines,
        // but never revisits old lines — footprint grows linearly.
        assert!(prof.data_lines > 1_000);
    }

    #[test]
    fn hot_set_has_high_reuse_small_footprint() {
        let p = SynthParams {
            hot_fraction: 1.0,
            hot_bytes: 4 << 10,
            load_frac: 0.5,
            store_frac: 0.0,
            branch_frac: 0.0,
            longlat_frac: 0.0,
            ..SynthParams::default()
        };
        let mut t = SyntheticTrace::new(p);
        let prof = TraceProfile::analyze(&mut t, 20_000);
        assert!(prof.line_reuse > 0.98, "{}", prof.line_reuse);
        assert!(prof.data_footprint_bytes() <= 4 << 10);
    }

    #[test]
    fn branch_entropy_tracks_predictability() {
        let entropy_of = |pred: f64| {
            let p = SynthParams {
                branch_frac: 0.3,
                branch_predictability: pred,
                load_frac: 0.0,
                store_frac: 0.0,
                longlat_frac: 0.0,
                ..SynthParams::default()
            };
            TraceProfile::analyze(&mut SyntheticTrace::new(p), 20_000).branch_entropy
        };
        assert!(entropy_of(1.0) < 0.05, "deterministic branches");
        assert!(entropy_of(0.0) > 0.8, "random branches");
        assert!(entropy_of(0.0) > entropy_of(0.9));
    }

    #[test]
    fn suite_profiles_are_heterogeneous() {
        let prof = |name: &str| {
            let b = benchmark_by_name(name).unwrap();
            TraceProfile::analyze(&mut b.trace(), 10_000)
        };
        let hot = prof("hmmer");
        let stream = prof("libquantum");
        let chase = prof("mcf");
        assert!(hot.data_lines < stream.data_lines);
        assert!(stream.spatial_locality > chase.spatial_locality);
        assert!(chase.dep_density > stream.dep_density);
    }

    #[test]
    fn features_have_fixed_dimension() {
        let b = benchmark_by_name("gcc").unwrap();
        let prof = TraceProfile::analyze(&mut b.trace(), 2_000);
        assert_eq!(prof.features().len(), 7);
        assert!(prof.features().iter().all(|f| f.is_finite()));
    }

    #[test]
    fn analysis_resets_the_trace() {
        use crate::uop::TraceSource;
        let b = benchmark_by_name("astar").unwrap();
        let mut t = b.trace();
        let first = t.next_uop();
        let _ = TraceProfile::analyze(&mut t, 1_000);
        assert_eq!(t.next_uop(), first, "trace must be rewound");
    }
}

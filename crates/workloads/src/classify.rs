//! MPKI-based benchmark classification (paper Table IV).
//!
//! The paper's benchmark-stratification method starts from a manual
//! classification of the SPEC benchmarks by memory intensity, measured in
//! (last-level cache) misses per kilo-instruction.

/// Memory-intensity class of a benchmark (paper Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MpkiClass {
    /// MPKI < 1.
    Low,
    /// 1 ≤ MPKI < 5.
    Medium,
    /// MPKI ≥ 5.
    High,
}

impl MpkiClass {
    /// All classes, in increasing memory intensity.
    pub const ALL: [MpkiClass; 3] = [MpkiClass::Low, MpkiClass::Medium, MpkiClass::High];

    /// Classifies a measured MPKI per the paper's thresholds
    /// (Low < 1 ≤ Medium < 5 ≤ High).
    ///
    /// # Panics
    ///
    /// Panics if `mpki` is negative or NaN.
    ///
    /// # Example
    ///
    /// ```
    /// use mps_workloads::MpkiClass;
    ///
    /// assert_eq!(MpkiClass::classify(0.2), MpkiClass::Low);
    /// assert_eq!(MpkiClass::classify(3.0), MpkiClass::Medium);
    /// assert_eq!(MpkiClass::classify(17.0), MpkiClass::High);
    /// ```
    pub fn classify(mpki: f64) -> MpkiClass {
        assert!(mpki >= 0.0, "MPKI must be non-negative, got {mpki}");
        if mpki < 1.0 {
            MpkiClass::Low
        } else if mpki < 5.0 {
            MpkiClass::Medium
        } else {
            MpkiClass::High
        }
    }

    /// Class index (0 = Low, 1 = Medium, 2 = High), e.g. for use as a
    /// stratification key.
    pub fn index(self) -> usize {
        match self {
            MpkiClass::Low => 0,
            MpkiClass::Medium => 1,
            MpkiClass::High => 2,
        }
    }
}

impl core::fmt::Display for MpkiClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            MpkiClass::Low => "Low",
            MpkiClass::Medium => "Medium",
            MpkiClass::High => "High",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_match_paper() {
        assert_eq!(MpkiClass::classify(0.0), MpkiClass::Low);
        assert_eq!(MpkiClass::classify(0.999), MpkiClass::Low);
        assert_eq!(MpkiClass::classify(1.0), MpkiClass::Medium);
        assert_eq!(MpkiClass::classify(4.999), MpkiClass::Medium);
        assert_eq!(MpkiClass::classify(5.0), MpkiClass::High);
        assert_eq!(MpkiClass::classify(100.0), MpkiClass::High);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_mpki_panics() {
        MpkiClass::classify(-0.1);
    }

    #[test]
    fn ordering_follows_intensity() {
        assert!(MpkiClass::Low < MpkiClass::Medium);
        assert!(MpkiClass::Medium < MpkiClass::High);
    }

    #[test]
    fn indices_are_dense() {
        for (i, c) in MpkiClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}

//! Synthetic single-thread benchmark suite.
//!
//! The paper builds workloads from 22 SPEC CPU2006 benchmarks, replayed as
//! reproducible 100M-instruction traces. SPEC binaries and traces are not
//! redistributable, so this crate substitutes **deterministic synthetic
//! µop-trace generators**, one per benchmark, calibrated so that their
//! memory intensity (LLC misses per kilo-instruction, MPKI) falls in the
//! same class the paper's Table IV assigns to the eponymous SPEC benchmark:
//!
//! | MPKI class | threshold | benchmarks |
//! |------------|-----------|------------|
//! | Low    | MPKI < 1  | povray, gromacs, milc*, calculix, namd, dealII, perlbench, gobmk, h264ref, hmmer, sjeng |
//! | Medium | MPKI < 5  | bzip2, gcc, astar, zeusmp, cactusADM |
//! | High   | MPKI ≥ 5  | libquantum, omnetpp, leslie3d, bwaves, mcf, soplex |
//!
//! (*the paper's own table lists milc as Low.)
//!
//! What matters for reproducing the paper is not any single benchmark's
//! microarchitectural fingerprint but the *heterogeneity of the population*:
//! benchmarks must span compute-bound to memory-bound behaviour so that
//! benchmark combinations produce a wide, non-trivial distribution of
//! per-workload throughput differences `d(w)`. The generators therefore
//! vary footprint, access pattern (sequential, strided, random, pointer
//! chase), instruction mix, branch predictability, and dependence density.
//!
//! Determinism: every generator is seeded and [`TraceSource::reset`]
//! restores it exactly — the synthetic analogue of the paper's
//! "simulations are reproducible, so traces represent exactly the same
//! sequence of dynamic µops".

pub mod analyze;
pub mod classify;
pub mod phases;
pub mod soa;
pub mod suite;
pub mod synth;
pub mod tracefile;
pub mod uop;

pub use analyze::TraceProfile;
pub use classify::MpkiClass;
pub use phases::PhasedTrace;
pub use soa::{TraceBuffer, TraceCursor};
pub use suite::{benchmark_by_name, suite, BenchmarkSpec};
pub use synth::{AccessPattern, SynthParams, SyntheticTrace};
pub use tracefile::{write_trace, FileTrace};
pub use uop::{Reg, TraceSource, Uop, UopKind};

//! Structure-of-arrays trace buffer and its replay cursor.
//!
//! [`TraceBuffer`] materializes the first `n` µops of any [`TraceSource`]
//! into parallel per-field arrays: sequential replay walks nine dense
//! streams the hardware prefetcher follows perfectly, instead of
//! re-running the synthetic generator's RNG for every µop of every
//! workload. [`TraceCursor`] replays a shared (`Arc`ed) buffer as a
//! [`TraceSource`], cycling past the end exactly like
//! [`crate::FileTrace`] — which is the thread-restart rule: the detailed
//! core resets its trace after `trace_len` fetched µops, so a buffer of
//! `trace_len` µops with modular wrap is stream-identical to the
//! generator it captured (`tests/trace_replay.rs` pins this equivalence
//! end to end).
//!
//! Cursors are cheap to clone (an `Arc` bump and an index), so one
//! memoized buffer per benchmark serves every workload the benchmark
//! appears in — the `StudyContext` trace cache in `mps-harness` builds
//! each benchmark's buffer exactly once per study.

use crate::uop::{Reg, TraceSource, Uop, UopKind};
use std::sync::Arc;

/// Encoding of "no register" in the packed operand arrays.
const NO_REG: u8 = 0xFF;

#[inline]
fn reg_byte(r: Option<Reg>) -> u8 {
    r.map_or(NO_REG, |x| x)
}

#[inline]
fn reg_from(b: u8) -> Option<Reg> {
    if b == NO_REG {
        None
    } else {
        Some(b)
    }
}

/// A captured µop trace in structure-of-arrays layout.
///
/// Each [`Uop`] field lives in its own dense array; `uop(i)` reassembles
/// the `i`-th µop. The buffer is immutable after capture and is normally
/// shared behind an [`Arc`] via [`TraceBuffer::cursor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceBuffer {
    kind: Vec<UopKind>,
    src0: Vec<u8>,
    src1: Vec<u8>,
    dst: Vec<u8>,
    addr: Vec<u64>,
    size: Vec<u8>,
    pc: Vec<u64>,
    taken: Vec<bool>,
    target: Vec<u64>,
}

impl TraceBuffer {
    /// Captures the first `n` µops of `source` (after a reset), leaving
    /// the source reset again, exactly like [`crate::write_trace`].
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn capture(source: &mut dyn TraceSource, n: u64) -> Self {
        assert!(n > 0, "cannot capture an empty trace");
        let n = n as usize;
        let mut buf = TraceBuffer {
            kind: Vec::with_capacity(n),
            src0: Vec::with_capacity(n),
            src1: Vec::with_capacity(n),
            dst: Vec::with_capacity(n),
            addr: Vec::with_capacity(n),
            size: Vec::with_capacity(n),
            pc: Vec::with_capacity(n),
            taken: Vec::with_capacity(n),
            target: Vec::with_capacity(n),
        };
        source.reset();
        for _ in 0..n {
            let u = source.next_uop();
            buf.kind.push(u.kind);
            buf.src0.push(reg_byte(u.srcs[0]));
            buf.src1.push(reg_byte(u.srcs[1]));
            buf.dst.push(reg_byte(u.dst));
            buf.addr.push(u.addr);
            buf.size.push(u.size);
            buf.pc.push(u.pc);
            buf.taken.push(u.taken);
            buf.target.push(u.target);
        }
        source.reset();
        buf
    }

    /// Number of captured µops (one cycle of the replay).
    pub fn len(&self) -> usize {
        self.kind.len()
    }

    /// Whether the buffer is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.kind.is_empty()
    }

    /// Reassembles the `i`-th captured µop.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn uop(&self, i: usize) -> Uop {
        Uop {
            kind: self.kind[i],
            srcs: [reg_from(self.src0[i]), reg_from(self.src1[i])],
            dst: reg_from(self.dst[i]),
            addr: self.addr[i],
            size: self.size[i],
            pc: self.pc[i],
            taken: self.taken[i],
            target: self.target[i],
        }
    }

    /// A replay cursor over this shared buffer, positioned at µop 0.
    pub fn cursor(self: &Arc<Self>) -> TraceCursor {
        TraceCursor {
            buf: Arc::clone(self),
            pos: 0,
        }
    }
}

/// A cycling replay cursor over a shared [`TraceBuffer`].
///
/// Cloning is an `Arc` bump; every clone starts from the *current*
/// position, matching how `SyntheticTrace: Clone` snapshots generator
/// state (BADCO training clones its trace argument).
#[derive(Debug, Clone)]
pub struct TraceCursor {
    buf: Arc<TraceBuffer>,
    pos: usize,
}

impl TraceCursor {
    /// A cursor at µop 0 of `buf`.
    pub fn new(buf: Arc<TraceBuffer>) -> Self {
        TraceCursor { buf, pos: 0 }
    }

    /// The underlying shared buffer.
    pub fn buffer(&self) -> &Arc<TraceBuffer> {
        &self.buf
    }
}

impl TraceSource for TraceCursor {
    #[inline]
    fn next_uop(&mut self) -> Uop {
        let u = self.buf.uop(self.pos);
        self.pos += 1;
        if self.pos == self.buf.len() {
            self.pos = 0;
        }
        u
    }

    fn reset(&mut self) {
        self.pos = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::benchmark_by_name;

    #[test]
    fn capture_matches_generator_exactly() {
        let bench = benchmark_by_name("gcc").unwrap();
        let mut original = bench.trace();
        let buf = Arc::new(TraceBuffer::capture(&mut original, 5_000));
        assert_eq!(buf.len(), 5_000);
        let mut cursor = buf.cursor();
        original.reset();
        for i in 0..5_000 {
            assert_eq!(cursor.next_uop(), original.next_uop(), "µop {i}");
        }
    }

    #[test]
    fn cursor_cycles_like_thread_restart() {
        let bench = benchmark_by_name("hmmer").unwrap();
        let buf = Arc::new(TraceBuffer::capture(&mut bench.trace(), 100));
        let mut cursor = buf.cursor();
        let first: Vec<Uop> = (0..100).map(|_| cursor.next_uop()).collect();
        let second: Vec<Uop> = (0..100).map(|_| cursor.next_uop()).collect();
        assert_eq!(first, second, "replay must cycle");
        cursor.reset();
        assert_eq!(cursor.next_uop(), first[0]);
    }

    #[test]
    fn wrap_matches_generator_reset() {
        // The generator's thread-restart rule is reset-after-trace_len;
        // the cursor's is modular wrap. The streams must agree across the
        // boundary.
        let bench = benchmark_by_name("mcf").unwrap();
        let n = 257;
        let buf = Arc::new(TraceBuffer::capture(&mut bench.trace(), n));
        let mut cursor = buf.cursor();
        let mut generator = bench.trace();
        for pass in 0..3 {
            generator.reset();
            for i in 0..n {
                assert_eq!(
                    cursor.next_uop(),
                    generator.next_uop(),
                    "pass {pass} µop {i}"
                );
            }
        }
    }

    #[test]
    fn clones_replay_independently() {
        let bench = benchmark_by_name("soplex").unwrap();
        let buf = Arc::new(TraceBuffer::capture(&mut bench.trace(), 64));
        let mut a = buf.cursor();
        for _ in 0..10 {
            a.next_uop();
        }
        let mut b = a.clone();
        // Both continue from µop 10 and do not disturb each other.
        let ua = a.next_uop();
        let ub = b.next_uop();
        assert_eq!(ua, ub);
        a.next_uop();
        assert_eq!(b.next_uop(), buf.uop(11), "b is unaffected by a");
    }

    #[test]
    fn agrees_with_file_trace_replay() {
        // Same capture semantics as the AoS FileTrace codec.
        let bench = benchmark_by_name("povray").unwrap();
        let mut raw = Vec::new();
        crate::write_trace(&mut bench.trace(), 500, &mut raw).unwrap();
        let mut file = crate::FileTrace::read(raw.as_slice()).unwrap();
        let buf = Arc::new(TraceBuffer::capture(&mut bench.trace(), 500));
        let mut cursor = buf.cursor();
        for i in 0..1_500 {
            assert_eq!(cursor.next_uop(), file.next_uop(), "µop {i}");
        }
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_capture_panics() {
        let bench = benchmark_by_name("gcc").unwrap();
        TraceBuffer::capture(&mut bench.trace(), 0);
    }
}

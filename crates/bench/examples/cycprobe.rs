//! Ad-hoc cost probe for the detailed-sim kernel: prints event counts
//! alongside wall time so per-cycle vs per-µop costs can be attributed.

use mps_bench::{bench_trace_buffers, bench_uncore};
use mps_sim_cpu::{CoreConfig, MulticoreSim};
use mps_uncore::{PolicyKind, Uncore};
use mps_workloads::TraceSource;

fn main() {
    let bufs = bench_trace_buffers(2000);
    let t0 = std::time::Instant::now();
    let uncore = Uncore::new(bench_uncore(2, PolicyKind::Lru), 2);
    let traces: Vec<Box<dyn TraceSource>> = bufs
        .iter()
        .map(|b| Box::new(b.cursor()) as Box<dyn TraceSource>)
        .collect();
    let r = MulticoreSim::new(CoreConfig::ispass2013(), uncore, traces).run(2000);
    let dt = t0.elapsed();
    println!(
        "cycles={} ipc={:?} wall={:?} ns/cycle={:.0}",
        r.total_cycles,
        r.ipc,
        dt,
        dt.as_nanos() as f64 / r.total_cycles as f64
    );
    println!("instructions={}", r.instructions);
    for (c, s) in r.core_stats.iter().enumerate() {
        println!("core{c}: {s:?}");
    }
    println!("uncore: {:?}", r.uncore_stats);
}

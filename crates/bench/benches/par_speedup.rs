//! Scaling of the `mps-par` work-stealing pool on real experiment grids.
//!
//! Two layers:
//!
//! * `par_overhead` — the pool's fixed cost on trivially small closures
//!   (spawn + deque + merge), the price paid when a grid is too small to
//!   parallelise profitably;
//! * `population_table` — the headline from the ISSUE: building the
//!   4-core population table at 1/2/4 workers. The jobs=4 sample should
//!   run at least ~2x faster than jobs=1 on a 4-core host (asserted as a
//!   test in `mps-harness`, measured precisely here).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mps_harness::{Scale, StudyContext};
use std::hint::black_box;

fn par_overhead(c: &mut Criterion) {
    let items: Vec<u64> = (0..256).collect();
    let mut group = c.benchmark_group("par_overhead_256_trivial_items");
    for jobs in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                black_box(mps_par::par_map_indexed(jobs, &items, |i, v| {
                    v.wrapping_mul(i as u64)
                }))
            })
        });
    }
    group.finish();
}

fn population_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("population_table_4core");
    for jobs in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                // A fresh context per iteration: the throughput-table cache
                // would otherwise absorb every run after the first.
                let ctx = StudyContext::with_jobs(Scale::test(), jobs);
                black_box(
                    ctx.badco_table(4, mps_uncore::PolicyKind::Lru)
                        .unwrap()
                        .len(),
                )
            })
        });
    }
    group.finish();
}

fn resample_grid(c: &mut Criterion) {
    use mps_sampling::{empirical_confidence_jobs, RandomSampling};
    let ctx = StudyContext::with_jobs(Scale::test(), 1);
    let data = ctx
        .badco_pair_data(
            4,
            mps_uncore::PolicyKind::Lru,
            mps_uncore::PolicyKind::Drrip,
            mps_metrics::ThroughputMetric::IpcThroughput,
        )
        .unwrap();
    let pop = ctx.population(4).unwrap();
    let mut group = c.benchmark_group("empirical_confidence_1000_samples");
    for jobs in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                let mut rng = ctx.rng(0xBE7C);
                black_box(empirical_confidence_jobs(
                    &RandomSampling,
                    &pop,
                    &data,
                    20,
                    1_000,
                    &mut rng,
                    jobs,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, par_overhead, population_table, resample_grid);
criterion_main!(benches);

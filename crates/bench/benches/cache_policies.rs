//! Per-access cost of each LLC replacement policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mps_stats::rng::Rng;
use mps_uncore::{AccessType, Cache, PolicyKind};
use std::hint::black_box;

/// A mixed address stream with locality: 60% over a hot 256-line set,
/// the rest streaming.
fn stream(n: usize) -> Vec<u64> {
    let mut rng = Rng::new(0xCACE);
    let mut cursor = 1_000_000u64;
    (0..n)
        .map(|_| {
            if rng.chance(0.6) {
                rng.below(256)
            } else {
                cursor += 1;
                cursor
            }
        })
        .collect()
}

fn policy_access_cost(c: &mut Criterion) {
    let addrs = stream(10_000);
    let mut group = c.benchmark_group("llc_policy_access");
    for policy in [
        PolicyKind::Lru,
        PolicyKind::Random,
        PolicyKind::Fifo,
        PolicyKind::Dip,
        PolicyKind::Drrip,
        PolicyKind::Srrip,
        PolicyKind::Bip,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let mut cache = Cache::new(128, 16, policy);
                    for &a in &addrs {
                        black_box(cache.access(a, AccessType::Read));
                    }
                    cache.stats().demand_misses
                })
            },
        );
    }
    group.finish();
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = policy_access_cost
}
criterion_main!(benches);

//! Measures the cost of `mps-obs` instrumentation against an
//! uninstrumented baseline.
//!
//! Benches over the same synthetic "hot loop" (a splitmix64 mix per
//! iteration, so the loop body is not optimized away):
//!
//! * `baseline`         — the bare loop, no instrumentation calls at all;
//! * `counters`         — the loop plus two `Counter::add` calls per
//!   iteration, the density of the simulator core-step loop;
//! * `counters+span`    — the same, wrapped in one span per batch;
//! * `histogram`        — the loop plus one `Histogram::record` per
//!   iteration (bucket math + one relaxed atomic add);
//! * `gauge`            — the loop plus one `Gauge::set` per iteration;
//! * `estimator`        — the loop plus one `Estimator::record` per
//!   iteration (a Welford moments update under a short mutex hold — the
//!   priciest primitive, priced here so convergence probes stay honest).
//!
//! With the `obs` feature off (`cargo bench --no-default-features`) all
//! legs must be indistinguishable — the calls compile to nothing. With it
//! on, `counters`/`histogram`/`gauge` stay within a few relaxed atomic
//! operations of the baseline, and `estimator` within a mutex+FP update.
//!
//! A reference snapshot of both feature configurations (MPS_BENCH_FAST,
//! dev container) lives in `benches/results/obs_overhead.md`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

const ITERS: u64 = 10_000;

#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");

    group.bench_function("baseline", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..ITERS {
                acc = acc.wrapping_add(mix(i));
            }
            black_box(acc)
        })
    });

    let instructions = mps_obs::counter("bench.overhead.instructions");
    let misses = mps_obs::counter("bench.overhead.misses");

    group.bench_function("counters", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..ITERS {
                acc = acc.wrapping_add(mix(i));
                instructions.incr();
                misses.add(acc & 1);
            }
            black_box(acc)
        })
    });

    group.bench_function("counters+span", |b| {
        b.iter(|| {
            let span = mps_obs::span("bench.overhead.batch");
            let mut acc = 0u64;
            for i in 0..ITERS {
                acc = acc.wrapping_add(mix(i));
                instructions.incr();
                misses.add(acc & 1);
            }
            span.finish();
            black_box(acc)
        })
    });

    let latency = mps_obs::histogram("bench.overhead.latency");
    group.bench_function("histogram", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..ITERS {
                acc = acc.wrapping_add(mix(i));
                latency.record(acc & 0xFFFF);
            }
            black_box(acc)
        })
    });

    let depth = mps_obs::gauge("bench.overhead.depth");
    group.bench_function("gauge", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..ITERS {
                acc = acc.wrapping_add(mix(i));
                depth.set((acc & 0xFF) as i64);
            }
            black_box(acc)
        })
    });

    let spread = mps_obs::estimator("bench.overhead.spread");
    group.bench_function("estimator", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..ITERS {
                acc = acc.wrapping_add(mix(i));
                spread.record((acc & 0xFFFF) as f64);
            }
            black_box(acc)
        })
    });

    group.finish();
    println!(
        "obs feature: {}",
        if mps_obs::enabled() {
            "enabled"
        } else {
            "disabled (all legs must match)"
        }
    );
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);

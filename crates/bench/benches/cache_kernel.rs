//! Per-access cost of the packed cache kernel under every paper policy.
//!
//! This measures `Cache::access` itself — the fused tag/metadata lookup
//! over the structure-of-arrays line state — on an LLC-shaped geometry
//! with a mixed hit/miss/eviction reference stream. `cache_policies`
//! compares policies at the uncore level; this bench isolates the array
//! kernel the tentpole data-layout work optimizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mps_uncore::{AccessType, Cache, PolicyKind};
use std::hint::black_box;

/// LLC-shaped geometry (the capacity-scaled Table II LLC: 512 sets × 16).
const SETS: usize = 512;
const WAYS: usize = 16;
/// Footprint of ~1.5× the cache so the stream mixes hits, misses,
/// evictions and dirty writebacks.
const FOOTPRINT: u64 = (SETS * WAYS) as u64 * 3 / 2;

fn cache_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_kernel");
    for policy in PolicyKind::PAPER_POLICIES {
        group.bench_with_input(BenchmarkId::from_parameter(policy), &policy, |bench, &p| {
            let mut cache = Cache::new(SETS, WAYS, p);
            let mut i = 0u64;
            bench.iter(|| {
                let mut hits = 0u64;
                for _ in 0..4_096u64 {
                    // Strided walk with reuse: coprime stride covers
                    // every line of the oversized footprint.
                    let line = (i * 7) % FOOTPRINT;
                    let kind = if i.is_multiple_of(3) {
                        AccessType::Write
                    } else {
                        AccessType::Read
                    };
                    hits += u64::from(cache.access(line, kind).is_hit());
                    i += 1;
                }
                black_box(hits)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = cache_kernel
}
criterion_main!(benches);

//! Sampler throughput: rank/unrank and the four draw methods.

use criterion::{criterion_group, criterion_main, Criterion};
use mps_sampling::{
    BalancedRandomSampling, BenchmarkStratification, Population, RandomSampling, Sampler,
    WorkloadSpace, WorkloadStratification,
};
use mps_stats::rng::Rng;
use std::hint::black_box;

fn rank_unrank(c: &mut Criterion) {
    let space = WorkloadSpace::new(22, 4);
    let n = space.population_size();
    c.bench_function("unrank_rank_4core", |b| {
        let mut rng = Rng::new(1);
        b.iter(|| {
            let r = rng.below_u128(n);
            let w = space.unrank(r);
            black_box(space.rank(&w))
        })
    });
}

fn draws(c: &mut Criterion) {
    let pop = Population::full(22, 4);
    let mut rng = Rng::new(2);
    let d: Vec<f64> = (0..pop.len()).map(|_| rng.next_gaussian() * 0.01).collect();
    let bench_strata = BenchmarkStratification::new(
        mps_workloads::suite()
            .iter()
            .map(|b| b.nominal_class.index())
            .collect(),
    );
    let workload_strata = WorkloadStratification::with_defaults(&d);
    let balanced = BalancedRandomSampling;
    let samplers: Vec<(&str, &dyn Sampler)> = vec![
        ("random", &RandomSampling),
        ("bal_random", &balanced),
        ("bench_strata", &bench_strata),
        ("workload_strata", &workload_strata),
    ];
    let mut group = c.benchmark_group("draw_w50");
    for (name, s) in samplers {
        group.bench_function(name, |b| {
            let mut rng = Rng::new(3);
            b.iter(|| black_box(s.draw(&pop, 50, &mut rng).len()))
        });
    }
    group.finish();
}

fn strata_build(c: &mut Criterion) {
    let mut rng = Rng::new(4);
    let d: Vec<f64> = (0..12_650).map(|_| rng.next_gaussian() * 0.02).collect();
    c.bench_function("workload_strata_build_12650", |b| {
        b.iter(|| black_box(WorkloadStratification::with_defaults(&d).num_strata()))
    });
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = rank_unrank, draws, strata_build
}
criterion_main!(benches);

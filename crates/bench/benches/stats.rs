//! Statistics microbenches: erf, streaming moments, confidence model.

use criterion::{criterion_group, criterion_main, Criterion};
use mps_stats::{degree_of_confidence, erf, Moments};
use std::hint::black_box;

fn erf_bench(c: &mut Criterion) {
    c.bench_function("erf_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            let mut x = -6.0;
            while x < 6.0 {
                acc += erf(black_box(x));
                x += 0.01;
            }
            black_box(acc)
        })
    });
}

fn moments_bench(c: &mut Criterion) {
    let data: Vec<f64> = (0..10_000).map(|i| (i as f64 * 0.37).sin()).collect();
    c.bench_function("moments_10k", |b| {
        b.iter(|| {
            let m: Moments = data.iter().collect();
            black_box(m.cv())
        })
    });
}

fn confidence_bench(c: &mut Criterion) {
    c.bench_function("confidence_model", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for w in 1..500usize {
                acc += degree_of_confidence(black_box(3.0), w);
            }
            black_box(acc)
        })
    });
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = erf_bench, moments_bench, confidence_bench
}
criterion_main!(benches);

//! Ablation: cost of workload-stratification construction over the
//! `T_SD` × `W_T` grid called out in `DESIGN.md`.
//!
//! (The quality side of the ablation — how confidence varies with the
//! parameters — is in the `stratification_parameters` integration test
//! and the harness.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mps_sampling::WorkloadStratification;
use mps_stats::rng::Rng;
use std::hint::black_box;

fn strata_parameter_grid(c: &mut Criterion) {
    let mut rng = Rng::new(0xAB1A);
    let d: Vec<f64> = (0..12_650).map(|_| rng.next_gaussian() * 0.02).collect();
    let mut group = c.benchmark_group("strata_build_grid");
    for tsd in [0.0005, 0.001, 0.005] {
        for wt in [25usize, 50, 100] {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("tsd{tsd}_wt{wt}")),
                &(tsd, wt),
                |b, &(tsd, wt)| {
                    b.iter(|| black_box(WorkloadStratification::build(&d, tsd, wt).num_strata()))
                },
            );
        }
    }
    group.finish();
}

fn dip_dueling_ablation(c: &mut Criterion) {
    // Cost comparison of DIP against its component policies: the dueling
    // machinery must not dominate access cost.
    use mps_uncore::{AccessType, Cache, PolicyKind};
    let mut rng = Rng::new(0xD1B);
    let addrs: Vec<u64> = (0..8_000).map(|_| rng.below(4096)).collect();
    let mut group = c.benchmark_group("dip_vs_components");
    for policy in [PolicyKind::Lru, PolicyKind::Bip, PolicyKind::Dip] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let mut cache = Cache::new(64, 8, policy);
                    for &a in &addrs {
                        cache.access(a, AccessType::Read);
                    }
                    black_box(cache.stats().demand_misses)
                })
            },
        );
    }
    group.finish();
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = strata_parameter_grid, dip_dueling_ablation
}
criterion_main!(benches);

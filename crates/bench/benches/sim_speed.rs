//! Table III analog: detailed-simulator vs BADCO simulation speed.
//!
//! Criterion reports time per simulated workload; instructions/second (the
//! paper's MIPS) is `trace_len × cores / time`. The `mps-harness table3`
//! binary prints the full Table III; this bench tracks regressions.

use criterion::{criterion_group, criterion_main, Criterion};
use mps_badco::BadcoMulticoreSim;
use mps_bench::{bench_models, bench_pair, bench_trace_buffers, bench_uncore};
use mps_sim_cpu::{CoreConfig, MulticoreSim};
use mps_uncore::{PolicyKind, Uncore};
use mps_workloads::TraceSource;
use std::hint::black_box;
use std::sync::Arc;

const TRACE_LEN: u64 = 2_000;

fn detailed_speed(c: &mut Criterion) {
    // Memoized SoA buffers outside the timed region, cursors inside —
    // exactly how `StudyContext::detailed_run` feeds the simulator.
    let bufs = bench_trace_buffers(TRACE_LEN);
    c.bench_function("detailed_sim_2core_2k_instr", |bench| {
        bench.iter(|| {
            let uncore = Uncore::new(bench_uncore(2, PolicyKind::Lru), 2);
            let traces: Vec<Box<dyn TraceSource>> = bufs
                .iter()
                .map(|b| Box::new(b.cursor()) as Box<dyn TraceSource>)
                .collect();
            let r = MulticoreSim::new(CoreConfig::ispass2013(), uncore, traces).run(TRACE_LEN);
            black_box(r.total_cycles)
        })
    });
}

fn badco_speed(c: &mut Criterion) {
    let models = bench_models(TRACE_LEN);
    c.bench_function("badco_sim_2core_2k_instr", |bench| {
        bench.iter(|| {
            let uncore = Uncore::new(bench_uncore(2, PolicyKind::Lru), 2);
            let bound: Vec<_> = models.iter().map(Arc::clone).collect();
            let r = BadcoMulticoreSim::new(uncore, bound).run();
            black_box(r.total_cycles)
        })
    });
}

fn badco_model_build(c: &mut Criterion) {
    let (a, _) = bench_pair();
    c.bench_function("badco_model_build_2k_instr", |bench| {
        bench.iter(|| {
            let timing = mps_badco::BadcoTiming::from_uncore(&bench_uncore(2, PolicyKind::Lru));
            let m = mps_badco::BadcoModel::build(
                a.name(),
                &CoreConfig::ispass2013(),
                &a.trace(),
                TRACE_LEN,
                timing,
            );
            black_box(m.nodes().len())
        })
    });
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = detailed_speed, badco_speed, badco_model_build
}
criterion_main!(benches);

//! Synthetic trace generation vs SoA capture and replay.
//!
//! Quantifies the memoization win: generating a µop from the synthetic
//! generator (RNG rolls + address-pattern arithmetic) vs replaying it
//! from a captured [`TraceBuffer`] by index. `capture` measures the
//! one-time cost `StudyContext` pays per benchmark; `cursor_replay` the
//! steady-state cost every simulation run pays per µop afterwards.

use criterion::{criterion_group, criterion_main, Criterion};
use mps_bench::bench_pair;
use mps_workloads::{TraceBuffer, TraceSource};
use std::hint::black_box;
use std::sync::Arc;

const N: u64 = 2_000;

fn generator(c: &mut Criterion) {
    let (a, _) = bench_pair();
    let mut trace = a.trace();
    c.bench_function("trace_gen/synthetic_2k", |bench| {
        bench.iter(|| {
            trace.reset();
            let mut sum = 0u64;
            for _ in 0..N {
                sum = sum.wrapping_add(trace.next_uop().addr);
            }
            black_box(sum)
        })
    });
}

fn capture(c: &mut Criterion) {
    let (a, _) = bench_pair();
    let mut trace = a.trace();
    c.bench_function("trace_gen/capture_2k", |bench| {
        bench.iter(|| black_box(TraceBuffer::capture(&mut trace, N).len()))
    });
}

fn cursor_replay(c: &mut Criterion) {
    let (a, _) = bench_pair();
    let buf = Arc::new(TraceBuffer::capture(&mut a.trace(), N));
    let mut cursor = buf.cursor();
    c.bench_function("trace_gen/cursor_replay_2k", |bench| {
        bench.iter(|| {
            cursor.reset();
            let mut sum = 0u64;
            for _ in 0..N {
                sum = sum.wrapping_add(cursor.next_uop().addr);
            }
            black_box(sum)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = generator, capture, cursor_replay
}
criterion_main!(benches);

//! Benchmark support crate.
//!
//! The Criterion benches under `benches/` cover:
//!
//! * `sim_speed` — the Table III measurement: instructions/second of the
//!   detailed simulator vs BADCO on the same workloads,
//! * `cache_policies` — per-access cost of each replacement policy,
//! * `sampling` — rank/unrank and sampler draw throughput,
//! * `stats` — erf / moments / confidence-model microbenches,
//! * `ablation` — cost of workload-stratification construction across the
//!   `T_SD` × `W_T` parameter grid (the quality side of the same ablation
//!   lives in `mps-harness`).
//!
//! This library exposes tiny fixture helpers shared by the benches.

use mps_badco::{BadcoModel, BadcoTiming};
use mps_sim_cpu::CoreConfig;
use mps_uncore::{PolicyKind, UncoreConfig};
use mps_workloads::{suite, BenchmarkSpec, TraceBuffer};
use std::sync::Arc;

/// The capacity-scaled uncore used by benches (matches the harness).
pub fn bench_uncore(cores: usize, policy: PolicyKind) -> UncoreConfig {
    UncoreConfig::ispass2013_scaled(cores, policy, 16)
}

/// A short fixed benchmark pair used by simulator benches.
pub fn bench_pair() -> (BenchmarkSpec, BenchmarkSpec) {
    let s = suite();
    (s[12].clone(), s[21].clone()) // gcc and soplex
}

/// Captured SoA trace buffers for the bench pair — the memoized-replay
/// fixture matching how `StudyContext` feeds the simulators.
pub fn bench_trace_buffers(trace_len: u64) -> Vec<Arc<TraceBuffer>> {
    let (a, b) = bench_pair();
    [a, b]
        .iter()
        .map(|s| Arc::new(TraceBuffer::capture(&mut s.trace(), trace_len)))
        .collect()
}

/// Builds BADCO models for the bench pair at the given trace length.
pub fn bench_models(trace_len: u64) -> Vec<Arc<BadcoModel>> {
    let (a, b) = bench_pair();
    let timing = BadcoTiming::from_uncore(&bench_uncore(2, PolicyKind::Lru));
    [a, b]
        .iter()
        .map(|s| {
            Arc::new(BadcoModel::build(
                s.name(),
                &CoreConfig::ispass2013(),
                &s.trace(),
                trace_len,
                timing,
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let (a, b) = bench_pair();
        assert_eq!(a.name(), "gcc");
        assert_eq!(b.name(), "soplex");
        let m = bench_models(500);
        assert_eq!(m.len(), 2);
    }
}

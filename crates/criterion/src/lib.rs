//! Offline stand-in for the subset of [`criterion`](https://docs.rs/criterion)
//! this workspace uses.
//!
//! The build environment cannot fetch the real crate, so this stub keeps
//! `cargo bench` working: it implements `Criterion::bench_function`,
//! benchmark groups with `bench_with_input`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a simple
//! calibrated loop — median time per iteration over `sample_size` samples,
//! printed as `name  time: [median ± spread]`. There are no plots, no
//! saved baselines and no statistical regression analysis; the numbers
//! are for eyeballing relative cost (which is all the workspace's benches
//! and `docs/observability.md` rely on).
//!
//! Two environment variables extend the stub for CI and perf tracking
//! (see `docs/performance.md`):
//!
//! * `MPS_BENCH_JSON=<path>` — append one JSON line per benchmark:
//!   `{"name":...,"low_ns":...,"median_ns":...,"high_ns":...,"samples":N}`.
//! * `MPS_BENCH_FAST=1` — shrink sample counts and time budgets so a
//!   whole bench binary finishes in seconds (a smoke run, not a
//!   measurement).

pub use std::hint::black_box;

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from a parameter value, as in the real crate.
    pub fn from_parameter<P: fmt::Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An id with an explicit function name and parameter.
    pub fn new<P: fmt::Display>(name: &str, p: P) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// The measurement driver handed to bench closures.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, storing per-iteration samples for the report.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: run until the warm-up budget is spent,
        // tracking how long one iteration takes.
        let warm_start = Instant::now();
        let mut iters_done: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || iters_done == 0 {
            black_box(routine());
            iters_done += 1;
            if iters_done >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_done as f64;

        // Choose the batch size so a sample costs ~measurement/sample_size.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t0.elapsed().as_secs_f64();
            self.samples_ns.push(elapsed * 1e9 / batch as f64);
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<48} (no samples)");
            return;
        }
        self.samples_ns
            .sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let median = self.samples_ns[self.samples_ns.len() / 2];
        let lo = self.samples_ns[0];
        let hi = self.samples_ns[self.samples_ns.len() - 1];
        println!(
            "{name:<48} time: [{} {} {}]",
            format_ns(lo),
            format_ns(median),
            format_ns(hi),
        );
        emit_json(name, lo, median, hi, self.samples_ns.len());
    }
}

/// Appends one JSON result line to `$MPS_BENCH_JSON` when set; emission
/// failures print a warning instead of failing the bench run.
fn emit_json(name: &str, lo: f64, median: f64, hi: f64, samples: usize) {
    let Ok(path) = std::env::var("MPS_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => vec![' '],
            c => vec![c],
        })
        .collect();
    let line = format!(
        "{{\"name\":\"{escaped}\",\"low_ns\":{lo:.1},\"median_ns\":{median:.1},\
         \"high_ns\":{hi:.1},\"samples\":{samples}}}\n"
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    if let Err(e) = written {
        eprintln!("warning: MPS_BENCH_JSON={path}: {e}");
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Top-level benchmark harness configuration and driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    fn bencher(&self) -> Bencher {
        // MPS_BENCH_FAST turns every bench into a smoke run (CI uses it
        // to prove the benches execute, not to measure).
        let fast = std::env::var("MPS_BENCH_FAST").is_ok_and(|v| !v.is_empty() && v != "0");
        let (sample_cap, time_cap, warm_cap) = if fast {
            (3, Duration::from_millis(120), Duration::from_millis(20))
        } else {
            // Cap so the stub's whole-suite wall time stays reasonable
            // even with generous configs meant for the real crate.
            (
                usize::MAX,
                Duration::from_secs(2),
                Duration::from_millis(500),
            )
        };
        Bencher {
            sample_size: self.sample_size.min(sample_cap),
            measurement_time: self.measurement_time.min(time_cap),
            warm_up_time: self.warm_up_time.min(warm_cap),
            samples_ns: Vec::new(),
        }
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = self.bencher();
        f(&mut b);
        b.report(&id.to_string());
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing the parent configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = self.c.bencher();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = self.c.bencher();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, as in the real crate.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        /// Runs this criterion benchmark group.
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_ids_render() {
        assert_eq!(BenchmarkId::from_parameter("lru").to_string(), "lru");
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }

    #[test]
    fn json_sink_appends_result_lines() {
        let path =
            std::env::temp_dir().join(format!("criterion_stub_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("MPS_BENCH_JSON", &path);
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(2));
        c.bench_function("json_smoke", |b| b.iter(|| black_box(2 * 2)));
        std::env::remove_var("MPS_BENCH_JSON");
        let body = std::fs::read_to_string(&path).expect("sink file written");
        let _ = std::fs::remove_file(&path);
        let line = body.lines().last().expect("one line per benchmark");
        assert!(line.starts_with("{\"name\":\"json_smoke\""), "{line}");
        assert!(line.contains("\"median_ns\":"), "{line}");
        assert!(line.ends_with(&format!("\"samples\":{}}}", 2)), "{line}");
    }
}

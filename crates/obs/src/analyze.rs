//! Offline trace analysis: turn a `--trace` JSONL file into answers.
//!
//! Three consumers, all pure functions over parsed [`Record`]s (so they
//! compile and run regardless of the `obs` feature — a trace produced by
//! an instrumented build is analyzable by any build):
//!
//! * [`summarize`] — a span-*tree* summary: spans aggregated by their
//!   name-path (root;child;…), with **inclusive** wall time (the span's
//!   own duration) and **exclusive** wall time (inclusive minus the
//!   inclusive time of direct children), plus event tallies and the
//!   trace-wide counter totals;
//! * [`TraceSummary::folded`] — folded-stack output (`a;b;c 1234` lines,
//!   exclusive µs per path) ready for `flamegraph.pl` / speedscope;
//! * [`diff`] — cross-run comparison of two summaries: per-span-name
//!   wall-time deltas and counter-delta regressions, with a configurable
//!   regression threshold backing the CLI's `--fail-on-regress` exit
//!   code.
//!
//! # What counts as a regression
//!
//! *Wall time*: a span name whose total inclusive time grew by more than
//! the threshold percentage — ignored for spans under
//! [`MIN_REGRESS_WALL_US`] total (timer noise dominates below that).
//! *Counters*: any trace-wide counter total that grew by more than the
//! threshold. Counters under the `par.` prefix are reported but never
//! classified as regressions by default: they describe *scheduling*
//! (steals, worker counts), which legitimately varies with `--jobs`,
//! while the determinism contract holds for every other counter — this
//! is exactly the carve-out `docs/observability.md` documents for the
//! thread-invariance suite.

use crate::jsonl::Record;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Wall-time regressions are only judged for span names with at least
/// this much total inclusive time (µs) in the baseline.
pub const MIN_REGRESS_WALL_US: u64 = 1_000;

/// Counter prefixes describing scheduling rather than work; excluded
/// from regression classification (still shown in diff output).
pub const SCHEDULING_PREFIXES: [&str; 1] = ["par."];

/// One node of the path-aggregated span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name at this tree position.
    pub name: String,
    /// Finished spans aggregated into this node.
    pub calls: u64,
    /// Summed inclusive wall time (µs).
    pub inclusive_us: u64,
    /// Summed exclusive wall time (µs): inclusive minus direct children.
    pub exclusive_us: u64,
    /// Child nodes, sorted by inclusive time, descending.
    pub children: Vec<SpanNode>,
}

/// Everything [`summarize`] extracts from one trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Root nodes of the span tree (spans with no parent in the trace),
    /// sorted by inclusive time, descending.
    pub roots: Vec<SpanNode>,
    /// Per-span-name totals: `name → (calls, inclusive µs, exclusive µs)`.
    pub by_name: BTreeMap<String, (u64, u64, u64)>,
    /// Trace-wide counter totals. Summed over root spans only (deltas
    /// are inclusive, so roots already cover all descendants), and among
    /// roots only those not time-contained in another root: counters are
    /// process-global, so a worker-thread root running *inside* another
    /// root's window would re-count the same increments.
    pub counters: BTreeMap<String, u64>,
    /// Event occurrences per event name.
    pub events: BTreeMap<String, u64>,
    /// Number of span records.
    pub span_count: u64,
    /// Number of event records.
    pub event_count: u64,
    /// Wall-clock extent of the trace (µs): latest span end − earliest
    /// span start.
    pub wall_us: u64,
}

/// Builds the summary from parsed records (one trace file).
#[must_use]
pub fn summarize(records: &[Record]) -> TraceSummary {
    struct SpanRec<'a> {
        parent: Option<u64>,
        name: &'a str,
        start_us: u64,
        dur_us: u64,
        counters: &'a BTreeMap<String, u64>,
    }
    let mut spans: BTreeMap<u64, SpanRec> = BTreeMap::new();
    let mut summary = TraceSummary::default();

    for rec in records {
        match rec {
            Record::Span {
                id,
                parent,
                name,
                start_us,
                dur_us,
                counters,
            } => {
                summary.span_count += 1;
                spans.insert(
                    *id,
                    SpanRec {
                        parent: *parent,
                        name,
                        start_us: *start_us,
                        dur_us: *dur_us,
                        counters,
                    },
                );
            }
            Record::Event { name, .. } => {
                summary.event_count += 1;
                *summary.events.entry(name.clone()).or_insert(0) += 1;
            }
        }
    }
    if spans.is_empty() {
        return summary;
    }

    let mut min_start = u64::MAX;
    let mut max_end = 0u64;
    // Children's inclusive time per parent id, for exclusive times.
    let mut child_incl: BTreeMap<u64, u64> = BTreeMap::new();
    for s in spans.values() {
        min_start = min_start.min(s.start_us);
        max_end = max_end.max(s.start_us.saturating_add(s.dur_us));
        if let Some(p) = s.parent {
            if spans.contains_key(&p) {
                *child_incl.entry(p).or_insert(0) += s.dur_us;
            }
        }
    }
    summary.wall_us = max_end.saturating_sub(min_start);

    // Name-path of every span (root;…;name), memoized bottom-up. An id
    // referenced as parent but absent from the file (truncated trace)
    // promotes the child to a root.
    let mut paths: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    fn path_of<'a>(
        id: u64,
        spans: &BTreeMap<u64, SpanRec<'a>>,
        paths: &mut BTreeMap<u64, Vec<String>>,
    ) -> Vec<String> {
        if let Some(p) = paths.get(&id) {
            return p.clone();
        }
        let s = &spans[&id];
        let mut path = match s.parent.filter(|p| spans.contains_key(p)) {
            Some(p) => path_of(p, spans, paths),
            None => Vec::new(),
        };
        path.push(s.name.to_owned());
        paths.insert(id, path.clone());
        path
    }

    // Aggregate by path into a nested tree.
    #[derive(Default)]
    struct Agg {
        calls: u64,
        incl: u64,
        excl: u64,
        children: BTreeMap<String, Agg>,
    }
    let mut root = Agg::default();
    let ids: Vec<u64> = spans.keys().copied().collect();
    for id in ids {
        let path = path_of(id, &spans, &mut paths);
        let s = &spans[&id];
        let excl = s
            .dur_us
            .saturating_sub(child_incl.get(&id).copied().unwrap_or(0));
        let mut node = &mut root;
        for seg in &path {
            node = node.children.entry(seg.clone()).or_default();
        }
        node.calls += 1;
        node.incl += s.dur_us;
        node.excl += excl;

        let by = summary
            .by_name
            .entry(s.name.to_owned())
            .or_insert((0, 0, 0));
        by.0 += 1;
        by.1 += s.dur_us;
        by.2 += excl;
    }

    // Counter totals: roots only, and only roots whose window is not
    // contained in another root's. Spans started on pool worker threads
    // have no parent (the thread-local stack is per-thread) yet run
    // *during* the span that spawned them; since counter deltas read the
    // same process-global atomics, adding such a root would count the
    // concurrent work twice. Identical windows keep the oldest id —
    // ids are allocation-ordered, so that is the outermost span.
    let roots: Vec<u64> = spans
        .iter()
        .filter(|(_, s)| s.parent.filter(|p| spans.contains_key(p)).is_none())
        .map(|(id, _)| *id)
        .collect();
    for &id in &roots {
        let s = &spans[&id];
        let (rs, re) = (s.start_us, s.start_us.saturating_add(s.dur_us));
        let covered = roots.iter().any(|&oid| {
            if oid == id {
                return false;
            }
            let o = &spans[&oid];
            let (os, oe) = (o.start_us, o.start_us.saturating_add(o.dur_us));
            os <= rs && re <= oe && (os < rs || re < oe || oid < id)
        });
        if !covered {
            for (k, v) in s.counters {
                *summary.counters.entry(k.clone()).or_insert(0) += v;
            }
        }
    }

    fn into_nodes(agg: BTreeMap<String, Agg>) -> Vec<SpanNode> {
        let mut out: Vec<SpanNode> = agg
            .into_iter()
            .map(|(name, a)| SpanNode {
                name,
                calls: a.calls,
                inclusive_us: a.incl,
                exclusive_us: a.excl,
                children: into_nodes(a.children),
            })
            .collect();
        // Descending by inclusive time; name breaks ties deterministically.
        out.sort_by(|a, b| {
            b.inclusive_us
                .cmp(&a.inclusive_us)
                .then(a.name.cmp(&b.name))
        });
        out
    }
    summary.roots = into_nodes(root.children);
    summary
}

fn fmt_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us} µs")
    } else if us < 1_000_000 {
        format!("{:.2} ms", us as f64 / 1e3)
    } else {
        format!("{:.3} s", us as f64 / 1e6)
    }
}

impl TraceSummary {
    /// Folded-stack lines (`root;child;leaf <exclusive µs>`), sorted by
    /// path — feed them to `flamegraph.pl` or speedscope. Zero-exclusive
    /// paths are skipped.
    #[must_use]
    pub fn folded(&self) -> String {
        fn walk(prefix: &str, nodes: &[SpanNode], out: &mut Vec<String>) {
            for n in nodes {
                let path = if prefix.is_empty() {
                    n.name.clone()
                } else {
                    format!("{prefix};{}", n.name)
                };
                if n.exclusive_us > 0 {
                    out.push(format!("{path} {}", n.exclusive_us));
                }
                walk(&path, &n.children, out);
            }
        }
        let mut lines = Vec::new();
        walk("", &self.roots, &mut lines);
        lines.sort();
        let mut s = lines.join("\n");
        if !s.is_empty() {
            s.push('\n');
        }
        s
    }

    /// Human-readable report: the span tree, per-name totals, counter
    /// totals and event tallies.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== trace summary: {} spans, {} events, wall {} ==",
            self.span_count,
            self.event_count,
            fmt_us(self.wall_us)
        );
        if !self.roots.is_empty() {
            out.push_str("\n-- span tree (inclusive / exclusive) --\n");
            fn walk(out: &mut String, nodes: &[SpanNode], depth: usize) {
                for n in nodes {
                    let _ = writeln!(
                        out,
                        "{:indent$}{}  ×{}  {} / {}",
                        "",
                        n.name,
                        n.calls,
                        fmt_us(n.inclusive_us),
                        fmt_us(n.exclusive_us),
                        indent = depth * 2
                    );
                    walk(out, &n.children, depth + 1);
                }
            }
            walk(&mut out, &self.roots, 0);

            out.push_str("\n-- by span name --\n");
            let mut rows: Vec<(&String, &(u64, u64, u64))> = self.by_name.iter().collect();
            rows.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then(a.0.cmp(b.0)));
            let name_w = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(4).max(4);
            let _ = writeln!(
                out,
                "{:<name_w$}  {:>7}  {:>12}  {:>12}",
                "name", "calls", "inclusive", "exclusive"
            );
            for (name, (calls, incl, excl)) in rows {
                let _ = writeln!(
                    out,
                    "{name:<name_w$}  {calls:>7}  {:>12}  {:>12}",
                    fmt_us(*incl),
                    fmt_us(*excl)
                );
            }
        }
        if !self.counters.is_empty() {
            out.push_str("\n-- counter totals --\n");
            let name_w = self
                .counters
                .keys()
                .map(String::len)
                .max()
                .unwrap_or(4)
                .max(4);
            for (k, v) in &self.counters {
                let _ = writeln!(out, "{k:<name_w$}  {v}");
            }
        }
        if !self.events.is_empty() {
            out.push_str("\n-- events --\n");
            let name_w = self
                .events
                .keys()
                .map(String::len)
                .max()
                .unwrap_or(4)
                .max(4);
            for (k, v) in &self.events {
                let _ = writeln!(out, "{k:<name_w$}  ×{v}");
            }
        }
        out
    }
}

/// One compared quantity in a [`TraceDiff`].
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Span or counter name.
    pub name: String,
    /// Value in the baseline trace (µs for spans, count for counters).
    pub before: u64,
    /// Value in the contender trace.
    pub after: u64,
    /// Signed percent change (`+` is growth); `None` when `before` is 0.
    pub pct: Option<f64>,
    /// Whether this row exceeds the regression threshold.
    pub regressed: bool,
}

/// Result of [`diff`]: wall-time rows, counter rows, and the subset that
/// regressed beyond the threshold.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceDiff {
    /// Per-span-name inclusive wall-time comparison, worst growth first.
    pub wall: Vec<DiffRow>,
    /// Trace-wide counter-total comparison, worst growth first.
    pub counters: Vec<DiffRow>,
    /// Regression threshold used (percent growth).
    pub threshold_pct: f64,
}

impl TraceDiff {
    /// Rows (wall + counter) classified as regressions.
    #[must_use]
    pub fn regressions(&self) -> Vec<&DiffRow> {
        self.wall
            .iter()
            .chain(self.counters.iter())
            .filter(|r| r.regressed)
            .collect()
    }

    /// Counter rows classified as regressions (the deterministic half).
    #[must_use]
    pub fn counter_regressions(&self) -> Vec<&DiffRow> {
        self.counters.iter().filter(|r| r.regressed).collect()
    }

    /// Human-readable comparison report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== trace diff (regression threshold {:.1}%) ==",
            self.threshold_pct
        );
        let table = |out: &mut String, title: &str, rows: &[DiffRow], unit: &str| {
            if rows.is_empty() {
                return;
            }
            let _ = writeln!(out, "\n-- {title} --");
            let name_w = rows.iter().map(|r| r.name.len()).max().unwrap_or(4).max(4);
            let _ = writeln!(
                out,
                "{:<name_w$}  {:>14}  {:>14}  {:>9}",
                "name",
                format!("before ({unit})"),
                format!("after ({unit})"),
                "change"
            );
            for r in rows {
                let pct = match r.pct {
                    Some(p) => format!("{p:+.1}%"),
                    None if r.after > 0 => "new".to_owned(),
                    None => "-".to_owned(),
                };
                let mark = if r.regressed { "  << REGRESSED" } else { "" };
                let _ = writeln!(
                    out,
                    "{:<name_w$}  {:>14}  {:>14}  {pct:>9}{mark}",
                    r.name, r.before, r.after
                );
            }
        };
        table(
            &mut out,
            "inclusive wall time by span name",
            &self.wall,
            "µs",
        );
        table(&mut out, "counter totals", &self.counters, "count");
        let n = self.regressions().len();
        let _ = writeln!(
            out,
            "\n{} wall-time regression(s), {} counter regression(s)",
            self.wall.iter().filter(|r| r.regressed).count(),
            self.counter_regressions().len()
        );
        debug_assert_eq!(
            n,
            self.regressions().len(),
            "regression count is a pure function of the rows"
        );
        out
    }

    /// Machine-readable JSON form of the diff (one object, stable key
    /// order) for CI tooling and dashboards:
    ///
    /// ```json
    /// {"threshold_pct":10.0,
    ///  "wall_regressions":1,"counter_regressions":0,
    ///  "wall":[{"name":"sim.run","before":100,"after":130,"pct":30.0,"regressed":true}],
    ///  "counters":[…]}
    /// ```
    ///
    /// `pct` is `null` when the baseline was zero (a "new" row).
    #[must_use]
    pub fn to_json(&self) -> String {
        let rows = |rows: &[DiffRow]| {
            let mut out = String::from("[");
            for (i, r) in rows.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"before\":{},\"after\":{},\"pct\":{},\"regressed\":{}}}",
                    crate::jsonl::escape(&r.name),
                    r.before,
                    r.after,
                    r.pct.map_or_else(|| "null".to_owned(), |p| format!("{p}")),
                    r.regressed
                );
            }
            out.push(']');
            out
        };
        format!(
            "{{\"threshold_pct\":{},\"wall_regressions\":{},\"counter_regressions\":{},\"wall\":{},\"counters\":{}}}",
            self.threshold_pct,
            self.wall.iter().filter(|r| r.regressed).count(),
            self.counter_regressions().len(),
            rows(&self.wall),
            rows(&self.counters)
        )
    }
}

fn pct_change(before: u64, after: u64) -> Option<f64> {
    (before > 0).then(|| (after as f64 - before as f64) / before as f64 * 100.0)
}

fn is_scheduling(name: &str) -> bool {
    SCHEDULING_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// Compares two summaries (`before` = baseline, `after` = contender).
///
/// A wall-time row regresses when the span name's total inclusive time
/// grew by more than `threshold_pct` percent (baselines under
/// [`MIN_REGRESS_WALL_US`] are exempt). A counter row regresses when its
/// trace-wide total grew by more than `threshold_pct` percent, or
/// appeared from zero — except `par.*` scheduling counters, which vary
/// with worker count by design and are never classified as regressions.
#[must_use]
pub fn diff(before: &TraceSummary, after: &TraceSummary, threshold_pct: f64) -> TraceDiff {
    let mut wall = Vec::new();
    let names: std::collections::BTreeSet<&String> =
        before.by_name.keys().chain(after.by_name.keys()).collect();
    for name in names {
        let b = before.by_name.get(name).map_or(0, |v| v.1);
        let a = after.by_name.get(name).map_or(0, |v| v.1);
        let pct = pct_change(b, a);
        let regressed = b >= MIN_REGRESS_WALL_US && pct.is_some_and(|p| p > threshold_pct);
        wall.push(DiffRow {
            name: name.clone(),
            before: b,
            after: a,
            pct,
            regressed,
        });
    }

    let mut counters = Vec::new();
    let cnames: std::collections::BTreeSet<&String> = before
        .counters
        .keys()
        .chain(after.counters.keys())
        .collect();
    for name in cnames {
        let b = before.counters.get(name).copied().unwrap_or(0);
        let a = after.counters.get(name).copied().unwrap_or(0);
        let pct = pct_change(b, a);
        let grew = match pct {
            Some(p) => p > threshold_pct,
            None => a > 0, // appeared from zero
        };
        let regressed = grew && !is_scheduling(name);
        counters.push(DiffRow {
            name: name.clone(),
            before: b,
            after: a,
            pct,
            regressed,
        });
    }

    // Worst growth first; ties by name for deterministic output.
    let worst_first = |rows: &mut Vec<DiffRow>| {
        rows.sort_by(|x, y| {
            let px = x.pct.unwrap_or(f64::INFINITY);
            let py = y.pct.unwrap_or(f64::INFINITY);
            py.partial_cmp(&px)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(x.name.cmp(&y.name))
        });
    };
    worst_first(&mut wall);
    worst_first(&mut counters);

    TraceDiff {
        wall,
        counters,
        threshold_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonl::{encode_event, encode_span, parse_all};

    fn span(
        id: u64,
        parent: Option<u64>,
        name: &str,
        start: u64,
        dur: u64,
        counters: &[(&str, u64)],
    ) -> String {
        let map: BTreeMap<String, u64> = counters.iter().map(|&(k, v)| (k.to_owned(), v)).collect();
        encode_span(id, parent, name, start, dur, &map)
    }

    fn trace(lines: &[String]) -> Vec<Record> {
        parse_all(&lines.join("\n")).expect("test trace parses")
    }

    fn sample() -> Vec<Record> {
        trace(&[
            span(1, None, "root", 0, 1000, &[("sim.instructions", 500)]),
            span(2, Some(1), "child", 100, 300, &[("sim.instructions", 300)]),
            span(3, Some(1), "child", 500, 200, &[]),
            span(4, Some(2), "leaf", 150, 50, &[]),
            encode_event("note", &[("k", "v".to_owned())]),
        ])
    }

    #[test]
    fn tree_aggregates_inclusive_and_exclusive() {
        let s = summarize(&sample());
        assert_eq!(s.span_count, 4);
        assert_eq!(s.event_count, 1);
        assert_eq!(s.wall_us, 1000);
        assert_eq!(s.roots.len(), 1);
        let root = &s.roots[0];
        assert_eq!(root.name, "root");
        assert_eq!(root.inclusive_us, 1000);
        assert_eq!(root.exclusive_us, 500, "1000 − (300+200) child time");
        // The two `child` spans merge into one tree node.
        assert_eq!(root.children.len(), 1);
        let child = &root.children[0];
        assert_eq!(child.calls, 2);
        assert_eq!(child.inclusive_us, 500);
        assert_eq!(child.exclusive_us, 450, "500 − 50 leaf time");
        // Counter totals come from roots only (no double counting).
        assert_eq!(s.counters["sim.instructions"], 500);
        assert_eq!(s.by_name["child"], (2, 500, 450));
        let rendered = s.render();
        assert!(rendered.contains("span tree"), "{rendered}");
        assert!(rendered.contains("child"), "{rendered}");
    }

    #[test]
    fn concurrent_worker_roots_do_not_double_count_counters() {
        // A parallel run: the main root covers [0, 1000); two spans
        // started on pool worker threads have no parent (per-thread span
        // stack) and run inside that window. Their deltas observe the
        // same process-global counters, so only the covering root may
        // contribute — while a second, *sequential* root still counts.
        let s = summarize(&trace(&[
            span(1, None, "fig3", 0, 1000, &[("sim.instructions", 500)]),
            span(2, None, "worker", 100, 300, &[("sim.instructions", 280)]),
            span(3, None, "worker", 400, 600, &[("sim.instructions", 320)]),
            span(4, None, "fig4", 1000, 500, &[("sim.instructions", 200)]),
        ]));
        assert_eq!(s.roots.len(), 3, "tree still shows every root name");
        assert_eq!(s.counters["sim.instructions"], 700, "fig3 + fig4 only");
    }

    #[test]
    fn identical_root_windows_count_once() {
        // Degenerate tie: two roots with the exact same window. The
        // oldest id (allocation order = outermost span) wins.
        let s = summarize(&trace(&[
            span(7, None, "outer", 0, 100, &[("c", 5)]),
            span(8, None, "inner", 0, 100, &[("c", 4)]),
        ]));
        assert_eq!(s.counters["c"], 5);
    }

    #[test]
    fn orphaned_parents_promote_to_roots() {
        // Parent id 99 never appears (truncated trace): the span still
        // shows up, as a root, and contributes its counters.
        let s = summarize(&trace(&[span(5, Some(99), "orphan", 0, 10, &[("c", 1)])]));
        assert_eq!(s.roots.len(), 1);
        assert_eq!(s.roots[0].name, "orphan");
        assert_eq!(s.counters["c"], 1);
    }

    #[test]
    fn folded_output_has_paths_and_exclusive_values() {
        let s = summarize(&sample());
        let folded = s.folded();
        assert!(folded.contains("root 500\n"), "{folded}");
        assert!(folded.contains("root;child 450\n"), "{folded}");
        assert!(folded.contains("root;child;leaf 50\n"), "{folded}");
    }

    #[test]
    fn diff_classifies_wall_and_counter_regressions() {
        let before = summarize(&trace(&[span(
            1,
            None,
            "work",
            0,
            10_000,
            &[("sim.steps", 1000), ("par.steals", 3)],
        )]));
        let after = summarize(&trace(&[span(
            1,
            None,
            "work",
            0,
            15_000,
            &[("sim.steps", 1200), ("par.steals", 30)],
        )]));
        let d = diff(&before, &after, 10.0);
        let wall = d.wall.iter().find(|r| r.name == "work").unwrap();
        assert!(wall.regressed, "50% wall growth over a 10% threshold");
        let steps = d.counters.iter().find(|r| r.name == "sim.steps").unwrap();
        assert!(steps.regressed, "20% counter growth over 10%");
        let steals = d.counters.iter().find(|r| r.name == "par.steals").unwrap();
        assert!(
            !steals.regressed,
            "par.* scheduling counters are exempt by design"
        );
        assert_eq!(d.regressions().len(), 2);
        assert!(d.render().contains("REGRESSED"));
    }

    #[test]
    fn diff_json_is_parseable_and_complete() {
        let before = summarize(&trace(&[span(1, None, "work", 0, 10_000, &[("c.new", 0)])]));
        let after = summarize(&trace(&[span(1, None, "work", 0, 15_000, &[("c.new", 7)])]));
        let d = diff(&before, &after, 10.0);
        let json = d.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"threshold_pct\":10"), "{json}");
        assert!(json.contains("\"wall_regressions\":1"), "{json}");
        assert!(
            json.contains(
                "\"name\":\"work\",\"before\":10000,\"after\":15000,\"pct\":50,\"regressed\":true"
            ),
            "{json}"
        );
        // A from-zero counter has pct null (rendered "new" in the table).
        assert!(json.contains("\"pct\":null"), "{json}");
        // Identical inputs → identical bytes (CI diffs depend on it).
        assert_eq!(json, diff(&before, &after, 10.0).to_json());
    }

    #[test]
    fn identical_traces_have_zero_regressions() {
        let s1 = summarize(&sample());
        let s2 = summarize(&sample());
        let d = diff(&s1, &s2, 0.0);
        assert!(d.regressions().is_empty(), "{:?}", d.regressions());
    }

    #[test]
    fn tiny_wall_baselines_are_noise_exempt() {
        let before = summarize(&trace(&[span(1, None, "blip", 0, 10, &[])]));
        let after = summarize(&trace(&[span(1, None, "blip", 0, 900, &[])]));
        let d = diff(&before, &after, 5.0);
        assert!(
            !d.wall.iter().any(|r| r.regressed),
            "sub-millisecond spans never flag wall regressions"
        );
    }
}

//! Live metrics exposition: a dependency-free HTTP endpoint serving the
//! current counters, gauges, histograms and run metadata as
//! OpenMetrics-style text.
//!
//! One `std::net::TcpListener` accept loop on one background thread —
//! good enough for a scrape every few seconds from a dashboard or a CI
//! `curl`, deliberately not a web framework. Every request, whatever its
//! path or method, gets the full exposition (a scraper pointed at `/`,
//! `/metrics` or anything else sees the same body), because there is
//! exactly one thing to serve.
//!
//! # Format
//!
//! ```text
//! # TYPE mps_counter counter
//! mps_counter_total{name="store.hit"} 12
//! # TYPE mps_gauge gauge
//! mps_gauge{name="grid.cells.done"} 7
//! # TYPE mps_histogram histogram
//! mps_histogram_bucket{name="grid.cell.latency_us",le="1023"} 4
//! mps_histogram_bucket{name="grid.cell.latency_us",le="+Inf"} 9
//! mps_histogram_count{name="grid.cell.latency_us"} 9
//! mps_histogram_sum{name="grid.cell.latency_us"} 40288
//! mps_histogram_quantile{name="grid.cell.latency_us",q="0.5"} 4095
//! mps_run_info{jobs="4",schema="2"} 1
//! mps_store_hit_ratio 0.923
//! ```
//!
//! Bucket lines are cumulative with `le` upper bounds (only boundaries
//! where the cumulative count changes are emitted, plus the final
//! `+Inf`); `_sum` is the bucket-midpoint approximation documented in
//! [`crate::hist`]; the `q="…"` quantile lines are a convenience summary
//! derived from the same buckets. Names keep their dotted workspace form
//! inside a `name` label, so nothing needs sanitizing.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::enabled::{
    counters_snapshot, estimators_snapshot, gauges_snapshot, histograms_snapshot, meta_snapshot,
};
use crate::hist::{bucket_upper_bound, BUCKETS};
use crate::jsonl::escape;

/// Quantiles summarized per histogram in the exposition body.
const QUANTILES: [f64; 4] = [0.5, 0.9, 0.99, 1.0];

/// Renders the full OpenMetrics-style exposition body from the current
/// process-global registry state.
pub fn render_metrics() -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(4096);

    let counters = counters_snapshot();
    if !counters.is_empty() {
        out.push_str("# TYPE mps_counter counter\n");
        for (name, v) in &counters {
            let _ = writeln!(out, "mps_counter_total{{name=\"{}\"}} {v}", escape(name));
        }
    }

    let gauges = gauges_snapshot();
    if !gauges.is_empty() {
        out.push_str("# TYPE mps_gauge gauge\n");
        for (name, v) in &gauges {
            let _ = writeln!(out, "mps_gauge{{name=\"{}\"}} {v}", escape(name));
        }
    }

    let histograms = histograms_snapshot();
    if !histograms.is_empty() {
        out.push_str("# TYPE mps_histogram histogram\n");
        for h in &histograms {
            let name = escape(&h.name);
            let mut cum = 0u64;
            for (i, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cum = cum.saturating_add(c);
                if i < BUCKETS - 1 {
                    let _ = writeln!(
                        out,
                        "mps_histogram_bucket{{name=\"{name}\",le=\"{}\"}} {cum}",
                        bucket_upper_bound(i)
                    );
                }
            }
            let _ = writeln!(
                out,
                "mps_histogram_bucket{{name=\"{name}\",le=\"+Inf\"}} {cum}"
            );
            let _ = writeln!(out, "mps_histogram_count{{name=\"{name}\"}} {cum}");
            let _ = writeln!(
                out,
                "mps_histogram_sum{{name=\"{name}\"}} {}",
                h.approx_sum()
            );
            if cum > 0 {
                for q in QUANTILES {
                    let _ = writeln!(
                        out,
                        "mps_histogram_quantile{{name=\"{name}\",q=\"{q}\"}} {}",
                        h.quantile(q)
                    );
                }
            }
        }
    }

    let estimators = estimators_snapshot();
    let ests: Vec<_> = estimators.iter().filter(|e| e.stats.count > 0).collect();
    if !ests.is_empty() {
        out.push_str("# TYPE mps_estimator gauge\n");
        for e in &ests {
            let name = escape(&e.name);
            let s = &e.stats;
            let _ = writeln!(out, "mps_estimator_count{{name=\"{name}\"}} {}", s.count);
            let _ = writeln!(out, "mps_estimator_mean{{name=\"{name}\"}} {}", s.mean);
            let _ = writeln!(out, "mps_estimator_cv{{name=\"{name}\"}} {}", s.cv);
            let _ = writeln!(
                out,
                "mps_estimator_confidence{{name=\"{name}\"}} {}",
                s.confidence
            );
            if s.required_w != usize::MAX {
                let _ = writeln!(
                    out,
                    "mps_estimator_required_w{{name=\"{name}\"}} {}",
                    s.required_w
                );
            }
        }
    }

    let meta = meta_snapshot();
    if !meta.is_empty() {
        out.push_str("# TYPE mps_run_info gauge\n");
        out.push_str("mps_run_info{");
        for (i, (k, v)) in meta.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}=\"{}\"", escape(k), escape(v));
        }
        out.push_str("} 1\n");
    }

    // Derived convenience figure: the artifact-store hit ratio, the one
    // number that says whether a long run is recomputing or reusing.
    let find = |n: &str| counters.iter().find(|(k, _)| k == n).map(|&(_, v)| v);
    if let (Some(h), Some(m)) = (find("store.hit"), find("store.miss")) {
        if h + m > 0 {
            let _ = writeln!(out, "mps_store_hit_ratio {:.3}", h as f64 / (h + m) as f64);
        }
    }

    out
}

fn handle(mut stream: TcpStream) {
    // Drain (a bounded amount of) the request so well-behaved clients
    // don't see a reset; the contents are irrelevant.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut buf = [0u8; 1024];
    let _ = stream.read(&mut buf);
    let body = render_metrics();
    let resp = format!(
        "HTTP/1.1 200 OK\r\ncontent-type: text/plain; version=0.0.4; charset=utf-8\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(resp.as_bytes());
}

/// Starts the exposition server on `addr` (e.g. `127.0.0.1:9464`, or port
/// `0` for an ephemeral port) and returns the bound address. The accept
/// loop runs on one detached background thread for the life of the
/// process. Each call binds its own listener; callers are expected to
/// start it once per process (the harness does, from `--metrics-addr` /
/// `MPS_METRICS_ADDR`).
///
/// # Errors
///
/// Propagates the bind error (address in use, permission, bad syntax).
pub fn serve_metrics(addr: &str) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    lock_listeners().push((Arc::clone(&stop), local));
    std::thread::Builder::new()
        .name("mps-obs-metrics".to_owned())
        .spawn(move || {
            for stream in listener.incoming() {
                // Shutdown order matters: answer the connection that woke
                // us (it may be a real scrape racing the shutdown, not just
                // the internal nudge) and only then exit.
                let done = stop.load(Ordering::Acquire);
                if let Ok(s) = stream {
                    handle(s);
                }
                if done {
                    break;
                }
            }
        })?;
    Ok(local)
}

/// Stops every exposition server started by [`serve_metrics`] in this
/// process. Each accept loop answers at most one more connection (so a
/// scrape racing the shutdown still gets a response) and then exits,
/// releasing its port. Later [`serve_metrics`] calls start fresh servers
/// unaffected by earlier shutdowns. Idempotent; a no-op when no server is
/// running.
pub fn shutdown_metrics() {
    let listeners: Vec<_> = lock_listeners().drain(..).collect();
    for (stop, addr) in listeners {
        stop.store(true, Ordering::Release);
        // Nudge the blocking accept() so the loop observes the flag.
        let _ = TcpStream::connect(addr);
    }
}

/// Live accept loops: one shutdown flag + bound address per
/// [`serve_metrics`] call, drained by [`shutdown_metrics`].
static LISTENERS: Mutex<Vec<(Arc<AtomicBool>, SocketAddr)>> = Mutex::new(Vec::new());

fn lock_listeners() -> std::sync::MutexGuard<'static, Vec<(Arc<AtomicBool>, SocketAddr)>> {
    match LISTENERS.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enabled::{counter, gauge, histogram, set_meta};

    fn scrape(addr: SocketAddr) -> String {
        let mut s = TcpStream::connect(addr).expect("connect to metrics server");
        s.write_all(b"GET /metrics HTTP/1.1\r\nhost: x\r\n\r\n")
            .expect("send request");
        let _ = s.shutdown(std::net::Shutdown::Write);
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read response");
        out
    }

    #[test]
    fn serves_counters_gauges_histograms_and_meta() {
        let _g = crate::enabled::test_guard();
        counter("test.serve.counter").add(3);
        gauge("test.serve.gauge").set(-4);
        let h = histogram("test.serve.hist");
        for v in [10u64, 20, 4000] {
            h.record(v);
        }
        set_meta("test_serve_schema", "2");

        let addr = serve_metrics("127.0.0.1:0").expect("bind ephemeral port");
        let resp = scrape(addr);
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.contains("mps_counter_total{name=\"test.serve.counter\"}"));
        assert!(resp.contains("mps_gauge{name=\"test.serve.gauge\"} -4"));
        assert!(resp.contains("mps_histogram_bucket{name=\"test.serve.hist\",le=\"+Inf\"}"));
        assert!(resp.contains("mps_histogram_quantile{name=\"test.serve.hist\",q=\"0.5\"}"));
        assert!(resp.contains("test_serve_schema=\"2\""));
        // A second scrape still answers (the loop persists).
        let resp2 = scrape(addr);
        assert!(resp2.contains("mps_counter_total"));
        shutdown_metrics();
    }

    #[test]
    fn render_includes_store_hit_ratio_when_present() {
        let _g = crate::enabled::test_guard();
        counter("store.hit").add(9);
        counter("store.miss").add(1);
        let body = render_metrics();
        assert!(body.contains("mps_store_hit_ratio"), "{body}");
    }

    #[test]
    fn render_includes_estimator_diagnostics() {
        let _g = crate::enabled::test_guard();
        let e = crate::enabled::estimator("test.serve.estimator");
        e.record_many(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]); // cv = 0.4
        let body = render_metrics();
        assert!(
            body.contains("mps_estimator_count{name=\"test.serve.estimator\"} 8"),
            "{body}"
        );
        assert!(body.contains("mps_estimator_mean{name=\"test.serve.estimator\"} 5"));
        assert!(body.contains("mps_estimator_cv{name=\"test.serve.estimator\"}"));
        assert!(body.contains("mps_estimator_required_w{name=\"test.serve.estimator\"} 2"));
        // An empty estimator is registered but not rendered (all-NaN rows
        // would only confuse scrapers).
        let _ = crate::enabled::estimator("test.serve.estimator.empty");
        assert!(!render_metrics().contains("test.serve.estimator.empty"));
    }

    #[test]
    fn concurrent_scrapes_mid_run_all_answer() {
        let _g = crate::enabled::test_guard();
        let c = counter("test.serve.concurrent");
        let addr = serve_metrics("127.0.0.1:0").expect("bind ephemeral port");
        let scrapers: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    let resp = scrape(addr);
                    assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
                })
            })
            .collect();
        // Keep mutating registry state while the scrapes are in flight.
        for _ in 0..10_000 {
            c.incr();
        }
        for t in scrapers {
            t.join().expect("scraper thread");
        }
        shutdown_metrics();
    }

    #[test]
    fn malformed_request_lines_get_a_response_and_do_not_wedge() {
        let _g = crate::enabled::test_guard();
        counter("test.serve.malformed").incr();
        let addr = serve_metrics("127.0.0.1:0").expect("bind ephemeral port");
        for req in [
            &b"\x00\xff\xfegarbage not http\r\n\r\n"[..],
            b"",     // connect + immediate close
            b"GET ", // truncated request line
        ] {
            let mut s = TcpStream::connect(addr).expect("connect");
            let _ = s.write_all(req);
            let _ = s.shutdown(std::net::Shutdown::Write);
            let mut out = String::new();
            // The server answers every connection with the exposition.
            let _ = s.read_to_string(&mut out);
            assert!(out.starts_with("HTTP/1.1 200 OK"), "req {req:?} → {out:?}");
        }
        // A well-formed scrape afterwards still works.
        assert!(scrape(addr).contains("mps_counter_total"));
        shutdown_metrics();
    }

    #[test]
    fn shutdown_is_clean_idempotent_and_does_not_poison_new_servers() {
        let _g = crate::enabled::test_guard();
        counter("test.serve.shutdown").incr();
        let addr = serve_metrics("127.0.0.1:0").expect("bind ephemeral port");
        assert!(scrape(addr).starts_with("HTTP/1.1 200 OK"));
        shutdown_metrics();
        // Idempotent: nothing left to stop.
        shutdown_metrics();
        // A scrape attempt after shutdown must not wedge: the listener is
        // gone (connection refused) or the OS backlog hands us a socket
        // that closes without a body. Either way we return promptly.
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
            let _ = s.write_all(b"GET /metrics HTTP/1.1\r\n\r\n");
            let mut out = String::new();
            let _ = s.read_to_string(&mut out);
        }
        // A fresh server started after the shutdown is unaffected.
        let addr2 = serve_metrics("127.0.0.1:0").expect("rebind after shutdown");
        assert!(scrape(addr2).contains("mps_counter_total"));
        shutdown_metrics();
    }
}

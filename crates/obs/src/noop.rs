//! The disabled backend, compiled when the `obs` feature is off.
//!
//! Every item mirrors the enabled API exactly so call sites need no
//! `cfg`s, but all types are zero-sized and all functions are empty
//! `#[inline]` bodies the optimizer erases entirely — the `obs_overhead`
//! criterion bench in `mps-bench` checks this stays true.

use std::collections::BTreeMap;
use std::io;
use std::time::Duration;

/// Disabled counter handle: zero-sized, every call a no-op.
#[derive(Debug, Clone, Copy)]
pub struct Counter;

impl Counter {
    /// Does nothing.
    #[inline(always)]
    pub fn add(self, _n: u64) {}

    /// Does nothing.
    #[inline(always)]
    pub fn incr(self) {}

    /// Always zero.
    #[inline(always)]
    pub fn get(self) -> u64 {
        0
    }
}

/// Aggregated statistics for one span name (never produced when disabled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStats {
    /// Span name.
    pub name: String,
    /// Number of finished spans with this name.
    pub calls: u64,
    /// Summed inclusive wall time over all calls.
    pub total: Duration,
    /// Summed counter deltas over all calls (nonzero entries only).
    pub deltas: BTreeMap<String, u64>,
}

/// Disabled span handle: zero-sized, finishing it measures nothing.
#[derive(Debug)]
pub struct Span;

impl Span {
    /// Does nothing; always returns a zero duration.
    #[inline(always)]
    pub fn finish(self) -> Duration {
        Duration::ZERO
    }
}

/// Returns the zero-sized disabled counter handle.
#[inline(always)]
pub fn counter(_name: &'static str) -> Counter {
    Counter
}

/// Returns the zero-sized disabled span handle.
#[inline(always)]
pub fn span(_name: &'static str) -> Span {
    Span
}

/// Does nothing.
#[inline(always)]
pub fn event(_name: &str, _fields: &[(&str, String)]) {}

/// Does nothing; always succeeds.
///
/// # Errors
///
/// Never returns an error when instrumentation is disabled.
#[inline(always)]
pub fn set_sink_path(_path: &str) -> io::Result<()> {
    Ok(())
}

/// Does nothing.
#[inline(always)]
pub fn init_from_env() {}

/// Does nothing.
#[inline(always)]
pub fn flush() {}

/// Does nothing.
#[inline(always)]
pub fn reset() {}

/// Always empty.
#[inline(always)]
pub fn counters_snapshot() -> Vec<(String, u64)> {
    Vec::new()
}

/// Always empty.
#[inline(always)]
pub fn span_stats() -> Vec<SpanStats> {
    Vec::new()
}

/// Explains that instrumentation is compiled out.
pub fn profile_report() -> String {
    "mps-obs: instrumentation disabled (build with the `obs` cargo feature \
     to collect counters and spans)\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everything_is_inert() {
        let c = counter("noop");
        c.add(7);
        c.incr();
        assert_eq!(c.get(), 0);
        let s = span("noop");
        assert_eq!(s.finish(), Duration::ZERO);
        event("noop", &[("k", "v".to_string())]);
        assert!(set_sink_path("/definitely/not/writable/ever").is_ok());
        init_from_env();
        flush();
        reset();
        assert!(counters_snapshot().is_empty());
        assert!(span_stats().is_empty());
        assert_eq!(std::mem::size_of::<Counter>(), 0);
        assert_eq!(std::mem::size_of::<Span>(), 0);
    }
}

//! The disabled backend, compiled when the `obs` feature is off.
//!
//! Every item mirrors the enabled API exactly so call sites need no
//! `cfg`s, but all types are zero-sized and all functions are empty
//! `#[inline]` bodies the optimizer erases entirely — the `obs_overhead`
//! criterion bench in `mps-bench` checks this stays true.

use crate::estimator::EstimatorSnapshot;
use mps_stats::estimator::Convergence;
use mps_stats::Moments;
use std::collections::BTreeMap;
use std::io;
use std::time::Duration;

use crate::hist::HistogramSnapshot;

/// Disabled counter handle: zero-sized, every call a no-op.
#[derive(Debug, Clone, Copy)]
pub struct Counter;

impl Counter {
    /// Does nothing.
    #[inline(always)]
    pub fn add(self, _n: u64) {}

    /// Does nothing.
    #[inline(always)]
    pub fn incr(self) {}

    /// Always zero.
    #[inline(always)]
    pub fn get(self) -> u64 {
        0
    }
}

/// Disabled gauge handle: zero-sized, every call a no-op.
#[derive(Debug, Clone, Copy)]
pub struct Gauge;

impl Gauge {
    /// Does nothing.
    #[inline(always)]
    pub fn set(self, _v: i64) {}

    /// Does nothing.
    #[inline(always)]
    pub fn add(self, _n: i64) {}

    /// Does nothing.
    #[inline(always)]
    pub fn sub(self, _n: i64) {}

    /// Always zero.
    #[inline(always)]
    pub fn get(self) -> i64 {
        0
    }
}

/// Disabled histogram handle: zero-sized, every call a no-op.
#[derive(Debug, Clone, Copy)]
pub struct Histogram;

impl Histogram {
    /// Does nothing.
    #[inline(always)]
    pub fn record(self, _value: u64) {}

    /// Does nothing.
    #[inline(always)]
    pub fn record_duration(self, _d: Duration) {}

    /// Always all-zero buckets.
    #[inline(always)]
    pub fn snapshot_counts(self) -> [u64; crate::hist::BUCKETS] {
        [0; crate::hist::BUCKETS]
    }
}

/// Disabled estimator handle: zero-sized, every call a no-op.
#[derive(Debug, Clone, Copy)]
pub struct Estimator;

impl Estimator {
    /// Does nothing.
    #[inline(always)]
    pub fn record(self, _x: f64) {}

    /// Does nothing.
    #[inline(always)]
    pub fn record_many(self, _xs: &[f64]) {}

    /// Always zero.
    #[inline(always)]
    pub fn count(self) -> u64 {
        0
    }

    /// Always the empty-moments summary (NaN statistics, `required_w`
    /// saturated).
    #[inline(always)]
    pub fn convergence(self) -> Convergence {
        Convergence::of(&Moments::new())
    }

    /// An empty-named, empty-stats snapshot (never aggregated).
    #[inline(always)]
    pub fn snapshot(self) -> EstimatorSnapshot {
        EstimatorSnapshot::new("", self.convergence())
    }
}

/// Aggregated statistics for one span name (never produced when disabled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStats {
    /// Span name.
    pub name: String,
    /// Number of finished spans with this name.
    pub calls: u64,
    /// Summed inclusive wall time over all calls.
    pub total: Duration,
    /// Summed counter deltas over all calls (nonzero entries only).
    pub deltas: BTreeMap<String, u64>,
}

/// Disabled span handle: zero-sized, finishing it measures nothing.
#[derive(Debug)]
pub struct Span;

impl Span {
    /// Does nothing; always returns a zero duration.
    #[inline(always)]
    pub fn finish(self) -> Duration {
        Duration::ZERO
    }
}

/// Returns the zero-sized disabled counter handle.
#[inline(always)]
pub fn counter(_name: &'static str) -> Counter {
    Counter
}

/// Returns the zero-sized disabled gauge handle.
#[inline(always)]
pub fn gauge(_name: &'static str) -> Gauge {
    Gauge
}

/// Returns the zero-sized disabled histogram handle.
#[inline(always)]
pub fn histogram(_name: &'static str) -> Histogram {
    Histogram
}

/// Returns the zero-sized disabled estimator handle.
#[inline(always)]
pub fn estimator(_name: &'static str) -> Estimator {
    Estimator
}

/// Does nothing.
#[inline(always)]
pub fn set_meta(_key: &'static str, _value: impl Into<String>) {}

/// Always empty.
#[inline(always)]
pub fn meta_snapshot() -> Vec<(String, String)> {
    Vec::new()
}

/// Returns the zero-sized disabled span handle.
#[inline(always)]
pub fn span(_name: &'static str) -> Span {
    Span
}

/// Does nothing.
#[inline(always)]
pub fn event(_name: &str, _fields: &[(&str, String)]) {}

/// Does nothing; always succeeds.
///
/// # Errors
///
/// Never returns an error when instrumentation is disabled.
#[inline(always)]
pub fn set_sink_path(_path: &str) -> io::Result<()> {
    Ok(())
}

/// Does nothing.
#[inline(always)]
pub fn init_from_env() {}

/// Does nothing.
#[inline(always)]
pub fn flush() {}

/// Does nothing.
#[inline(always)]
pub fn reset() {}

/// Always empty.
#[inline(always)]
pub fn counters_snapshot() -> Vec<(String, u64)> {
    Vec::new()
}

/// Always empty.
#[inline(always)]
pub fn gauges_snapshot() -> Vec<(String, i64)> {
    Vec::new()
}

/// Always empty.
#[inline(always)]
pub fn histograms_snapshot() -> Vec<HistogramSnapshot> {
    Vec::new()
}

/// Always empty.
#[inline(always)]
pub fn span_stats() -> Vec<SpanStats> {
    Vec::new()
}

/// Always empty.
#[inline(always)]
pub fn estimators_snapshot() -> Vec<EstimatorSnapshot> {
    Vec::new()
}

/// Always unsupported: the exposition server needs the `obs` feature.
///
/// # Errors
///
/// Always returns [`io::ErrorKind::Unsupported`] so callers can print a
/// clear note instead of silently serving an empty page.
pub fn serve_metrics(_addr: &str) -> io::Result<std::net::SocketAddr> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "mps-obs built without the `obs` feature: no metrics to serve",
    ))
}

/// Always empty: nothing is collected without the `obs` feature.
#[inline(always)]
pub fn render_metrics() -> String {
    String::new()
}

/// Does nothing: no exposition server can be running without `obs`.
#[inline(always)]
pub fn shutdown_metrics() {}

/// Explains that instrumentation is compiled out.
pub fn profile_report() -> String {
    "mps-obs: instrumentation disabled (build with the `obs` cargo feature \
     to collect counters and spans)\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everything_is_inert() {
        let c = counter("noop");
        c.add(7);
        c.incr();
        assert_eq!(c.get(), 0);
        let g = gauge("noop");
        g.set(9);
        g.add(1);
        g.sub(2);
        assert_eq!(g.get(), 0);
        let h = histogram("noop");
        h.record(123);
        h.record_duration(Duration::from_millis(5));
        assert_eq!(h.snapshot_counts(), [0; crate::hist::BUCKETS]);
        set_meta("noop", "v");
        let s = span("noop");
        assert_eq!(s.finish(), Duration::ZERO);
        event("noop", &[("k", "v".to_string())]);
        assert!(set_sink_path("/definitely/not/writable/ever").is_ok());
        init_from_env();
        flush();
        reset();
        assert!(counters_snapshot().is_empty());
        assert!(gauges_snapshot().is_empty());
        assert!(histograms_snapshot().is_empty());
        assert!(meta_snapshot().is_empty());
        assert!(span_stats().is_empty());
        let e = estimator("noop");
        e.record(1.0);
        e.record_many(&[2.0, 3.0]);
        assert_eq!(e.count(), 0);
        assert!(e.convergence().mean.is_nan());
        assert!(e.snapshot().name.is_empty());
        assert!(estimators_snapshot().is_empty());
        assert!(serve_metrics("127.0.0.1:0").is_err());
        assert!(render_metrics().is_empty());
        shutdown_metrics();
        assert_eq!(std::mem::size_of::<Counter>(), 0);
        assert_eq!(std::mem::size_of::<Gauge>(), 0);
        assert_eq!(std::mem::size_of::<Histogram>(), 0);
        assert_eq!(std::mem::size_of::<Span>(), 0);
        assert_eq!(std::mem::size_of::<Estimator>(), 0);
    }
}

//! Minimal JSON-lines encoding for obs events.
//!
//! The workspace has no serde, so the sink hand-writes one JSON object per
//! line and this module provides the matching parser used by tests and by
//! anyone post-processing a `--trace` file. The schema is deliberately
//! flat:
//!
//! ```json
//! {"type":"span","id":7,"parent":3,"name":"sim.detailed.run",
//!  "start_us":120,"dur_us":4510,"counters":{"sim.detailed.instructions":10000}}
//! {"type":"event","name":"harness.cache.model","fields":{"bench":"gcc"}}
//! ```
//!
//! This module is compiled regardless of the `obs` feature so a trace file
//! produced by an instrumented build can be read back by any build.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One decoded JSONL record from an obs trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A finished span: a named, timed region with counter deltas.
    Span {
        /// Process-unique span id (allocation order).
        id: u64,
        /// Id of the enclosing span on the same thread, if any.
        parent: Option<u64>,
        /// Span name, e.g. `phase.model_build`.
        name: String,
        /// Start offset from process epoch, microseconds.
        start_us: u64,
        /// Wall-clock duration, microseconds.
        dur_us: u64,
        /// Counter deltas over the span's lifetime (nonzero only).
        counters: BTreeMap<String, u64>,
    },
    /// A point-in-time event with free-form string fields.
    Event {
        /// Event name, e.g. `harness.cache.population`.
        name: String,
        /// Key/value payload.
        fields: BTreeMap<String, String>,
    },
}

impl Record {
    /// The record's name, whichever variant it is.
    pub fn name(&self) -> &str {
        match self {
            Record::Span { name, .. } | Record::Event { name, .. } => name,
        }
    }
}

/// Escapes `s` as a JSON string body (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Encodes a span record as one JSONL line (no trailing newline).
pub fn encode_span(
    id: u64,
    parent: Option<u64>,
    name: &str,
    start_us: u64,
    dur_us: u64,
    counters: &BTreeMap<String, u64>,
) -> String {
    let mut line = format!(
        "{{\"type\":\"span\",\"id\":{id},\"parent\":{},\"name\":\"{}\",\"start_us\":{start_us},\"dur_us\":{dur_us},\"counters\":{{",
        parent.map_or_else(|| "null".to_string(), |p| p.to_string()),
        escape(name),
    );
    let mut first = true;
    for (k, v) in counters {
        if !first {
            line.push(',');
        }
        first = false;
        let _ = write!(line, "\"{}\":{v}", escape(k));
    }
    line.push_str("}}");
    line
}

/// Encodes a point event as one JSONL line (no trailing newline).
pub fn encode_event(name: &str, fields: &[(&str, String)]) -> String {
    let mut line = format!(
        "{{\"type\":\"event\",\"name\":\"{}\",\"fields\":{{",
        escape(name)
    );
    let mut first = true;
    for (k, v) in fields {
        if !first {
            line.push(',');
        }
        first = false;
        let _ = write!(line, "\"{}\":\"{}\"", escape(k), escape(v));
    }
    line.push_str("}}");
    line
}

/// Parses one JSONL line produced by this module.
///
/// # Errors
///
/// Returns a description of the first syntax problem found; the parser
/// accepts exactly the subset of JSON the encoder emits (string keys,
/// string/u64/null values, one level of nesting for `counters`/`fields`).
pub fn parse(line: &str) -> Result<Record, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    let rec = p.record()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(rec)
}

/// Parses every non-empty line of a trace file body.
///
/// # Errors
///
/// Returns the line number (1-based) and message of the first bad line.
pub fn parse_all(body: &str) -> Result<Vec<Record>, String> {
    body.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| parse(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

#[derive(Debug)]
enum Value {
    Str(String),
    Num(u64),
    Null,
    Map(BTreeMap<String, Value>),
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(u8::is_ascii_whitespace)
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("short \\u escape")?;
                            let s = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid utf-8")?,
                    );
                }
            }
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'{') => Ok(Value::Map(self.map()?)),
            Some(b'n') => {
                if self.bytes[self.pos..].starts_with(b"null") {
                    self.pos += 4;
                    Ok(Value::Null)
                } else {
                    Err(format!("bad literal at offset {}", self.pos))
                }
            }
            Some(c) if c.is_ascii_digit() => {
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
                    self.pos += 1;
                }
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("digits are ascii")
                    .parse()
                    .map(Value::Num)
                    .map_err(|e| format!("bad number: {e}"))
            }
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn map(&mut self) -> Result<BTreeMap<String, Value>, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            out.insert(key, self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn record(&mut self) -> Result<Record, String> {
        let mut map = self.map()?;
        let ty = match map.remove("type") {
            Some(Value::Str(s)) => s,
            _ => return Err("missing \"type\"".into()),
        };
        let name = match map.remove("name") {
            Some(Value::Str(s)) => s,
            _ => return Err("missing \"name\"".into()),
        };
        match ty.as_str() {
            "span" => {
                let num = |map: &mut BTreeMap<String, Value>, key: &str| match map.remove(key) {
                    Some(Value::Num(n)) => Ok(n),
                    _ => Err(format!("missing numeric \"{key}\"")),
                };
                let id = num(&mut map, "id")?;
                let start_us = num(&mut map, "start_us")?;
                let dur_us = num(&mut map, "dur_us")?;
                let parent = match map.remove("parent") {
                    Some(Value::Num(n)) => Some(n),
                    Some(Value::Null) | None => None,
                    _ => return Err("bad \"parent\"".into()),
                };
                let mut counters = BTreeMap::new();
                if let Some(Value::Map(m)) = map.remove("counters") {
                    for (k, v) in m {
                        match v {
                            Value::Num(n) => {
                                counters.insert(k, n);
                            }
                            _ => return Err(format!("counter \"{k}\" is not a number")),
                        }
                    }
                }
                Ok(Record::Span {
                    id,
                    parent,
                    name,
                    start_us,
                    dur_us,
                    counters,
                })
            }
            "event" => {
                let mut fields = BTreeMap::new();
                if let Some(Value::Map(m)) = map.remove("fields") {
                    for (k, v) in m {
                        match v {
                            Value::Str(s) => {
                                fields.insert(k, s);
                            }
                            Value::Num(n) => {
                                fields.insert(k, n.to_string());
                            }
                            _ => return Err(format!("field \"{k}\" is not a string")),
                        }
                    }
                }
                Ok(Record::Event { name, fields })
            }
            other => Err(format!("unknown record type \"{other}\"")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_round_trip() {
        let mut counters = BTreeMap::new();
        counters.insert("sim.detailed.instructions".to_string(), 10_000);
        counters.insert("uncore.llc.misses".to_string(), 37);
        let line = encode_span(7, Some(3), "sim.detailed.run", 120, 4510, &counters);
        let rec = parse(&line).expect("encoder output parses");
        assert_eq!(
            rec,
            Record::Span {
                id: 7,
                parent: Some(3),
                name: "sim.detailed.run".into(),
                start_us: 120,
                dur_us: 4510,
                counters,
            }
        );
    }

    #[test]
    fn root_span_has_null_parent() {
        let line = encode_span(1, None, "phase.trace_gen", 0, 9, &BTreeMap::new());
        assert!(line.contains("\"parent\":null"));
        match parse(&line).expect("parses") {
            Record::Span { parent, .. } => assert_eq!(parent, None),
            r => panic!("wrong variant: {r:?}"),
        }
    }

    #[test]
    fn event_round_trip_with_escapes() {
        let line = encode_event(
            "harness.note",
            &[("msg", "a \"quoted\"\nline\t\\".to_string())],
        );
        match parse(&line).expect("parses") {
            Record::Event { name, fields } => {
                assert_eq!(name, "harness.note");
                assert_eq!(fields["msg"], "a \"quoted\"\nline\t\\");
            }
            r => panic!("wrong variant: {r:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("not json").is_err());
        assert!(parse("{\"type\":\"span\"}").is_err());
        assert!(parse("{\"type\":\"mystery\",\"name\":\"x\"}").is_err());
        assert!(parse("{\"type\":\"event\",\"name\":\"x\"} trailing").is_err());
    }

    #[test]
    fn parse_all_reports_line_numbers() {
        let body = format!("{}\n\nbroken\n", encode_event("ok", &[]));
        let err = parse_all(&body).expect_err("line 3 is broken");
        assert!(err.starts_with("line 3:"), "{err}");
    }
}

//! Shared pieces of the streaming `Estimator` instrument.
//!
//! An estimator is a named process-global Welford accumulation whose
//! snapshot carries the paper's §VII convergence diagnostics (running
//! `cv`, 95% CI half-width, achieved confidence, required `W = 8·cv²`).
//! The live handle lives in the `enabled`/`noop` backends; this module
//! holds the snapshot type, which is feature-independent so trace
//! consumers and the `/metrics` renderer share one definition.

use mps_stats::estimator::Convergence;

/// Materialized state of one registered estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatorSnapshot {
    /// Estimator name (dotted workspace form, e.g. `convergence.fig3.c2`).
    pub name: String,
    /// The derived §VII statistics at snapshot time.
    pub stats: Convergence,
}

impl EstimatorSnapshot {
    /// Packages a snapshot from a name and a moments-derived summary.
    pub fn new(name: impl Into<String>, stats: Convergence) -> Self {
        EstimatorSnapshot {
            name: name.into(),
            stats,
        }
    }
}

//! The real instrumentation backend, compiled when the `obs` feature is on.
//!
//! All state lives in one process-global [`Registry`] behind a `OnceLock`.
//! Counters are leaked `AtomicU64`s so handles are `Copy + 'static` and a
//! hot-loop update is a single relaxed `fetch_add`; everything slower
//! (name lookup, span bookkeeping, the sink) takes a mutex and is meant
//! for construction time and span boundaries only.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use crate::jsonl;

/// A handle to a named process-global monotonic counter.
///
/// Obtain one with [`counter`] once (it takes a lock) and then update it
/// freely from hot code: [`Counter::add`] is one relaxed atomic add.
#[derive(Debug, Clone, Copy)]
pub struct Counter {
    cell: &'static AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(self) {
        self.add(1);
    }

    /// Reads the current value.
    #[inline]
    pub fn get(self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Aggregated statistics for one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStats {
    /// Span name.
    pub name: String,
    /// Number of finished spans with this name.
    pub calls: u64,
    /// Summed inclusive wall time over all calls.
    pub total: Duration,
    /// Summed counter deltas over all calls (nonzero entries only).
    pub deltas: BTreeMap<String, u64>,
}

#[derive(Debug, Default)]
struct SpanAgg {
    calls: u64,
    total_ns: u128,
    deltas: BTreeMap<&'static str, u64>,
}

struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static AtomicU64>>,
    spans: Mutex<BTreeMap<&'static str, SpanAgg>>,
    sink: Mutex<Option<BufWriter<File>>>,
    epoch: Instant,
    next_span_id: AtomicU64,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        spans: Mutex::new(BTreeMap::new()),
        sink: Mutex::new(None),
        epoch: Instant::now(),
        next_span_id: AtomicU64::new(1),
    })
}

/// Locks ignoring poisoning: a panicking test must not wedge the global
/// registry for every later test in the same process.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

thread_local! {
    /// Ids of the spans currently open on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Returns the counter registered under `name`, creating it at zero on
/// first use. Takes a lock — call once and keep the `Copy` handle.
pub fn counter(name: &'static str) -> Counter {
    let mut map = lock(&registry().counters);
    let cell = map
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))));
    Counter { cell }
}

/// An open timed region. Finish it explicitly with [`Span::finish`] or let
/// it drop; either way its duration and counter deltas are aggregated and,
/// if a sink is installed, one JSONL record is appended.
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    start: Instant,
    start_us: u64,
    entry_counters: BTreeMap<&'static str, u64>,
}

/// Opens a span named `name`, nested under the innermost span already open
/// on this thread.
pub fn span(name: &'static str) -> Span {
    let reg = registry();
    let id = reg.next_span_id.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied();
        s.push(id);
        parent
    });
    let entry_counters = lock(&reg.counters)
        .iter()
        .map(|(&k, v)| (k, v.load(Ordering::Relaxed)))
        .collect();
    let now = Instant::now();
    Span {
        inner: Some(SpanInner {
            name,
            id,
            parent,
            start: now,
            start_us: now.duration_since(reg.epoch).as_micros() as u64,
            entry_counters,
        }),
    }
}

impl Span {
    /// Closes the span, returning its wall-clock duration.
    pub fn finish(mut self) -> Duration {
        self.close().expect("span closed twice")
    }

    fn close(&mut self) -> Option<Duration> {
        let inner = self.inner.take()?;
        let dur = inner.start.elapsed();
        let reg = registry();

        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Out-of-order drops (e.g. a parent finished first by hand)
            // just remove this id wherever it sits.
            if let Some(pos) = s.iter().rposition(|&id| id == inner.id) {
                s.remove(pos);
            }
        });

        let mut deltas: BTreeMap<&'static str, u64> = BTreeMap::new();
        for (&name, cell) in lock(&reg.counters).iter() {
            let before = inner.entry_counters.get(name).copied().unwrap_or(0);
            let delta = cell.load(Ordering::Relaxed).saturating_sub(before);
            if delta > 0 {
                deltas.insert(name, delta);
            }
        }

        {
            let mut spans = lock(&reg.spans);
            let agg = spans.entry(inner.name).or_default();
            agg.calls += 1;
            agg.total_ns += dur.as_nanos();
            for (&k, &v) in &deltas {
                *agg.deltas.entry(k).or_insert(0) += v;
            }
        }

        let mut sink = lock(&reg.sink);
        if let Some(w) = sink.as_mut() {
            let counters = deltas
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect::<BTreeMap<_, _>>();
            let line = jsonl::encode_span(
                inner.id,
                inner.parent,
                inner.name,
                inner.start_us,
                dur.as_micros() as u64,
                &counters,
            );
            let _ = writeln!(w, "{line}");
        }

        Some(dur)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

/// Records a point-in-time event with string fields to the sink, if one is
/// installed. A no-op (beyond the sink check) otherwise.
pub fn event(name: &str, fields: &[(&str, String)]) {
    let mut sink = lock(&registry().sink);
    if let Some(w) = sink.as_mut() {
        let line = jsonl::encode_event(name, fields);
        let _ = writeln!(w, "{line}");
    }
}

/// Installs a JSONL sink writing (truncating) to `path`.
///
/// # Errors
///
/// Propagates the error from creating the file.
pub fn set_sink_path(path: &str) -> io::Result<()> {
    let file = File::create(path)?;
    *lock(&registry().sink) = Some(BufWriter::new(file));
    Ok(())
}

/// Installs a sink from the `MPS_OBS_OUT` environment variable, if set.
/// Errors opening the file are reported to stderr rather than propagated —
/// tracing must never take down the run it observes.
pub fn init_from_env() {
    if let Ok(path) = std::env::var("MPS_OBS_OUT") {
        if !path.is_empty() {
            if let Err(e) = set_sink_path(&path) {
                eprintln!("mps-obs: cannot open MPS_OBS_OUT={path}: {e}");
            }
        }
    }
}

/// Flushes the sink, if one is installed.
pub fn flush() {
    if let Some(w) = lock(&registry().sink).as_mut() {
        let _ = w.flush();
    }
}

/// Resets all observable state: counters back to zero, span aggregates
/// cleared, the sink flushed and removed. Registered counter handles stay
/// valid. Intended for tests comparing two runs in one process.
pub fn reset() {
    let reg = registry();
    for cell in lock(&reg.counters).values() {
        cell.store(0, Ordering::Relaxed);
    }
    lock(&reg.spans).clear();
    if let Some(mut w) = lock(&reg.sink).take() {
        let _ = w.flush();
    }
    reg.next_span_id.store(1, Ordering::Relaxed);
}

/// All counters and their current values, sorted by name.
pub fn counters_snapshot() -> Vec<(String, u64)> {
    lock(&registry().counters)
        .iter()
        .map(|(&k, v)| (k.to_string(), v.load(Ordering::Relaxed)))
        .collect()
}

/// Aggregated statistics for every span name seen so far, sorted by name.
pub fn span_stats() -> Vec<SpanStats> {
    lock(&registry().spans)
        .iter()
        .map(|(&name, agg)| SpanStats {
            name: name.to_string(),
            calls: agg.calls,
            total: Duration::from_nanos(agg.total_ns.min(u128::from(u64::MAX)) as u64),
            deltas: agg
                .deltas
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global and the test harness is multithreaded,
    // so every test here serializes on one lock and uses its own names.
    fn guard() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let _g = guard();
        reset();
        let c = counter("test.enabled.counter");
        c.add(5);
        c.incr();
        assert_eq!(c.get(), 6);
        assert!(counters_snapshot().contains(&("test.enabled.counter".to_string(), 6)));
        reset();
        assert_eq!(c.get(), 0, "reset zeroes but keeps handles valid");
    }

    #[test]
    fn spans_aggregate_deltas_and_nesting() {
        let _g = guard();
        reset();
        let c = counter("test.enabled.span_delta");
        let outer = span("test.outer");
        {
            let inner = span("test.inner");
            c.add(3);
            inner.finish();
        }
        c.add(4);
        let dur = outer.finish();
        assert!(dur >= Duration::ZERO);

        let stats = span_stats();
        let outer = stats
            .iter()
            .find(|s| s.name == "test.outer")
            .expect("outer recorded");
        let inner = stats
            .iter()
            .find(|s| s.name == "test.inner")
            .expect("inner recorded");
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.deltas["test.enabled.span_delta"], 3);
        assert_eq!(
            outer.deltas["test.enabled.span_delta"], 7,
            "outer sees inner's work"
        );
    }

    #[test]
    fn sink_records_parse_back() {
        let _g = guard();
        reset();
        let path = std::env::temp_dir().join("mps_obs_enabled_sink_test.jsonl");
        let path_str = path.to_str().expect("temp path is utf-8");
        set_sink_path(path_str).expect("sink opens");
        let c = counter("test.enabled.sink");
        let s = span("test.sink.span");
        c.add(2);
        s.finish();
        event("test.sink.event", &[("k", "v".to_string())]);
        reset(); // flushes and closes the sink

        let body = std::fs::read_to_string(&path).expect("sink file readable");
        let records = jsonl::parse_all(&body).expect("sink output parses");
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name(), "test.sink.span");
        assert_eq!(records[1].name(), "test.sink.event");
        let _ = std::fs::remove_file(&path);
    }
}

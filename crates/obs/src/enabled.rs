//! The real instrumentation backend, compiled when the `obs` feature is on.
//!
//! All state lives in one process-global [`Registry`] behind a `OnceLock`.
//! Counters are leaked `AtomicU64`s so handles are `Copy + 'static` and a
//! hot-loop update is a single relaxed `fetch_add`; everything slower
//! (name lookup, span bookkeeping, the sink) takes a mutex and is meant
//! for construction time and span boundaries only.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use crate::estimator::EstimatorSnapshot;
use crate::hist::{bucket_index, HistogramSnapshot, BUCKETS};
use crate::jsonl;
use mps_stats::estimator::Convergence;
use mps_stats::Moments;

/// A handle to a named process-global monotonic counter.
///
/// Obtain one with [`counter`] once (it takes a lock) and then update it
/// freely from hot code: [`Counter::add`] is one relaxed atomic add.
#[derive(Debug, Clone, Copy)]
pub struct Counter {
    cell: &'static AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(self) {
        self.add(1);
    }

    /// Reads the current value.
    #[inline]
    pub fn get(self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A handle to a named process-global gauge: a current-value `i64` that
/// can go up and down (queue depths, cells-done progress, live worker
/// counts), unlike the monotonic [`Counter`].
///
/// Obtain one with [`gauge`] once (it takes a lock) and then update it
/// freely from hot code: every update is one relaxed atomic op.
#[derive(Debug, Clone, Copy)]
pub struct Gauge {
    cell: &'static AtomicI64,
}

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative) to the gauge.
    #[inline]
    pub fn add(self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` from the gauge.
    #[inline]
    pub fn sub(self, n: i64) {
        self.cell.fetch_sub(n, Ordering::Relaxed);
    }

    /// Reads the current value.
    #[inline]
    pub fn get(self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A handle to a named process-global log-bucketed histogram (fixed 64
/// buckets, see [`crate::hist`] for the layout).
///
/// Obtain one with [`histogram`] once (it takes a lock); a
/// [`Histogram::record`] is then bucket-index math plus exactly one
/// relaxed atomic add, so it is safe to call from grid cells, store I/O
/// and worker-pool internals. Buckets are shared across threads — the
/// process-global counts *are* the merged histogram.
#[derive(Debug, Clone, Copy)]
pub struct Histogram {
    cells: &'static [AtomicU64; BUCKETS],
}

impl Histogram {
    /// Records one value: one relaxed atomic add into the value's bucket.
    #[inline]
    pub fn record(self, value: u64) {
        self.cells[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a [`Duration`] in microseconds (the workspace convention
    /// for latency histograms, matching span `dur_us`).
    #[inline]
    pub fn record_duration(self, d: Duration) {
        self.record(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Materializes the current bucket counts (not atomic as a whole:
    /// concurrent records may straddle the read, which is fine for
    /// monitoring).
    pub fn snapshot_counts(self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (o, c) in out.iter_mut().zip(self.cells.iter()) {
            *o = c.load(Ordering::Relaxed);
        }
        out
    }
}

/// A handle to a named process-global streaming estimator: a Welford
/// mean/variance accumulation whose snapshot carries the paper's §VII
/// convergence diagnostics (running `cv`, 95% CI half-width, achieved
/// confidence, required `W = 8·cv²`).
///
/// Obtain one with [`estimator`] once (it takes a lock); each
/// [`Estimator::record`] then takes a short per-estimator mutex — cheap
/// for per-resample and per-cell observation rates, not meant for
/// per-µop hot loops (use a [`Counter`] or [`Histogram`] there).
#[derive(Debug, Clone, Copy)]
pub struct Estimator {
    name: &'static str,
    cell: &'static Mutex<Moments>,
}

impl Estimator {
    /// Adds one observation to the accumulation.
    #[inline]
    pub fn record(self, x: f64) {
        lock(self.cell).push(x);
    }

    /// Adds a batch of observations under one lock acquisition.
    pub fn record_many(self, xs: &[f64]) {
        let mut m = lock(self.cell);
        for &x in xs {
            m.push(x);
        }
    }

    /// Observations accumulated so far.
    pub fn count(self) -> u64 {
        lock(self.cell).count()
    }

    /// The derived §VII convergence statistics at this instant.
    pub fn convergence(self) -> Convergence {
        Convergence::of(&lock(self.cell))
    }

    /// Materializes this estimator's named snapshot.
    pub fn snapshot(self) -> EstimatorSnapshot {
        EstimatorSnapshot::new(self.name, self.convergence())
    }
}

/// Aggregated statistics for one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStats {
    /// Span name.
    pub name: String,
    /// Number of finished spans with this name.
    pub calls: u64,
    /// Summed inclusive wall time over all calls.
    pub total: Duration,
    /// Summed counter deltas over all calls (nonzero entries only).
    pub deltas: BTreeMap<String, u64>,
}

#[derive(Debug, Default)]
struct SpanAgg {
    calls: u64,
    total_ns: u128,
    deltas: BTreeMap<&'static str, u64>,
}

struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static AtomicU64>>,
    gauges: Mutex<BTreeMap<&'static str, &'static AtomicI64>>,
    histograms: Mutex<BTreeMap<&'static str, &'static [AtomicU64; BUCKETS]>>,
    estimators: Mutex<BTreeMap<&'static str, &'static Mutex<Moments>>>,
    meta: Mutex<BTreeMap<&'static str, String>>,
    spans: Mutex<BTreeMap<&'static str, SpanAgg>>,
    sink: Mutex<Option<BufWriter<File>>>,
    epoch: Instant,
    next_span_id: AtomicU64,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
        estimators: Mutex::new(BTreeMap::new()),
        meta: Mutex::new(BTreeMap::new()),
        spans: Mutex::new(BTreeMap::new()),
        sink: Mutex::new(None),
        epoch: Instant::now(),
        next_span_id: AtomicU64::new(1),
    })
}

/// Locks ignoring poisoning: a panicking test must not wedge the global
/// registry for every later test in the same process.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

thread_local! {
    /// Ids of the spans currently open on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Returns the counter registered under `name`, creating it at zero on
/// first use. Takes a lock — call once and keep the `Copy` handle.
pub fn counter(name: &'static str) -> Counter {
    let mut map = lock(&registry().counters);
    let cell = map
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))));
    Counter { cell }
}

/// Returns the gauge registered under `name`, creating it at zero on
/// first use. Takes a lock — call once and keep the `Copy` handle.
pub fn gauge(name: &'static str) -> Gauge {
    let mut map = lock(&registry().gauges);
    let cell = map
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(AtomicI64::new(0))));
    Gauge { cell }
}

/// Returns the histogram registered under `name`, creating it empty on
/// first use. Takes a lock — call once and keep the `Copy` handle.
pub fn histogram(name: &'static str) -> Histogram {
    let mut map = lock(&registry().histograms);
    let cells = map
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(std::array::from_fn(|_| AtomicU64::new(0)))));
    Histogram { cells }
}

/// Returns the estimator registered under `name`, creating it empty on
/// first use. Takes a lock — call once and keep the `Copy` handle.
pub fn estimator(name: &'static str) -> Estimator {
    let mut map = lock(&registry().estimators);
    let cell = map
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Mutex::new(Moments::new()))));
    Estimator { name, cell }
}

/// Attaches a piece of run metadata (schema revision, job count, scale
/// name, …) exposed verbatim by the `/metrics` endpoint and the profile
/// report. Later values overwrite earlier ones for the same key.
pub fn set_meta(key: &'static str, value: impl Into<String>) {
    lock(&registry().meta).insert(key, value.into());
}

/// All run metadata set so far, sorted by key.
pub fn meta_snapshot() -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = lock(&registry().meta)
        .iter()
        .map(|(&k, v)| (k.to_string(), v.clone()))
        .collect();
    out.sort();
    out
}

/// An open timed region. Finish it explicitly with [`Span::finish`] or let
/// it drop; either way its duration and counter deltas are aggregated and,
/// if a sink is installed, one JSONL record is appended.
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    start: Instant,
    start_us: u64,
    entry_counters: BTreeMap<&'static str, u64>,
}

/// Opens a span named `name`, nested under the innermost span already open
/// on this thread.
pub fn span(name: &'static str) -> Span {
    let reg = registry();
    let id = reg.next_span_id.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied();
        s.push(id);
        parent
    });
    let entry_counters = lock(&reg.counters)
        .iter()
        .map(|(&k, v)| (k, v.load(Ordering::Relaxed)))
        .collect();
    let now = Instant::now();
    Span {
        inner: Some(SpanInner {
            name,
            id,
            parent,
            start: now,
            start_us: now.duration_since(reg.epoch).as_micros() as u64,
            entry_counters,
        }),
    }
}

impl Span {
    /// Closes the span, returning its wall-clock duration.
    pub fn finish(mut self) -> Duration {
        self.close().expect("span closed twice")
    }

    fn close(&mut self) -> Option<Duration> {
        let inner = self.inner.take()?;
        let dur = inner.start.elapsed();
        let reg = registry();

        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Out-of-order drops (e.g. a parent finished first by hand)
            // just remove this id wherever it sits.
            if let Some(pos) = s.iter().rposition(|&id| id == inner.id) {
                s.remove(pos);
            }
        });

        let mut deltas: BTreeMap<&'static str, u64> = BTreeMap::new();
        for (&name, cell) in lock(&reg.counters).iter() {
            let before = inner.entry_counters.get(name).copied().unwrap_or(0);
            let delta = cell.load(Ordering::Relaxed).saturating_sub(before);
            if delta > 0 {
                deltas.insert(name, delta);
            }
        }

        {
            let mut spans = lock(&reg.spans);
            let agg = spans.entry(inner.name).or_default();
            agg.calls += 1;
            agg.total_ns += dur.as_nanos();
            for (&k, &v) in &deltas {
                *agg.deltas.entry(k).or_insert(0) += v;
            }
        }

        let mut sink = lock(&reg.sink);
        if let Some(w) = sink.as_mut() {
            let counters = deltas
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect::<BTreeMap<_, _>>();
            let line = jsonl::encode_span(
                inner.id,
                inner.parent,
                inner.name,
                inner.start_us,
                dur.as_micros() as u64,
                &counters,
            );
            let _ = writeln!(w, "{line}");
        }

        Some(dur)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

/// Records a point-in-time event with string fields to the sink, if one is
/// installed. A no-op (beyond the sink check) otherwise.
pub fn event(name: &str, fields: &[(&str, String)]) {
    let mut sink = lock(&registry().sink);
    if let Some(w) = sink.as_mut() {
        let line = jsonl::encode_event(name, fields);
        let _ = writeln!(w, "{line}");
    }
}

/// Installs a JSONL sink writing (truncating) to `path`.
///
/// # Errors
///
/// Propagates the error from creating the file.
pub fn set_sink_path(path: &str) -> io::Result<()> {
    let file = File::create(path)?;
    *lock(&registry().sink) = Some(BufWriter::new(file));
    Ok(())
}

/// Installs a sink from the `MPS_OBS_OUT` environment variable, if set.
/// Errors opening the file are reported to stderr rather than propagated —
/// tracing must never take down the run it observes.
pub fn init_from_env() {
    if let Ok(path) = std::env::var("MPS_OBS_OUT") {
        if !path.is_empty() {
            if let Err(e) = set_sink_path(&path) {
                eprintln!("mps-obs: cannot open MPS_OBS_OUT={path}: {e}");
            }
        }
    }
}

/// Flushes the sink, if one is installed.
pub fn flush() {
    if let Some(w) = lock(&registry().sink).as_mut() {
        let _ = w.flush();
    }
}

/// Resets all observable state: counters, gauges and histograms back to
/// zero, span aggregates and metadata cleared, the sink flushed and
/// removed. Registered handles stay valid. Intended for tests comparing
/// two runs in one process.
pub fn reset() {
    let reg = registry();
    for cell in lock(&reg.counters).values() {
        cell.store(0, Ordering::Relaxed);
    }
    for cell in lock(&reg.gauges).values() {
        cell.store(0, Ordering::Relaxed);
    }
    for cells in lock(&reg.histograms).values() {
        for c in cells.iter() {
            c.store(0, Ordering::Relaxed);
        }
    }
    for cell in lock(&reg.estimators).values() {
        *lock(cell) = Moments::new();
    }
    lock(&reg.meta).clear();
    lock(&reg.spans).clear();
    if let Some(mut w) = lock(&reg.sink).take() {
        let _ = w.flush();
    }
    reg.next_span_id.store(1, Ordering::Relaxed);
}

/// All counters and their current values, **sorted by name**.
///
/// The sorted order is a documented contract (golden tests and the
/// `/metrics` renderer rely on it being deterministic across runs and
/// thread counts), enforced by an explicit sort rather than inherited
/// from the registry's storage choice.
pub fn counters_snapshot() -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = lock(&registry().counters)
        .iter()
        .map(|(&k, v)| (k.to_string(), v.load(Ordering::Relaxed)))
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// All gauges and their current values, sorted by name.
pub fn gauges_snapshot() -> Vec<(String, i64)> {
    let mut out: Vec<(String, i64)> = lock(&registry().gauges)
        .iter()
        .map(|(&k, v)| (k.to_string(), v.load(Ordering::Relaxed)))
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Materialized snapshots of every registered histogram, sorted by name.
pub fn histograms_snapshot() -> Vec<HistogramSnapshot> {
    let mut out: Vec<HistogramSnapshot> = lock(&registry().histograms)
        .iter()
        .map(|(&name, cells)| {
            let mut snap = HistogramSnapshot::new(name);
            for (o, c) in snap.buckets.iter_mut().zip(cells.iter()) {
                *o = c.load(Ordering::Relaxed);
            }
            snap
        })
        .collect();
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Materialized snapshots of every registered estimator, sorted by name
/// (the same explicit-sort contract as the other snapshot functions).
pub fn estimators_snapshot() -> Vec<EstimatorSnapshot> {
    let mut out: Vec<EstimatorSnapshot> = lock(&registry().estimators)
        .iter()
        .map(|(&name, cell)| EstimatorSnapshot::new(name, Convergence::of(&lock(cell))))
        .collect();
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Aggregated statistics for every span name seen so far, sorted by name.
pub fn span_stats() -> Vec<SpanStats> {
    lock(&registry().spans)
        .iter()
        .map(|(&name, agg)| SpanStats {
            name: name.to_string(),
            calls: agg.calls,
            total: Duration::from_nanos(agg.total_ns.min(u128::from(u64::MAX)) as u64),
            deltas: agg
                .deltas
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
        })
        .collect()
}

/// Serializes unit tests that touch the process-global registry (this
/// module's and `serve`'s): the test harness is multithreaded and
/// [`reset`] from one test must not zero another's counters mid-assert.
#[cfg(test)]
pub(crate) fn test_guard() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global and the test harness is multithreaded,
    // so every test here serializes on one lock and uses its own names.
    use super::test_guard as guard;

    #[test]
    fn counters_accumulate_and_reset() {
        let _g = guard();
        reset();
        let c = counter("test.enabled.counter");
        c.add(5);
        c.incr();
        assert_eq!(c.get(), 6);
        assert!(counters_snapshot().contains(&("test.enabled.counter".to_string(), 6)));
        reset();
        assert_eq!(c.get(), 0, "reset zeroes but keeps handles valid");
    }

    #[test]
    fn spans_aggregate_deltas_and_nesting() {
        let _g = guard();
        reset();
        let c = counter("test.enabled.span_delta");
        let outer = span("test.outer");
        {
            let inner = span("test.inner");
            c.add(3);
            inner.finish();
        }
        c.add(4);
        let dur = outer.finish();
        assert!(dur >= Duration::ZERO);

        let stats = span_stats();
        let outer = stats
            .iter()
            .find(|s| s.name == "test.outer")
            .expect("outer recorded");
        let inner = stats
            .iter()
            .find(|s| s.name == "test.inner")
            .expect("inner recorded");
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.deltas["test.enabled.span_delta"], 3);
        assert_eq!(
            outer.deltas["test.enabled.span_delta"], 7,
            "outer sees inner's work"
        );
    }

    #[test]
    fn gauges_move_both_ways_and_reset() {
        let _g = guard();
        reset();
        let g = gauge("test.enabled.gauge");
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
        assert!(gauges_snapshot().contains(&("test.enabled.gauge".to_string(), 12)));
        reset();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histograms_record_and_snapshot() {
        let _g = guard();
        reset();
        let h = histogram("test.enabled.hist");
        for v in [0u64, 1, 5, 5, 1000] {
            h.record(v);
        }
        h.record_duration(Duration::from_micros(100));
        let snaps = histograms_snapshot();
        let s = snaps
            .iter()
            .find(|s| s.name == "test.enabled.hist")
            .expect("registered");
        assert_eq!(s.count(), 6);
        assert_eq!(s.buckets[crate::hist::bucket_index(5)], 2);
        assert_eq!(s.buckets[crate::hist::bucket_index(100)], 1, "µs duration");
        assert!(s.quantile(1.0) >= 1000);
        reset();
        let snaps = histograms_snapshot();
        let s = snaps
            .iter()
            .find(|s| s.name == "test.enabled.hist")
            .unwrap();
        assert_eq!(s.count(), 0, "reset zeroes buckets but keeps handles");
    }

    #[test]
    fn estimators_accumulate_snapshot_and_reset() {
        let _g = guard();
        reset();
        let e = estimator("test.enabled.estimator");
        e.record_many(&[2.0, 4.0, 4.0, 4.0]);
        e.record(5.0);
        for x in [5.0, 7.0, 9.0] {
            e.record(x);
        }
        assert_eq!(e.count(), 8);
        let c = e.convergence();
        assert!((c.mean - 5.0).abs() < 1e-12);
        assert!((c.cv - 0.4).abs() < 1e-12);
        assert_eq!(c.required_w, 2, "⌈8·0.4²⌉");
        let snaps = estimators_snapshot();
        let s = snaps
            .iter()
            .find(|s| s.name == "test.enabled.estimator")
            .expect("registered");
        assert_eq!(s.stats, c, "snapshot equals the handle's convergence");
        assert!(
            snaps.windows(2).all(|w| w[0].name <= w[1].name),
            "estimators sorted"
        );
        reset();
        assert_eq!(e.count(), 0, "reset empties but keeps handles valid");
        assert!(e.convergence().mean.is_nan());
    }

    #[test]
    fn snapshots_are_sorted_regardless_of_registration_order() {
        let _g = guard();
        reset();
        // Deliberately register in reverse lexicographic order, from
        // several threads, to pin the sorted-output contract.
        std::thread::scope(|s| {
            for name in ["test.sort.zz", "test.sort.mm", "test.sort.aa"] {
                s.spawn(move || {
                    counter(name).incr();
                    gauge(name).set(1);
                    histogram(name).record(1);
                });
            }
        });
        let c = counters_snapshot();
        assert!(c.windows(2).all(|w| w[0].0 <= w[1].0), "counters sorted");
        let g = gauges_snapshot();
        assert!(g.windows(2).all(|w| w[0].0 <= w[1].0), "gauges sorted");
        let h = histograms_snapshot();
        assert!(
            h.windows(2).all(|w| w[0].name <= w[1].name),
            "histograms sorted"
        );
    }

    #[test]
    fn meta_overwrites_and_sorts() {
        let _g = guard();
        reset();
        set_meta("test.meta.b", "1");
        set_meta("test.meta.a", "2");
        set_meta("test.meta.b", "3");
        let m = meta_snapshot();
        let ours: Vec<_> = m
            .iter()
            .filter(|(k, _)| k.starts_with("test.meta"))
            .collect();
        assert_eq!(ours.len(), 2);
        assert_eq!(ours[0].0, "test.meta.a");
        assert_eq!(ours[1].1, "3", "later set_meta wins");
        reset();
    }

    #[test]
    fn sink_records_parse_back() {
        let _g = guard();
        reset();
        let path = std::env::temp_dir().join("mps_obs_enabled_sink_test.jsonl");
        let path_str = path.to_str().expect("temp path is utf-8");
        set_sink_path(path_str).expect("sink opens");
        let c = counter("test.enabled.sink");
        let s = span("test.sink.span");
        c.add(2);
        s.finish();
        event("test.sink.event", &[("k", "v".to_string())]);
        reset(); // flushes and closes the sink

        let body = std::fs::read_to_string(&path).expect("sink file readable");
        let records = jsonl::parse_all(&body).expect("sink output parses");
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name(), "test.sink.span");
        assert_eq!(records[1].name(), "test.sink.event");
        let _ = std::fs::remove_file(&path);
    }
}

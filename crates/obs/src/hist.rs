//! Log-bucketed histogram layout and pure snapshot math.
//!
//! The live [`Histogram`](crate::Histogram) handle (when the `obs` feature
//! is on) records into 64 process-global atomic buckets; this module owns
//! the *layout* — which values land in which bucket, what a bucket's
//! upper bound is — and the pure arithmetic over materialized bucket
//! counts: merging, quantiles, approximate sums. It is compiled
//! regardless of the feature so trace post-processing and tests of the
//! bucket math never need an instrumented build.
//!
//! # Layout
//!
//! Fixed 64 buckets, log₂-spaced:
//!
//! * bucket 0 holds the value `0`;
//! * bucket `i` (1 ≤ i ≤ 62) holds values in `[2^(i−1), 2^i)`;
//! * bucket 63 holds everything ≥ `2^62` (the overflow bucket).
//!
//! The mapping is `64 − leading_zeros(v)` capped at 63 — one `lzcnt` and
//! a `min`, so a live record is bucket-index math plus exactly one
//! relaxed atomic add. Relative error of any bucket-derived statistic is
//! bounded by the bucket width: a factor of 2, which is plenty for
//! latency distributions spanning nanoseconds to minutes.

/// Number of buckets in every histogram.
pub const BUCKETS: usize = 64;

/// The bucket index `value` lands in (see the module docs for the layout).
#[inline]
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i`, i.e. the largest value mapping to
/// it (`u64::MAX` for the overflow bucket).
#[must_use]
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        _ if i >= BUCKETS - 1 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// Representative midpoint of bucket `i`, used for approximate sums and
/// means. Exact for bucket 0; the geometric-ish midpoint `3·2^(i−2)`
/// (halfway through `[2^(i−1), 2^i)`) otherwise.
#[must_use]
pub fn bucket_midpoint(i: usize) -> u64 {
    match i {
        0 => 0,
        1 => 1,
        _ => {
            let lo = 1u64 << (i - 1).min(62);
            lo + lo / 2
        }
    }
}

/// A materialized histogram: a name plus its 64 bucket counts.
///
/// Snapshots are plain data — mergeable, comparable, serializable by
/// callers — and all statistics below are pure functions of the counts.
/// Merging is associative and commutative (bucket-wise saturating
/// addition), so per-thread or per-process histograms combine in any
/// order to the same result (asserted by the obs proptests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Histogram name, e.g. `grid.cell.latency_us`.
    pub name: String,
    /// Count of recorded values per bucket (see [`bucket_index`]).
    pub buckets: [u64; BUCKETS],
}

impl HistogramSnapshot {
    /// An empty snapshot with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        HistogramSnapshot {
            name: name.into(),
            buckets: [0; BUCKETS],
        }
    }

    /// Records one value (offline — live recording goes through the
    /// [`Histogram`](crate::Histogram) handle).
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
    }

    /// Total number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// Approximate sum of all recorded values (bucket midpoints × counts;
    /// within 2× of the true sum by the layout's bucket width).
    #[must_use]
    pub fn approx_sum(&self) -> u64 {
        self.buckets.iter().enumerate().fold(0u64, |acc, (i, &c)| {
            acc.saturating_add(c.saturating_mul(bucket_midpoint(i)))
        })
    }

    /// Approximate mean of recorded values (0 when empty).
    #[must_use]
    pub fn approx_mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.approx_sum() as f64 / n as f64
        }
    }

    /// Approximate `q`-quantile (`0 ≤ q ≤ 1`): the upper bound of the
    /// bucket containing the ⌈q·n⌉-th smallest recorded value. Returns 0
    /// when empty. `q` outside `[0,1]` is clamped.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(BUCKETS - 1)
    }

    /// Merges `other` into `self` bucket-wise (saturating). Names are not
    /// checked — merging differently-named snapshots is the caller's
    /// business (e.g. unioning per-shard histograms under a new name).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2_spaced() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
        // Every value maps into [lower, upper] of its own bucket.
        for v in [0u64, 1, 2, 5, 100, 4096, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "v={v} i={i}");
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1), "v={v} i={i}");
            }
        }
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = HistogramSnapshot::new("t");
        for v in [1u64, 2, 3, 100, 1000, 10_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert!(h.quantile(0.0) >= 1);
        assert!(h.quantile(1.0) >= 10_000);
        assert!(h.quantile(0.5) >= 3 && h.quantile(0.5) < 200);
        // Empty histogram: all quantiles zero.
        assert_eq!(HistogramSnapshot::new("e").quantile(0.99), 0);
    }

    #[test]
    fn approx_sum_is_within_bucket_error() {
        let mut h = HistogramSnapshot::new("t");
        let values = [3u64, 7, 12, 900, 5000];
        let exact: u64 = values.iter().sum();
        for v in values {
            h.record(v);
        }
        let approx = h.approx_sum();
        assert!(
            approx >= exact / 2 && approx <= exact * 2,
            "approx {approx} vs exact {exact}"
        );
        assert!(h.approx_mean() > 0.0);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let mut a = HistogramSnapshot::new("t");
        let mut b = HistogramSnapshot::new("t");
        a.record(5);
        a.record(500);
        b.record(5);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab.count(), 3);
        assert_eq!(ab.buckets[bucket_index(5)], 2);
        assert_eq!(ab.buckets[bucket_index(500)], 1);
    }
}

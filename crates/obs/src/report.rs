//! Renders the in-memory aggregates as a human-readable profile report.
//!
//! The report's sections: span wall times (inclusive), current counter
//! and gauge values, histogram quantile summaries, and derived throughput
//! for any span that accumulated an `*.instructions` counter delta (this
//! is how the harness gets instructions-per-second for each simulator
//! backend without the report knowing anything about simulators).

use std::fmt::Write;
use std::time::Duration;

use crate::enabled::{counters_snapshot, gauges_snapshot, histograms_snapshot, span_stats};

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn fmt_count(n: u64) -> String {
    let f = n as f64;
    if n < 10_000 {
        format!("{n}")
    } else if f < 1e6 {
        format!("{:.1} K", f / 1e3)
    } else if f < 1e9 {
        format!("{:.2} M", f / 1e6)
    } else {
        format!("{:.2} G", f / 1e9)
    }
}

/// Renders the profile report from the current global aggregates.
///
/// Safe to call at any point; sections with no data are omitted. Does not
/// reset anything — callers wanting per-experiment reports should bracket
/// the experiment with [`crate::reset`].
pub fn profile_report() -> String {
    let spans = span_stats();
    let counters = counters_snapshot();
    let mut out = String::new();
    out.push_str("== mps-obs profile ==\n");

    if spans.is_empty()
        && counters.iter().all(|(_, v)| *v == 0)
        && gauges_snapshot().iter().all(|(_, v)| *v == 0)
        && histograms_snapshot().iter().all(|h| h.count() == 0)
    {
        out.push_str("(no spans or counters recorded)\n");
        return out;
    }

    if !spans.is_empty() {
        out.push_str("\n-- spans (inclusive wall time) --\n");
        let name_w = spans.iter().map(|s| s.name.len()).max().unwrap_or(4).max(4);
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>7}  {:>12}  {:>12}",
            "name", "calls", "total", "mean"
        );
        for s in &spans {
            let mean = if s.calls > 0 {
                Duration::from_nanos((s.total.as_nanos() / u128::from(s.calls)) as u64)
            } else {
                Duration::ZERO
            };
            let _ = writeln!(
                out,
                "{:<name_w$}  {:>7}  {:>12}  {:>12}",
                s.name,
                s.calls,
                fmt_duration(s.total),
                fmt_duration(mean),
            );
        }
    }

    let live: Vec<_> = counters.iter().filter(|(_, v)| *v > 0).collect();
    if !live.is_empty() {
        out.push_str("\n-- counters --\n");
        let name_w = live.iter().map(|(k, _)| k.len()).max().unwrap_or(4).max(4);
        for (k, v) in &live {
            let _ = writeln!(out, "{k:<name_w$}  {:>14}  ({v})", fmt_count(*v));
        }
    }

    let gauges: Vec<_> = gauges_snapshot()
        .into_iter()
        .filter(|(_, v)| *v != 0)
        .collect();
    if !gauges.is_empty() {
        out.push_str("\n-- gauges --\n");
        let name_w = gauges
            .iter()
            .map(|(k, _)| k.len())
            .max()
            .unwrap_or(4)
            .max(4);
        for (k, v) in &gauges {
            let _ = writeln!(out, "{k:<name_w$}  {v:>14}");
        }
    }

    let hists: Vec<_> = histograms_snapshot()
        .into_iter()
        .filter(|h| h.count() > 0)
        .collect();
    if !hists.is_empty() {
        out.push_str("\n-- histograms (log₂ buckets; quantiles are bucket upper bounds) --\n");
        let name_w = hists.iter().map(|h| h.name.len()).max().unwrap_or(4).max(4);
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>10}  {:>12}  {:>12}  {:>12}  {:>12}",
            "name", "count", "~mean", "p50", "p99", "max≤"
        );
        for h in &hists {
            let _ = writeln!(
                out,
                "{:<name_w$}  {:>10}  {:>12}  {:>12}  {:>12}  {:>12}",
                h.name,
                fmt_count(h.count()),
                fmt_count(h.approx_mean() as u64),
                fmt_count(h.quantile(0.5)),
                fmt_count(h.quantile(0.99)),
                fmt_count(h.quantile(1.0)),
            );
        }
    }

    let mut rates = Vec::new();
    for s in &spans {
        let inst: u64 = s
            .deltas
            .iter()
            .filter(|(k, _)| k.ends_with(".instructions"))
            .map(|(_, v)| *v)
            .sum();
        if inst > 0 && s.total > Duration::ZERO {
            rates.push((s.name.clone(), inst, s.total, s.calls));
        }
    }
    if !rates.is_empty() {
        out.push_str("\n-- simulation throughput --\n");
        let name_w = rates
            .iter()
            .map(|(n, ..)| n.len())
            .max()
            .unwrap_or(4)
            .max(4);
        for (name, inst, total, calls) in &rates {
            let rate = *inst as f64 / total.as_secs_f64();
            let _ = writeln!(
                out,
                "{name:<name_w$}  {:>12} inst/s  ({} inst over {} in {calls} calls)",
                fmt_count(rate as u64),
                fmt_count(*inst),
                fmt_duration(*total),
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_are_stable() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(2_500_000), "2.50 M");
    }
}

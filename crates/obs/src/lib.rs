//! `mps-obs` — observability for the whole workspace: cheap monotonic
//! counters, span timers, a structured JSONL event sink and a profile
//! report, all compiled to no-ops unless the `obs` cargo feature is on.
//!
//! # Model
//!
//! * A **counter** is a named, process-global, monotonically increasing
//!   `u64` (one relaxed atomic add per update). Handles are `Copy` and can
//!   be stored in hot structs; looking one up by name takes a lock, so do
//!   it once at construction time, not per event.
//! * A **span** measures a named region of wall time. On finish it records
//!   (into a process-global aggregate) its duration and the *delta of every
//!   counter* over its lifetime, and — when a sink is installed — appends a
//!   JSONL event carrying name, parent span, start offset, duration and the
//!   nonzero counter deltas. Nested spans attribute time and deltas
//!   *inclusively* to every open ancestor.
//! * An **event** is a point-in-time JSONL record with free-form string
//!   fields; it replaces ad-hoc `println!` diagnostics.
//! * An **estimator** is a named streaming Welford accumulation whose
//!   snapshot carries the paper's §VII convergence diagnostics (running
//!   `cv`, CI half-width, achieved confidence, required `W = 8·cv²`).
//!
//! # Feature gating
//!
//! With the `obs` feature **off** (the default for this crate; the harness
//! and facade turn it on by default), every function below exists with the
//! same signature but does nothing: `Counter` and `Span` are zero-sized,
//! calls inline to nothing, and the criterion bench in `mps-bench`
//! (`obs_overhead`) verifies the cost is within noise of an uninstrumented
//! loop. This is what lets the simulators keep instrumentation in hot
//! paths unconditionally.
//!
//! # Sinks
//!
//! `init_from_env()` installs a JSONL sink when `MPS_OBS_OUT=<path>` is
//! set; `set_sink_path` does so explicitly (the harness `--trace FILE`
//! flag). Without a sink, spans still aggregate in memory for
//! [`profile_report`].
//!
//! See `docs/observability.md` for naming conventions and the report
//! format.

pub mod alloc;
pub mod analyze;
pub mod estimator;
pub mod hist;
pub mod jsonl;

#[cfg(feature = "obs")]
pub(crate) mod enabled;
#[cfg(feature = "obs")]
mod report;
#[cfg(feature = "obs")]
mod serve;
#[cfg(feature = "obs")]
pub use enabled::{
    counter, counters_snapshot, estimator, estimators_snapshot, event, flush, gauge,
    gauges_snapshot, histogram, histograms_snapshot, init_from_env, meta_snapshot, reset, set_meta,
    set_sink_path, span, span_stats, Counter, Estimator, Gauge, Histogram, Span, SpanStats,
};
#[cfg(feature = "obs")]
pub use report::profile_report;
#[cfg(feature = "obs")]
pub use serve::{render_metrics, serve_metrics, shutdown_metrics};

#[cfg(not(feature = "obs"))]
mod noop;
#[cfg(not(feature = "obs"))]
pub use noop::profile_report;
#[cfg(not(feature = "obs"))]
pub use noop::{
    counter, counters_snapshot, estimator, estimators_snapshot, event, flush, gauge,
    gauges_snapshot, histogram, histograms_snapshot, init_from_env, meta_snapshot, render_metrics,
    reset, serve_metrics, set_meta, set_sink_path, shutdown_metrics, span, span_stats, Counter,
    Estimator, Gauge, Histogram, Span, SpanStats,
};

/// Whether instrumentation is compiled in.
pub const fn enabled() -> bool {
    cfg!(feature = "obs")
}

//! A counting global allocator for allocation-free steady-state checks.
//!
//! The simulator hot loops are designed to reach an allocation-free steady
//! state: every queue, buffer and MSHR file is preallocated at
//! construction and only mutated in place afterwards. That property is
//! easy to regress silently — a stray `clone()` or map insert in a
//! per-µop path costs 10–30% of throughput without failing any
//! correctness test. [`CountingAllocator`] makes it checkable: a test
//! binary installs it as its `#[global_allocator]` and
//! [`assert_alloc_free`] debug-asserts that a closure performs zero heap
//! allocations.
//!
//! Counting is compiled in only with the `obs` feature (one relaxed
//! atomic add per allocation otherwise being pure overhead); without it
//! the allocator forwards straight to [`System`] and
//! [`assert_alloc_free`] degrades to running the closure. Release builds
//! likewise skip the assertion (`debug_assert!`), so benches can link the
//! same test support without paying for it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-global allocation count (only bumped by an installed
/// [`CountingAllocator`] with the `obs` feature on).
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts allocations.
///
/// Install in a test binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: mps_obs::alloc::CountingAllocator =
///     mps_obs::alloc::CountingAllocator::system();
/// ```
#[derive(Debug)]
pub struct CountingAllocator;

impl CountingAllocator {
    /// The system-backed counting allocator.
    #[must_use]
    pub const fn system() -> Self {
        CountingAllocator
    }
}

// SAFETY: forwards every operation verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the counter update has no effect on the returned
// memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if cfg!(feature = "obs") {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: same layout contract as our caller's.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr/layout come from a matching `alloc` on `System`.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if cfg!(feature = "obs") {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: forwarded contract, as above.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Number of heap allocations observed so far by an installed
/// [`CountingAllocator`] (0 when none is installed or `obs` is off).
#[must_use]
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Runs `f` and returns its result plus the number of allocations it
/// performed (0 unless a [`CountingAllocator`] is installed).
pub fn count_allocations<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = allocations();
    let r = f();
    (r, allocations() - before)
}

/// Debug-asserts that `f` allocates nothing, returning its result.
///
/// `what` names the checked region in the failure message. The check is
/// vacuous unless the calling binary installs a [`CountingAllocator`]
/// and the `obs` feature is on; it is skipped entirely in release builds.
pub fn assert_alloc_free<R>(what: &str, f: impl FnOnce() -> R) -> R {
    let (r, allocs) = count_allocations(f);
    debug_assert!(
        allocs == 0,
        "{what}: expected an allocation-free steady state, got {allocs} allocation(s)"
    );
    // Silence the unused warning in release builds, where debug_assert!
    // compiles away.
    let _ = allocs;
    r
}

//! Concurrency tests for the observability layer: many threads hammering
//! the same counter, nested spans finishing on worker threads, and the
//! JSONL sink receiving interleaved writers — exactly the load profile the
//! `mps-par` work-stealing pool puts on this crate.
//!
//! The registry is process-global, so (like `mps-harness`'s obs tests)
//! every test takes one static mutex and starts from `reset()`.

use std::sync::{Mutex, MutexGuard};

static GATE: Mutex<()> = Mutex::new(());

fn guard() -> MutexGuard<'static, ()> {
    GATE.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(feature = "obs")]
mod enabled {
    use super::guard;
    use mps_obs::jsonl::Record;

    const THREADS: usize = 8;

    fn counter_value(name: &str) -> u64 {
        mps_obs::counters_snapshot()
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
            .unwrap_or(0)
    }

    /// Relaxed atomic adds from 8 threads must still sum exactly: counter
    /// totals are commutative, which is what makes them jobs-invariant.
    #[test]
    fn counter_total_is_exact_under_contention() {
        let _g = guard();
        mps_obs::reset();
        let c = mps_obs::counter("conc.test.adds");
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        // Mix incr and add so both paths see contention.
                        if (i ^ t as u64) & 1 == 0 {
                            c.incr();
                        } else {
                            c.add(1);
                        }
                    }
                });
            }
        });
        assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
        assert_eq!(counter_value("conc.test.adds"), THREADS as u64 * PER_THREAD);
    }

    /// Nested spans finishing concurrently on every thread keep exact call
    /// counts; counter deltas are *window* diffs of process-global
    /// counters, so with overlapping threads a span may also observe
    /// increments made concurrently elsewhere — never fewer than its own.
    #[test]
    fn nested_spans_aggregate_exactly_across_threads() {
        let _g = guard();
        mps_obs::reset();
        let c = mps_obs::counter("conc.test.work");
        const INNER_PER_THREAD: u64 = 50;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    let outer = mps_obs::span("conc.outer");
                    for _ in 0..INNER_PER_THREAD {
                        let inner = mps_obs::span("conc.inner");
                        c.incr();
                        inner.finish();
                    }
                    outer.finish();
                });
            }
        });
        let stats = mps_obs::span_stats();
        let of = |name: &str| stats.iter().find(|s| s.name == name).unwrap();
        let outer = of("conc.outer");
        let inner = of("conc.inner");
        assert_eq!(outer.calls, THREADS as u64);
        assert_eq!(inner.calls, THREADS as u64 * INNER_PER_THREAD);
        // Every increment happened inside one inner and one outer span on
        // its own thread, so the aggregated deltas can never undercount
        // the true total. They *can* overcount: deltas diff the shared
        // global counter at span start/finish, so a span whose window
        // overlaps other threads' work observes those increments too —
        // bounded by every span seeing the whole test's traffic. (This is
        // exactly why the trace analyzer sums counters over non-contained
        // root spans only.)
        let total = THREADS as u64 * INNER_PER_THREAD;
        let inner_delta = *inner.deltas.get("conc.test.work").unwrap();
        let outer_delta = *outer.deltas.get("conc.test.work").unwrap();
        assert!(
            inner_delta >= total,
            "undercounted: {inner_delta} < {total}"
        );
        assert!(
            inner_delta <= inner.calls * total,
            "impossible overlap: {inner_delta}"
        );
        assert!(
            outer_delta >= total,
            "undercounted: {outer_delta} < {total}"
        );
        assert!(
            outer_delta <= outer.calls * total,
            "impossible overlap: {outer_delta}"
        );
    }

    /// Eight threads writing events and spans through the shared sink must
    /// produce a well-formed JSONL file: every line parses (no torn or
    /// interleaved writes) and every record sent is present.
    #[test]
    fn jsonl_sink_has_no_torn_lines_under_contention() {
        let _g = guard();
        mps_obs::reset();
        let path = std::env::temp_dir().join(format!("mps-obs-conc-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        mps_obs::set_sink_path(path.to_str().unwrap()).unwrap();
        const EVENTS_PER_THREAD: usize = 200;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                s.spawn(move || {
                    for i in 0..EVENTS_PER_THREAD {
                        mps_obs::event(
                            "conc.evt",
                            &[
                                ("thread", t.to_string()),
                                ("seq", i.to_string()),
                                // A value needing escapes, to stress encode+parse.
                                ("payload", format!("a\"b\\c\n{i}")),
                            ],
                        );
                    }
                    let sp = mps_obs::span("conc.sink.span");
                    sp.finish();
                });
            }
        });
        // reset() flushes and drops the sink so the file is complete.
        mps_obs::reset();
        let body = std::fs::read_to_string(&path).unwrap();
        let records = mps_obs::jsonl::parse_all(&body).expect("every line well-formed");
        let events = records
            .iter()
            .filter(|r| matches!(r, Record::Event { name, .. } if name == "conc.evt"))
            .count();
        let spans = records
            .iter()
            .filter(|r| matches!(r, Record::Span { name, .. } if name == "conc.sink.span"))
            .count();
        assert_eq!(events, THREADS * EVENTS_PER_THREAD, "lost or torn events");
        assert_eq!(spans, THREADS, "lost or torn span records");
        // Per-thread sequence numbers must all be present exactly once.
        for t in 0..THREADS {
            let mut seen = [false; EVENTS_PER_THREAD];
            for r in &records {
                if let Record::Event { name, fields } = r {
                    if name == "conc.evt"
                        && fields.get("thread").map(String::as_str) == Some(&t.to_string())
                    {
                        let seq: usize = fields["seq"].parse().unwrap();
                        assert!(!seen[seq], "duplicate event thread={t} seq={seq}");
                        seen[seq] = true;
                    }
                }
            }
            assert!(seen.iter().all(|&b| b), "missing events for thread {t}");
        }
        let _ = std::fs::remove_file(&path);
    }
}

/// With the feature off the API must stay callable from many threads and
/// observe nothing (zero-sized no-ops).
#[cfg(not(feature = "obs"))]
#[test]
fn noop_api_is_thread_safe_and_observes_nothing() {
    let _g = guard();
    let c = mps_obs::counter("noop.conc");
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(move || {
                for _ in 0..1000 {
                    c.incr();
                    let sp = mps_obs::span("noop.span");
                    sp.finish();
                }
            });
        }
    });
    assert_eq!(c.get(), 0);
    assert!(mps_obs::counters_snapshot().is_empty());
    assert!(mps_obs::span_stats().is_empty());
}

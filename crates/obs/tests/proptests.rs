//! Property tests for the pure, always-compiled halves of `mps-obs`:
//! the JSONL codec (every sink-writable record must parse back exactly,
//! including escaped strings and counter-delta maps) and the histogram
//! bucket math (merge is associative and commutative, statistics respect
//! the documented error bounds).
//!
//! No `obs` feature gating: nothing here touches the live registry, so
//! the tests run identically in both build configurations.

use proptest::prelude::*;
use std::collections::BTreeMap;

use mps_obs::hist::{bucket_index, bucket_upper_bound, HistogramSnapshot, BUCKETS};
use mps_obs::jsonl::{encode_event, encode_span, parse, parse_all, Record};

/// Characters the string generator draws from — deliberately front-loaded
/// with everything the JSONL escaper has to handle: quotes, backslashes,
/// control characters, multi-byte unicode, and the braces/colons that
/// would confuse a sloppy parser.
const PALETTE: &[char] = &[
    '"', '\\', '\n', '\t', '\r', '{', '}', ':', ',', '[', ']', 'a', 'Z', '0', ' ', '_', '.', 'é',
    '≠', '🦀', '\u{1}', '\u{7f}',
];

/// Builds a string from palette indices (the stub has no string
/// strategies, so strings are assembled from generated integer vectors).
fn string_from(indices: &[usize]) -> String {
    indices
        .iter()
        .map(|&i| PALETTE[i % PALETTE.len()])
        .collect()
}

/// Builds a counter-delta map with guaranteed-nonzero values from
/// parallel name-index / value vectors (the stub has no tuple
/// strategies).
fn counters_from(name_idx: &[usize], vals: &[u64]) -> BTreeMap<String, u64> {
    name_idx
        .iter()
        .enumerate()
        .map(|(n, &i)| {
            let v = if vals.is_empty() {
                1
            } else {
                vals[n % vals.len()]
            };
            // Distinct keys (suffix n) keep the expected map size honest.
            (format!("{}#{n}", string_from(&[i, i / 7])), v.max(1))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Every span the sink can write parses back field-for-field,
    // whatever the name contains and however many counter deltas rode
    // along.
    #[test]
    fn span_records_round_trip(
        id in 0u64..u64::MAX,
        has_parent in 0u8..2,
        parent in 0u64..u64::MAX,
        name_idx in prop::collection::vec(0usize..1000, 0..24),
        start_us in 0u64..u64::MAX / 2,
        dur_us in 0u64..u64::MAX / 2,
        counter_names in prop::collection::vec(0usize..1000, 0..8),
        counter_vals in prop::collection::vec(1u64..u64::MAX, 1..8),
    ) {
        let name = string_from(&name_idx);
        let parent = (has_parent == 1).then_some(parent);
        let counters = counters_from(&counter_names, &counter_vals);
        let line = encode_span(id, parent, &name, start_us, dur_us, &counters);
        prop_assert!(!line.contains('\n'), "one record = one line: {line:?}");
        let rec = parse(&line)?;
        match rec {
            Record::Span { id: i, parent: p, name: n, start_us: s, dur_us: d, counters: c } => {
                prop_assert_eq!(i, id);
                prop_assert_eq!(p, parent);
                prop_assert_eq!(n, name);
                prop_assert_eq!(s, start_us);
                prop_assert_eq!(d, dur_us);
                prop_assert_eq!(c, counters);
            }
            Record::Event { .. } => prop_assert!(false, "span decoded as event"),
        }
    }

    // Events round-trip too, including field values full of escapes.
    #[test]
    fn event_records_round_trip(
        name_idx in prop::collection::vec(0usize..1000, 0..16),
        field_idx in prop::collection::vec(0usize..1000, 0..6),
    ) {
        let name = string_from(&name_idx);
        let fields: Vec<(String, String)> = field_idx
            .iter()
            .enumerate()
            .map(|(n, &i)| (format!("k{n}"), string_from(&[i, i / 3, i / 9])))
            .collect();
        let borrowed: Vec<(&str, String)> =
            fields.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        let line = encode_event(&name, &borrowed);
        let rec = parse(&line)?;
        match rec {
            Record::Event { name: n, fields: f } => {
                prop_assert_eq!(n, name);
                prop_assert_eq!(f.len(), fields.len());
                for (k, v) in &fields {
                    prop_assert_eq!(f.get(k.as_str()), Some(v));
                }
            }
            Record::Span { .. } => prop_assert!(false, "event decoded as span"),
        }
    }

    // A whole trace (spans and events interleaved) survives
    // encode-all/parse-all.
    #[test]
    fn traces_round_trip_as_a_whole(
        kinds in prop::collection::vec(0u8..2, 1..12),
        seed in 0u64..u64::MAX / 2,
    ) {
        let lines: Vec<String> = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                if k == 0 {
                    let mut counters = BTreeMap::new();
                    counters.insert(format!("c{i}"), seed % 997 + 1);
                    encode_span(i as u64, (i > 0).then(|| i as u64 - 1), &format!("s\"{i}\\"),
                                seed % 1000, seed % 777, &counters)
                } else {
                    encode_event(&format!("e\n{i}"), &[("v", format!("{seed}"))])
                }
            })
            .collect();
        let records = parse_all(&lines.join("\n"))?;
        prop_assert_eq!(records.len(), kinds.len());
        for (rec, &k) in records.iter().zip(kinds.iter()) {
            match (rec, k) {
                (Record::Span { .. }, 0) | (Record::Event { .. }, 1) => {}
                _ => prop_assert!(false, "record kind flipped in transit"),
            }
        }
    }

    // Histogram merge is commutative: a∪b == b∪a, bucket for bucket.
    #[test]
    fn histogram_merge_commutes(
        va in prop::collection::vec(0u64..u64::MAX, 0..64),
        vb in prop::collection::vec(0u64..u64::MAX, 0..64),
    ) {
        let mut a = HistogramSnapshot::new("h");
        let mut b = HistogramSnapshot::new("h");
        for &v in &va { a.record(v); }
        for &v in &vb { b.record(v); }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab.buckets[..], &ba.buckets[..]);
        prop_assert_eq!(ab.count(), (va.len() + vb.len()) as u64);
    }

    // …and associative: (a∪b)∪c == a∪(b∪c), so per-thread shards can be
    // combined in any order.
    #[test]
    fn histogram_merge_is_associative(
        va in prop::collection::vec(0u64..u64::MAX, 0..48),
        vb in prop::collection::vec(0u64..u64::MAX, 0..48),
        vc in prop::collection::vec(0u64..u64::MAX, 0..48),
    ) {
        let hist = |vals: &[u64]| {
            let mut h = HistogramSnapshot::new("h");
            for &v in vals { h.record(v); }
            h
        };
        let (a, b, c) = (hist(&va), hist(&vb), hist(&vc));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left.buckets[..], &right.buckets[..]);
    }

    // Layout invariants: every value maps into exactly the bucket whose
    // bounds bracket it, and quantiles never undershoot the data's bucket.
    #[test]
    fn bucket_layout_brackets_every_value(v in 0u64..u64::MAX) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        prop_assert!(v <= bucket_upper_bound(i));
        if i > 0 {
            prop_assert!(v > bucket_upper_bound(i - 1));
        }
        let mut h = HistogramSnapshot::new("h");
        h.record(v);
        prop_assert!(h.quantile(1.0) >= v, "max quantile covers the value");
    }
}

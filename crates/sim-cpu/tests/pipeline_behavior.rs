//! Behavioural tests of the out-of-order pipeline: each test isolates one
//! microarchitectural mechanism and checks its first-order performance
//! effect, using hand-tuned synthetic traces.

use mps_sim_cpu::{Core, CoreConfig, FixedLatencyBackend};
use mps_workloads::{AccessPattern, SynthParams, SyntheticTrace};

fn run(params: SynthParams, cfg: CoreConfig, n: u64) -> (u64, mps_sim_cpu::CoreStats) {
    let mut core = Core::new(cfg, 0, Box::new(SyntheticTrace::new(params)), n);
    let mut backend = FixedLatencyBackend::new(30);
    let mut cycle = 0;
    while !core.done() {
        core.tick(cycle, &mut backend);
        cycle += 1;
        assert!(cycle < n * 2_000, "runaway");
    }
    (core.finish_cycle().unwrap(), core.stats())
}

fn alu(dep: f64) -> SynthParams {
    SynthParams {
        load_frac: 0.0,
        store_frac: 0.0,
        branch_frac: 0.0,
        longlat_frac: 0.0,
        dep_chain: dep,
        ..SynthParams::default()
    }
}

#[test]
fn commit_width_bounds_throughput() {
    let mut narrow = CoreConfig::ispass2013();
    narrow.commit_width = 1;
    let (wide_cycles, _) = run(alu(0.0), CoreConfig::ispass2013(), 10_000);
    let (narrow_cycles, _) = run(alu(0.0), narrow, 10_000);
    // A 1-wide commit caps IPC at 1; the 4-wide machine beats 2.
    assert!(narrow_cycles >= 10_000);
    assert!(wide_cycles * 2 < narrow_cycles);
}

#[test]
fn rob_size_matters_under_memory_latency() {
    // Independent loads: a bigger window exposes more MLP.
    let loads = SynthParams {
        load_frac: 0.5,
        store_frac: 0.0,
        branch_frac: 0.0,
        longlat_frac: 0.0,
        dep_chain: 0.0,
        hot_fraction: 0.0,
        hot_bytes: 0,
        footprint: 64 << 20,
        pattern: AccessPattern::Random,
        ..SynthParams::default()
    };
    let mut tiny = CoreConfig::ispass2013();
    tiny.rob_entries = 8;
    tiny.rs_entries = 8;
    let (big_cycles, _) = run(loads.clone(), CoreConfig::ispass2013(), 5_000);
    let (tiny_cycles, _) = run(loads, tiny, 5_000);
    assert!(
        big_cycles * 3 < tiny_cycles * 2,
        "128-entry ROB must beat 8-entry: {big_cycles} vs {tiny_cycles}"
    );
}

#[test]
fn issue_width_limits_ilp() {
    let mut narrow = CoreConfig::ispass2013();
    narrow.issue_width = 1;
    let (wide_cycles, _) = run(alu(0.0), CoreConfig::ispass2013(), 10_000);
    let (narrow_cycles, _) = run(alu(0.0), narrow, 10_000);
    assert!(wide_cycles * 2 < narrow_cycles);
}

#[test]
fn ldq_capacity_throttles_load_bursts() {
    let loads = SynthParams {
        load_frac: 0.8,
        store_frac: 0.0,
        branch_frac: 0.0,
        longlat_frac: 0.0,
        dep_chain: 0.0,
        hot_fraction: 0.0,
        hot_bytes: 0,
        footprint: 64 << 20,
        pattern: AccessPattern::Random,
        ..SynthParams::default()
    };
    let mut small_ldq = CoreConfig::ispass2013();
    small_ldq.ldq_entries = 2;
    let (full_cycles, _) = run(loads.clone(), CoreConfig::ispass2013(), 4_000);
    let (small_cycles, _) = run(loads, small_ldq, 4_000);
    assert!(
        full_cycles < small_cycles,
        "2-entry LDQ must hurt: {full_cycles} vs {small_cycles}"
    );
}

#[test]
fn mispredict_penalty_scales_cost() {
    let hard_branches = SynthParams {
        branch_frac: 0.3,
        branch_predictability: 0.0,
        load_frac: 0.0,
        store_frac: 0.0,
        longlat_frac: 0.0,
        ..SynthParams::default()
    };
    let mut expensive = CoreConfig::ispass2013();
    expensive.mispredict_penalty = 60;
    let (cheap_cycles, s1) = run(hard_branches.clone(), CoreConfig::ispass2013(), 5_000);
    let (dear_cycles, s2) = run(hard_branches, expensive, 5_000);
    assert!(s1.mispredicts > 100);
    assert_eq!(s1.mispredicts, s2.mispredicts, "same trace, same predictor");
    assert!(
        dear_cycles > cheap_cycles + 30 * s1.mispredicts / 2,
        "5x penalty must show: {cheap_cycles} vs {dear_cycles}"
    );
}

#[test]
fn store_heavy_code_is_bounded_by_stq_drain() {
    let stores = SynthParams {
        store_frac: 0.8,
        load_frac: 0.0,
        branch_frac: 0.0,
        longlat_frac: 0.0,
        dep_chain: 0.0,
        hot_fraction: 0.0,
        hot_bytes: 0,
        footprint: 64 << 20,
        pattern: AccessPattern::Random,
        ..SynthParams::default()
    };
    let mut one_stq = CoreConfig::ispass2013();
    one_stq.stq_entries = 1;
    let (normal, _) = run(stores.clone(), CoreConfig::ispass2013(), 3_000);
    let (strangled, _) = run(stores, one_stq, 3_000);
    assert!(
        strangled > normal,
        "1-entry STQ must serialize store misses: {normal} vs {strangled}"
    );
}

#[test]
fn tlb_misses_cost_cycles() {
    // 256 pages: covered by the 512-entry DTLB, far beyond a 4-entry one.
    let pages = SynthParams {
        load_frac: 0.5,
        store_frac: 0.0,
        branch_frac: 0.0,
        longlat_frac: 0.0,
        dep_chain: 0.0,
        hot_fraction: 0.0,
        hot_bytes: 0,
        footprint: 1 << 20,
        pattern: AccessPattern::Random,
        ..SynthParams::default()
    };
    let mut tiny_tlb = CoreConfig::ispass2013();
    tiny_tlb.dtlb_entries = 4;
    tiny_tlb.tlb_miss_penalty = 100;
    let (_, s_big) = run(pages.clone(), CoreConfig::ispass2013(), 4_000);
    let (slow_cycles, s_small) = run(pages.clone(), tiny_tlb.clone(), 4_000);
    assert!(s_small.dtlb_misses > 4 * s_big.dtlb_misses.max(1));
    let mut free_tlb = tiny_tlb;
    free_tlb.tlb_miss_penalty = 0;
    let (free_cycles, _) = run(pages, free_tlb, 4_000);
    assert!(
        slow_cycles > free_cycles,
        "page walks must cost: {slow_cycles} vs {free_cycles}"
    );
}

//! TAGE branch predictor (paper Table I lists a 4 kB TAGE).
//!
//! A compact but faithful TAGE [Seznec & Michaud, JILP 2006]: a bimodal
//! base predictor plus `N` tagged tables indexed with geometrically
//! increasing global-history lengths. Prediction comes from the longest
//! matching history; allocation on mispredictions steals entries whose
//! `useful` counter has decayed.

/// History lengths of the tagged tables (geometric series).
const HIST_LENGTHS: [usize; 4] = [8, 16, 32, 64];
/// log2 entries per tagged table.
const TAGGED_BITS: usize = 9;
/// log2 entries of the bimodal base table.
const BASE_BITS: usize = 12;
/// Tag width.
const TAG_BITS: u64 = 9;

#[derive(Debug, Clone, Copy, Default)]
struct TaggedEntry {
    tag: u16,
    /// 3-bit signed counter: ≥ 0 predicts taken.
    ctr: i8,
    /// 2-bit useful counter.
    useful: u8,
}

/// The predictor. See the module docs.
#[derive(Debug, Clone)]
pub struct Tage {
    base: Vec<i8>,
    tables: Vec<Vec<TaggedEntry>>,
    /// Global history (most recent outcome in bit 0).
    ghist: u128,
    /// Allocation tie-breaker / useful-reset clock.
    clock: u64,
}

impl Default for Tage {
    fn default() -> Self {
        Self::new()
    }
}

/// Internal prediction bookkeeping carried from predict to update.
#[derive(Debug, Clone, Copy)]
struct Lookup {
    provider: Option<usize>,
    provider_idx: usize,
    altpred: bool,
    pred: bool,
}

impl Tage {
    /// Creates a predictor with all counters neutral.
    pub fn new() -> Self {
        Tage {
            base: vec![0; 1 << BASE_BITS],
            tables: HIST_LENGTHS
                .iter()
                .map(|_| vec![TaggedEntry::default(); 1 << TAGGED_BITS])
                .collect(),
            ghist: 0,
            clock: 0,
        }
    }

    fn folded_hist(&self, bits: usize, out_bits: usize) -> u64 {
        let mut h = self.ghist & ((1u128 << bits) - 1);
        let mut folded: u64 = 0;
        while h != 0 {
            folded ^= (h as u64) & ((1 << out_bits) - 1);
            h >>= out_bits;
        }
        folded
    }

    fn index(&self, table: usize, pc: u64) -> usize {
        let h = self.folded_hist(HIST_LENGTHS[table], TAGGED_BITS);
        (((pc >> 2) ^ (pc >> (2 + TAGGED_BITS)) ^ h) as usize) & ((1 << TAGGED_BITS) - 1)
    }

    fn tag(&self, table: usize, pc: u64) -> u16 {
        let h = self.folded_hist(HIST_LENGTHS[table], TAG_BITS as usize);
        let h2 = self.folded_hist(HIST_LENGTHS[table], TAG_BITS as usize - 1) << 1;
        (((pc >> 2) ^ h ^ h2) & ((1 << TAG_BITS) - 1)) as u16
    }

    fn base_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & ((1 << BASE_BITS) - 1)
    }

    fn lookup(&self, pc: u64) -> Lookup {
        let base_pred = self.base[self.base_index(pc)] >= 0;
        let mut provider = None;
        let mut provider_idx = 0;
        let mut pred = base_pred;
        let mut altpred = base_pred;
        // Longest history first.
        for t in (0..self.tables.len()).rev() {
            let idx = self.index(t, pc);
            let e = &self.tables[t][idx];
            if e.tag == self.tag(t, pc) {
                if provider.is_none() {
                    provider = Some(t);
                    provider_idx = idx;
                    pred = e.ctr >= 0;
                } else {
                    altpred = e.ctr >= 0;
                    break;
                }
            }
        }
        if provider.is_some() && altpred == pred {
            // altpred defaults to base when only one component hits.
        }
        Lookup {
            provider,
            provider_idx,
            altpred: if provider.is_some() {
                altpred
            } else {
                base_pred
            },
            pred,
        }
    }

    /// Predicts the direction of the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.lookup(pc).pred
    }

    /// Predicts and immediately trains on the resolved outcome, returning
    /// the prediction. Equivalent to [`Tage::predict`] followed by
    /// [`Tage::update`] (prediction is pure, so the tables are unchanged
    /// between the two), but performs the tagged-table lookup — a dozen
    /// folded-history computations — once instead of twice.
    pub fn resolve(&mut self, pc: u64, taken: bool) -> bool {
        let l = self.lookup(pc);
        self.apply(l, pc, taken);
        l.pred
    }

    /// Updates the predictor with the resolved outcome and advances the
    /// global history. Call exactly once per dynamic branch, after
    /// [`Tage::predict`].
    pub fn update(&mut self, pc: u64, taken: bool) {
        let l = self.lookup(pc);
        self.apply(l, pc, taken);
    }

    /// Applies the training step for a resolved branch given its lookup.
    fn apply(&mut self, l: Lookup, pc: u64, taken: bool) {
        self.clock += 1;
        let mispredicted = l.pred != taken;

        match l.provider {
            Some(t) => {
                let e = &mut self.tables[t][l.provider_idx];
                e.ctr = (e.ctr + if taken { 1 } else { -1 }).clamp(-4, 3);
                // Useful when the provider disagreed with altpred and was right.
                if l.pred != l.altpred {
                    if !mispredicted {
                        e.useful = (e.useful + 1).min(3);
                    } else {
                        e.useful = e.useful.saturating_sub(1);
                    }
                }
            }
            None => {
                let idx = self.base_index(pc);
                self.base[idx] = (self.base[idx] + if taken { 1 } else { -1 }).clamp(-2, 1);
            }
        }

        // Allocate a new entry on misprediction in a longer-history table.
        if mispredicted {
            let start = l.provider.map_or(0, |t| t + 1);
            let mut allocated = false;
            for t in start..self.tables.len() {
                let idx = self.index(t, pc);
                let tag = self.tag(t, pc);
                let e = &mut self.tables[t][idx];
                if e.useful == 0 {
                    *e = TaggedEntry {
                        tag,
                        ctr: if taken { 0 } else { -1 },
                        useful: 0,
                    };
                    allocated = true;
                    break;
                }
            }
            if !allocated {
                // Decay usefulness so future allocations succeed.
                for t in start..self.tables.len() {
                    let idx = self.index(t, pc);
                    let e = &mut self.tables[t][idx];
                    e.useful = e.useful.saturating_sub(1);
                }
            }
        }

        // Periodic graceful reset of useful counters.
        if self.clock.is_multiple_of(1 << 18) {
            for table in &mut self.tables {
                for e in table.iter_mut() {
                    e.useful >>= 1;
                }
            }
        }

        self.ghist = (self.ghist << 1) | u128::from(taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs a stream of (pc, outcome) through the predictor, returning the
    /// accuracy over the last half (after warmup).
    fn accuracy(mut outcomes: impl Iterator<Item = (u64, bool)>, n: usize) -> f64 {
        let mut t = Tage::new();
        let mut correct = 0usize;
        let mut counted = 0usize;
        for i in 0..n {
            let (pc, taken) = outcomes.next().expect("stream long enough");
            let pred = t.predict(pc);
            if i >= n / 2 {
                counted += 1;
                if pred == taken {
                    correct += 1;
                }
            }
            t.update(pc, taken);
        }
        correct as f64 / counted as f64
    }

    #[test]
    fn always_taken_branch_is_learned() {
        let acc = accuracy(std::iter::repeat((0x40_0000, true)), 2000);
        assert!(acc > 0.999, "acc={acc}");
    }

    #[test]
    fn always_not_taken_branch_is_learned() {
        let acc = accuracy(std::iter::repeat((0x40_0100, false)), 2000);
        assert!(acc > 0.999, "acc={acc}");
    }

    #[test]
    fn short_period_pattern_is_learned() {
        // T T N repeating: needs a little history, well within reach.
        let pattern = [true, true, false];
        let stream = (0..).map(move |i| (0x40_0200u64, pattern[i % 3]));
        let acc = accuracy(stream, 6000);
        assert!(acc > 0.95, "acc={acc}");
    }

    #[test]
    fn long_period_pattern_uses_long_history() {
        // Period-12 pattern: bimodal alone cannot learn it.
        let pattern = [
            true, true, true, false, true, false, false, true, true, false, false, false,
        ];
        let stream = (0..).map(move |i| (0x40_0300u64, pattern[i % 12]));
        let acc = accuracy(stream, 20_000);
        assert!(acc > 0.90, "acc={acc}");
    }

    #[test]
    fn random_branches_are_near_chance() {
        let mut rng = mps_stats::rng::Rng::new(42);
        let stream = std::iter::from_fn(move || Some((0x40_0400u64, rng.chance(0.5))));
        let acc = accuracy(stream, 20_000);
        assert!(acc < 0.60, "random stream should not be predictable: {acc}");
    }

    #[test]
    fn biased_random_branches_track_bias() {
        let mut rng = mps_stats::rng::Rng::new(43);
        let stream = std::iter::from_fn(move || Some((0x40_0500u64, rng.chance(0.9))));
        let acc = accuracy(stream, 20_000);
        assert!(acc > 0.80, "acc={acc}");
    }

    #[test]
    fn multiple_branch_sites_do_not_destroy_each_other() {
        // Interleave four fully biased sites.
        let stream = (0..).map(|i| {
            let site = i % 4;
            (0x40_1000u64 + site as u64 * 64, site % 2 == 0)
        });
        let acc = accuracy(stream, 8000);
        assert!(acc > 0.99, "acc={acc}");
    }

    #[test]
    fn predict_is_pure() {
        let t = Tage::new();
        let a = t.predict(0x400);
        let b = t.predict(0x400);
        assert_eq!(a, b);
    }
}

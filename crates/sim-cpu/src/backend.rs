//! Memory backends: what sits behind a core's L1 caches.
//!
//! The detailed core is generic over its memory system so the same core
//! model can run
//!
//! * against the real shared [`Uncore`] (multiprogram experiments),
//! * against an **ideal** fixed-latency backend where every L1 miss "hits"
//!   (as if the LLC were infinite), and
//! * against a **pessimal** fixed-latency backend where every L1 miss pays
//!   the full memory latency,
//!
//! the latter two being the paper's BADCO model-building runs ("BADCO uses
//! two traces to build a core model").

use mps_uncore::Uncore;

/// Memory system interface seen by a core's L1 caches.
pub trait MemoryBackend {
    /// Demand request (L1 miss or writeback-allocate) from `core` for byte
    /// address `addr` at cycle `now`; returns the data-ready cycle.
    fn demand(&mut self, core: usize, addr: u64, write: bool, now: u64) -> u64;

    /// Best-effort prefetch hint. Returns the cycle the line will be
    /// available, or `None` if the prefetch was dropped — the L1 must then
    /// NOT pretend to have the line.
    fn prefetch(&mut self, core: usize, addr: u64, now: u64) -> Option<u64>;
}

/// The real shared uncore.
///
/// A newtype (rather than implementing the trait on `Uncore` directly)
/// keeps `mps-uncore` independent of this crate's trait.
#[derive(Debug)]
pub struct UncoreBackend(pub Uncore);

impl MemoryBackend for UncoreBackend {
    fn demand(&mut self, core: usize, addr: u64, write: bool, now: u64) -> u64 {
        self.0.access(core, addr, write, now)
    }

    fn prefetch(&mut self, core: usize, addr: u64, now: u64) -> Option<u64> {
        self.0.prefetch(core, addr, now)
    }
}

/// A backend that answers every request after a fixed latency, with no
/// capacity, bandwidth or contention effects.
#[derive(Debug, Clone)]
pub struct FixedLatencyBackend {
    latency: u64,
    requests: u64,
}

impl FixedLatencyBackend {
    /// All requests complete `latency` cycles after issue.
    pub fn new(latency: u64) -> Self {
        FixedLatencyBackend {
            latency,
            requests: 0,
        }
    }

    /// An "every miss hits the LLC" backend (BADCO's optimistic training
    /// run), using the given LLC hit latency.
    pub fn ideal(llc_latency: u64) -> Self {
        Self::new(llc_latency)
    }

    /// An "every miss goes to DRAM" backend (BADCO's pessimistic training
    /// run): LLC latency + bus + DRAM.
    pub fn pessimal(llc_latency: u64, bus: u64, dram: u64) -> Self {
        Self::new(llc_latency + bus + dram)
    }

    /// Demand requests served.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// The fixed latency.
    pub fn latency(&self) -> u64 {
        self.latency
    }
}

impl MemoryBackend for FixedLatencyBackend {
    fn demand(&mut self, _core: usize, _addr: u64, _write: bool, now: u64) -> u64 {
        self.requests += 1;
        now + self.latency
    }

    fn prefetch(&mut self, _core: usize, _addr: u64, now: u64) -> Option<u64> {
        // Unlimited bandwidth: prefetches always land on time.
        Some(now + self.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_uncore::{PolicyKind, UncoreConfig};

    #[test]
    fn fixed_latency_is_fixed() {
        let mut b = FixedLatencyBackend::new(17);
        assert_eq!(b.demand(0, 0x1000, false, 100), 117);
        assert_eq!(b.demand(3, 0x9999, true, 200), 217);
        assert_eq!(b.requests(), 2);
    }

    #[test]
    fn ideal_and_pessimal_presets() {
        assert_eq!(FixedLatencyBackend::ideal(6).latency(), 6);
        assert_eq!(FixedLatencyBackend::pessimal(6, 30, 200).latency(), 236);
    }

    #[test]
    fn uncore_backend_delegates() {
        let u = Uncore::new(UncoreConfig::ispass2013(2, PolicyKind::Lru), 1);
        let mut b = UncoreBackend(u);
        let done = b.demand(0, 0x1000, false, 0);
        assert!(done >= 235);
        let pf = b.prefetch(0, 0x2000, done);
        assert!(pf.is_some());
        assert!(b.0.stats().prefetches >= 1);
    }
}

//! Detailed cycle-level out-of-order multicore simulator.
//!
//! This crate is the reproduction's stand-in for **Zesto**, the detailed
//! simulator of the paper: a cycle-level model of a 4-wide out-of-order
//! core (paper Table I) with
//!
//! * a TAGE branch predictor ([`branch`]),
//! * L1 instruction/data caches and TLBs with next-line and IP-stride
//!   prefetchers,
//! * ROB / reservation-station / load-queue / store-queue resource limits,
//! * per-class functional-unit latencies and an unpipelined divider,
//! * branch-misprediction frontend redirect stalls,
//!
//! driven by the µop traces of `mps-workloads` and backed by any
//! [`MemoryBackend`] — normally the shared [`mps_uncore::Uncore`], or the
//! fixed-latency backends used to train BADCO models.
//!
//! The multicore driver ([`multicore`]) implements the paper's
//! multiprogram-simulation rule: all threads run until every thread has
//! committed its first `N` instructions, threads that finish early are
//! restarted, and IPC is measured over each thread's first `N` commits.
//!
//! # Example: single benchmark on one core
//!
//! ```
//! use mps_sim_cpu::{CoreConfig, MulticoreSim};
//! use mps_uncore::{PolicyKind, Uncore, UncoreConfig};
//! use mps_workloads::suite;
//!
//! let bench = &suite()[0]; // povray
//! let uncore = Uncore::new(UncoreConfig::ispass2013(2, PolicyKind::Lru), 1);
//! let mut sim = MulticoreSim::new(CoreConfig::ispass2013(), uncore,
//!                                 vec![Box::new(bench.trace())]);
//! let result = sim.run(5_000);
//! assert!(result.ipc[0] > 0.1 && result.ipc[0] < 4.0);
//! ```

pub mod backend;
pub mod branch;
pub mod config;
pub mod core;
pub mod energy;
pub mod multicore;
pub mod record;
pub mod tlb;

pub use backend::{FixedLatencyBackend, MemoryBackend, UncoreBackend};
pub use branch::Tage;
pub use config::CoreConfig;
pub use core::{Core, CoreStats};
pub use energy::{energy_of_core, energy_of_run, EnergyBreakdown, EnergyModel};
pub use multicore::{record_run, validation_ipcs, MulticoreSim, SimResult};
pub use record::{ReqEvent, RunRecording};
pub use tlb::Tlb;

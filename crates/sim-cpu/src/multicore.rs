//! Multiprogram multicore simulation driver.
//!
//! Implements the paper's measurement protocol (Section IV-A): each core
//! runs a separate thread; when a thread finishes its slice of `N`
//! instructions before the others it is restarted, as many times as
//! necessary until every thread has executed at least `N` instructions;
//! the IPC of each thread is measured over its first `N` committed
//! instructions. Cores are ticked round-robin each cycle, which together
//! with the uncore's single request port realizes the round-robin
//! arbitration the paper describes.

use crate::backend::{MemoryBackend, UncoreBackend};
use crate::config::CoreConfig;
use crate::core::{Core, CoreStats};
use crate::record::RunRecording;
use mps_uncore::{Uncore, UncoreStats};
use mps_workloads::TraceSource;
use std::time::Instant;

/// Outcome of a multicore run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Per-core IPC over each thread's first `N` committed instructions.
    pub ipc: Vec<f64>,
    /// Per-core cycle at which the measured slice completed.
    pub finish_cycles: Vec<u64>,
    /// Total cycles simulated (until the slowest thread finished).
    pub total_cycles: u64,
    /// Total instructions committed across cores, including restarts.
    pub instructions: u64,
    /// Per-core pipeline statistics.
    pub core_stats: Vec<CoreStats>,
    /// Per-core LLC demand misses (whole run, for MPKI shape checks).
    pub llc_misses_per_core: Vec<u64>,
    /// Per-core prefetch lines fetched from memory (whole run).
    pub llc_prefetches_per_core: Vec<u64>,
    /// Per-core (misses+prefetches, instructions) snapshot taken when the
    /// thread crossed the midpoint of its measured slice — the start of
    /// the steady-state MPKI window.
    pub midpoint_traffic: Vec<(u64, u64)>,
    /// Per-core (misses+prefetches, instructions) at slice completion.
    pub finish_traffic: Vec<(u64, u64)>,
    /// Aggregate uncore statistics.
    pub uncore_stats: UncoreStats,
    /// Wall-clock simulation time in seconds.
    pub wall_seconds: f64,
}

impl SimResult {
    /// Simulation speed in million instructions per second (Table III).
    pub fn mips(&self) -> f64 {
        self.instructions as f64 / self.wall_seconds / 1e6
    }

    /// Per-core CPI (1/IPC).
    pub fn cpi(&self) -> Vec<f64> {
        self.ipc.iter().map(|&x| 1.0 / x).collect()
    }

    /// Memory-traffic MPKI for one core over the whole run: LLC demand
    /// misses plus prefetch fills per kilo-instruction. Prefetch fills are
    /// included because the prefetchers convert would-be demand misses into
    /// prefetch traffic without changing the benchmark's memory intensity
    /// (the quantity the paper's Table IV classifies).
    pub fn llc_mpki(&self, core: usize) -> f64 {
        let instr = self.core_stats[core].committed;
        (self.llc_misses_per_core[core] + self.llc_prefetches_per_core[core]) as f64
            / (instr as f64 / 1000.0)
    }

    /// Steady-state MPKI: memory traffic per kilo-instruction over the
    /// *second half* of the measured slice, excluding the cold-start
    /// transient. This is the reproduction's analogue of the paper's
    /// "skip the first 40 billion instructions" and is the quantity
    /// compared against the Table IV classes.
    pub fn steady_mpki(&self, core: usize) -> f64 {
        let (t0, i0) = self.midpoint_traffic[core];
        let (t1, i1) = self.finish_traffic[core];
        let instr = i1.saturating_sub(i0);
        if instr == 0 {
            return 0.0;
        }
        (t1.saturating_sub(t0)) as f64 / (instr as f64 / 1000.0)
    }
}

/// Detailed multicore simulation: K cores on the shared uncore.
pub struct MulticoreSim {
    cfg: CoreConfig,
    uncore: UncoreBackend,
    traces: Vec<Box<dyn TraceSource>>,
}

impl std::fmt::Debug for MulticoreSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MulticoreSim")
            .field("cores", &self.traces.len())
            .finish_non_exhaustive()
    }
}

impl MulticoreSim {
    /// Binds one trace per core to the given uncore.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty or its length differs from the number of
    /// cores the uncore was built for.
    pub fn new(cfg: CoreConfig, uncore: Uncore, traces: Vec<Box<dyn TraceSource>>) -> Self {
        assert!(!traces.is_empty(), "need at least one core");
        assert_eq!(
            traces.len(),
            uncore.cores(),
            "one trace per uncore port required"
        );
        MulticoreSim {
            cfg,
            uncore: UncoreBackend(uncore),
            traces,
        }
    }

    /// Runs the multiprogram workload with `n` instructions per thread and
    /// returns the measured result.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or the simulation fails to make forward
    /// progress (a deadlock guard at `n × 10_000` cycles).
    pub fn run(mut self, n: u64) -> SimResult {
        assert!(n > 0, "need a positive instruction count");
        let span = mps_obs::span("sim.detailed.run");
        let ticks = mps_obs::counter("sim.detailed.core_ticks");
        let start = Instant::now();
        let k = self.traces.len();
        let mut cores: Vec<Core> = self
            .traces
            .drain(..)
            .enumerate()
            .map(|(id, t)| Core::new(self.cfg.clone(), id, t, n))
            .collect();

        let mut cycle: u64 = 0;
        let guard = n.saturating_mul(10_000);
        let mut midpoint: Vec<Option<(u64, u64)>> = vec![None; k];
        let mut finish: Vec<Option<(u64, u64)>> = vec![None; k];
        while !cores.iter().all(Core::done) {
            for core in &mut cores {
                core.tick(cycle, &mut self.uncore);
            }
            ticks.add(k as u64);
            for (c, core) in cores.iter().enumerate() {
                let traffic = self.uncore.0.core_misses(c) + self.uncore.0.core_prefetches(c);
                if midpoint[c].is_none() && core.committed() >= n / 2 {
                    midpoint[c] = Some((traffic, core.committed()));
                }
                if finish[c].is_none() && core.done() {
                    finish[c] = Some((traffic, core.committed()));
                }
            }
            cycle += 1;
            assert!(
                cycle < guard,
                "simulation deadlock: no progress by cycle {cycle}"
            );
        }

        let finish_cycles: Vec<u64> = cores
            .iter()
            .map(|c| c.finish_cycle().expect("all cores done"))
            .collect();
        let ipc: Vec<f64> = finish_cycles
            .iter()
            .map(|&f| n as f64 / (f.max(1)) as f64)
            .collect();
        let instructions = cores.iter().map(Core::committed).sum();
        flush_obs(instructions, cycle, &cores, &self.uncore.0.stats());
        span.finish();
        let llc_misses_per_core = (0..k).map(|c| self.uncore.0.core_misses(c)).collect();
        let llc_prefetches_per_core = (0..k).map(|c| self.uncore.0.core_prefetches(c)).collect();
        SimResult {
            ipc,
            finish_cycles,
            total_cycles: cycle,
            instructions,
            core_stats: cores.iter().map(Core::stats).collect(),
            llc_misses_per_core,
            llc_prefetches_per_core,
            midpoint_traffic: midpoint
                .into_iter()
                .map(|m| m.expect("midpoint reached before finish"))
                .collect(),
            finish_traffic: finish
                .into_iter()
                .map(|f| f.expect("all cores finished"))
                .collect(),
            uncore_stats: self.uncore.0.stats(),
            wall_seconds: start.elapsed().as_secs_f64().max(1e-9),
        }
    }
}

/// Flushes one finished run's pipeline and uncore statistics into the
/// process-global `sim.detailed.*` observability counters. Counters are
/// bumped once per run (not per event), so the hot loop stays clean; the
/// only per-cycle instrumentation is the `core_ticks` counter above.
fn flush_obs(instructions: u64, cycles: u64, cores: &[Core], uncore: &UncoreStats) {
    mps_obs::counter("sim.detailed.runs").incr();
    mps_obs::counter("sim.detailed.instructions").add(instructions);
    mps_obs::counter("sim.detailed.cycles").add(cycles);
    let sum = |f: fn(&CoreStats) -> u64| cores.iter().map(|c| f(&c.stats())).sum::<u64>();
    mps_obs::counter("sim.detailed.branches").add(sum(|s| s.branches));
    mps_obs::counter("sim.detailed.branch_mispredicts").add(sum(|s| s.mispredicts));
    mps_obs::counter("sim.detailed.tlb_misses").add(sum(|s| s.dtlb_misses + s.itlb_misses));
    mps_obs::counter("sim.detailed.cache_accesses")
        .add(sum(|s| s.dl1_accesses + s.il1_accesses) + uncore.requests);
    mps_obs::counter("sim.detailed.cache_misses")
        .add(sum(|s| s.dl1_misses + s.il1_misses) + uncore.llc_misses);
}

/// Runs one benchmark alone on core 0 of the given backend, recording
/// commit times and backend requests — one BADCO training run.
///
/// Returns the recording and the core statistics.
///
/// # Panics
///
/// Panics on deadlock (guard at `n × 10_000` cycles).
pub fn record_run<B: MemoryBackend>(
    cfg: CoreConfig,
    trace: Box<dyn TraceSource>,
    n: u64,
    backend: &mut B,
) -> (RunRecording, CoreStats) {
    let _span = mps_obs::span("sim.detailed.record_run");
    let mut core = Core::new(cfg, 0, trace, n);
    core.enable_recording();
    let mut cycle = 0u64;
    let guard = n.saturating_mul(10_000);
    while !core.done() {
        core.tick(cycle, backend);
        cycle += 1;
        assert!(cycle < guard, "recording run deadlocked");
    }
    let mut rec = core.take_recording().expect("recording was enabled");
    // Trim to exactly the measured slice.
    rec.commit_cycles.truncate(n as usize);
    rec.requests.retain(|r| r.uop_index < n);
    (rec, core.stats())
}

/// Stable validation entry point: runs one multiprogram workload for `n`
/// instructions per thread and returns only the per-core IPC vector.
///
/// `mps-harness validate` and the differential BADCO-vs-detailed tests
/// call the detailed simulator exclusively through this function, so the
/// validation suite keeps compiling and measuring the same quantity even
/// when [`MulticoreSim`]'s richer result surface evolves. Its contract —
/// the paper's Section IV-A protocol, IPC over each thread's first `n`
/// committed instructions — is pinned by `docs/validation.md`; behavior
/// changes here require re-baselining the validation report.
///
/// # Panics
///
/// As [`MulticoreSim::new`] and [`MulticoreSim::run`]: empty or
/// mismatched trace lists, `n == 0`, or a deadlocked simulation.
pub fn validation_ipcs(
    cfg: CoreConfig,
    uncore: Uncore,
    traces: Vec<Box<dyn TraceSource>>,
    n: u64,
) -> Vec<f64> {
    MulticoreSim::new(cfg, uncore, traces).run(n).ipc
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_uncore::{PolicyKind, UncoreConfig};
    use mps_workloads::suite;

    fn sim(policy: PolicyKind, names: &[&str]) -> MulticoreSim {
        let cores = names.len();
        let uncore_cores = match cores {
            1 | 2 => 2.min(cores.max(1)),
            _ => cores,
        };
        let uncore = Uncore::new(
            UncoreConfig::ispass2013(if cores == 1 { 2 } else { cores }, policy),
            cores,
        );
        let _ = uncore_cores;
        let traces: Vec<Box<dyn mps_workloads::TraceSource>> = names
            .iter()
            .map(|n| {
                Box::new(mps_workloads::benchmark_by_name(n).unwrap().trace())
                    as Box<dyn mps_workloads::TraceSource>
            })
            .collect();
        MulticoreSim::new(CoreConfig::ispass2013(), uncore, traces)
    }

    #[test]
    fn single_core_run_produces_sane_ipc() {
        let r = sim(PolicyKind::Lru, &["povray"]).run(3_000);
        assert_eq!(r.ipc.len(), 1);
        assert!(r.ipc[0] > 0.05 && r.ipc[0] < 4.0, "ipc={}", r.ipc[0]);
        assert!(r.instructions >= 3_000);
        assert!(r.mips() > 0.0);
    }

    #[test]
    fn two_core_contention_slows_threads_down() {
        let solo = sim(PolicyKind::Lru, &["mcf"]).run(2_000).ipc[0];
        let duo = sim(PolicyKind::Lru, &["mcf", "libquantum"]).run(2_000);
        assert!(
            duo.ipc[0] <= solo * 1.05,
            "sharing cannot speed mcf up: solo={solo} duo={}",
            duo.ipc[0]
        );
    }

    #[test]
    fn early_finisher_is_restarted() {
        // povray (fast) + mcf (slow): povray restarts while mcf finishes.
        let r = sim(PolicyKind::Lru, &["povray", "mcf"]).run(2_000);
        assert!(
            r.core_stats[0].committed > 2_000,
            "fast thread should have restarted: {}",
            r.core_stats[0].committed
        );
        assert!(r.finish_cycles[0] < r.finish_cycles[1]);
    }

    #[test]
    fn deterministic_multicore_replay() {
        let a = sim(PolicyKind::Drrip, &["gcc", "soplex"]).run(1_500);
        let b = sim(PolicyKind::Drrip, &["gcc", "soplex"]).run(1_500);
        assert_eq!(a.finish_cycles, b.finish_cycles);
        assert_eq!(a.ipc, b.ipc);
    }

    #[test]
    fn policies_change_timing_under_capacity_pressure() {
        // A tiny LLC and a cyclic working set larger than it: LRU thrashes,
        // RANDOM retains a fraction — finish cycles must differ.
        let run = |policy| {
            let cfg = UncoreConfig {
                stream_prefetch: false,
                llc_size: 64 << 10,
                ..UncoreConfig::tiny_for_tests(policy)
            };
            let uncore = Uncore::new(cfg, 1);
            let params = mps_workloads::SynthParams {
                footprint: 96 << 10, // 1.5× the 64 kB test LLC, 3× the L1D
                hot_bytes: 0,
                hot_fraction: 0.0,
                load_frac: 0.4,
                store_frac: 0.0,
                branch_frac: 0.0,
                longlat_frac: 0.0,
                pattern: mps_workloads::AccessPattern::Sequential { stride: 64 },
                ..mps_workloads::SynthParams::default()
            };
            let traces: Vec<Box<dyn mps_workloads::TraceSource>> =
                vec![Box::new(mps_workloads::SyntheticTrace::new(params))];
            MulticoreSim::new(CoreConfig::ispass2013(), uncore, traces).run(6_000)
        };
        let lru = run(PolicyKind::Lru);
        let rnd = run(PolicyKind::Random);
        assert_ne!(lru.finish_cycles, rnd.finish_cycles);
        // Cyclic reuse beyond capacity is RANDOM's best case vs LRU.
        assert!(
            rnd.uncore_stats.llc_hits > lru.uncore_stats.llc_hits,
            "RND should retain some of the cyclic set: {} vs {}",
            rnd.uncore_stats.llc_hits,
            lru.uncore_stats.llc_hits
        );
    }

    #[test]
    fn memory_bound_thread_has_higher_mpki_than_compute_bound() {
        // Steady-state MPKI (second half of the slice) excludes the cold
        // warm-up transient, which dominates short runs.
        let hi = sim(PolicyKind::Lru, &["libquantum"]).run(16_000);
        let lo = sim(PolicyKind::Lru, &["povray"]).run(16_000);
        assert!(
            hi.steady_mpki(0) > 3.0 * lo.steady_mpki(0).max(0.5),
            "libquantum {} vs povray {}",
            hi.steady_mpki(0),
            lo.steady_mpki(0)
        );
    }

    #[test]
    fn record_run_is_deterministic_and_trimmed() {
        use crate::backend::FixedLatencyBackend;
        let bench = suite().into_iter().find(|b| b.name() == "gcc").unwrap();
        let mut b1 = FixedLatencyBackend::ideal(6);
        let (r1, _) = record_run(
            CoreConfig::ispass2013(),
            Box::new(bench.trace()),
            2_000,
            &mut b1,
        );
        let mut b2 = FixedLatencyBackend::ideal(6);
        let (r2, _) = record_run(
            CoreConfig::ispass2013(),
            Box::new(bench.trace()),
            2_000,
            &mut b2,
        );
        assert_eq!(r1, r2);
        assert_eq!(r1.len(), 2_000);
        assert!(r1.requests.iter().all(|r| r.uop_index < 2_000));
    }

    #[test]
    #[should_panic(expected = "one trace per uncore port")]
    fn mismatched_core_count_panics() {
        let uncore = Uncore::new(UncoreConfig::ispass2013(4, PolicyKind::Lru), 4);
        let traces: Vec<Box<dyn mps_workloads::TraceSource>> = vec![Box::new(suite()[0].trace())];
        MulticoreSim::new(CoreConfig::ispass2013(), uncore, traces);
    }
}

//! Run recordings: the training data for BADCO model construction.
//!
//! BADCO builds a behavioral core model from detailed-simulation traces.
//! When recording is enabled, a [`crate::Core`] logs, for each committed
//! µop, its commit cycle, and for each request it sent to the memory
//! backend, which dynamic µop issued it and for which line.

/// One memory request sent to the backend during a recorded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReqEvent {
    /// Dynamic µop index (0-based commit order) that issued the request.
    pub uop_index: u64,
    /// Core-local byte address of the request.
    pub addr: u64,
    /// Store/writeback rather than load/fetch.
    pub write: bool,
    /// Instruction-fetch request (L1I miss) rather than data.
    pub instruction: bool,
}

/// Complete timing recording of one single-core run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunRecording {
    /// `commit_cycles[i]` = cycle at which dynamic µop `i` committed.
    pub commit_cycles: Vec<u64>,
    /// Backend requests in issue order.
    pub requests: Vec<ReqEvent>,
}

impl RunRecording {
    /// Creates an empty recording with capacity for `n` µops.
    pub fn with_capacity(n: usize) -> Self {
        RunRecording {
            commit_cycles: Vec::with_capacity(n),
            requests: Vec::new(),
        }
    }

    /// Number of committed µops recorded.
    pub fn len(&self) -> usize {
        self.commit_cycles.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.commit_cycles.is_empty()
    }

    /// Total cycles of the run (commit cycle of the last µop).
    pub fn total_cycles(&self) -> u64 {
        self.commit_cycles.last().copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recording() {
        let r = RunRecording::default();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.total_cycles(), 0);
    }

    #[test]
    fn totals_track_last_commit() {
        let r = RunRecording {
            commit_cycles: vec![3, 7, 20],
            requests: vec![],
        };
        assert_eq!(r.len(), 3);
        assert_eq!(r.total_cycles(), 20);
        assert!(!r.is_empty());
    }
}

//! Translation lookaside buffers.
//!
//! A TLB is structurally a small set-associative cache of page numbers, so
//! it reuses [`mps_uncore::Cache`] with LRU replacement (Table I: 4-way LRU
//! ITLB/DTLB, 4 kB pages). A miss costs a fixed page-walk penalty; the
//! workload threads are independent processes, so no shootdowns or sharing
//! are modelled.

use mps_uncore::{AccessType, Cache, PolicyKind};

/// A set-associative TLB.
#[derive(Debug)]
pub struct Tlb {
    cache: Cache,
    page_bytes: u64,
    miss_penalty: u64,
    misses: u64,
    accesses: u64,
}

impl Tlb {
    /// Creates a TLB with `entries` total entries, `ways` associativity,
    /// the given page size and miss penalty in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of `ways`, or the
    /// page size is not a power of two.
    pub fn new(entries: usize, ways: usize, page_bytes: u64, miss_penalty: u64) -> Self {
        assert!(
            ways > 0 && entries.is_multiple_of(ways),
            "entries must be ways-aligned"
        );
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            cache: Cache::new(entries / ways, ways, PolicyKind::Lru),
            page_bytes,
            miss_penalty,
            misses: 0,
            accesses: 0,
        }
    }

    /// Translates `vaddr`, returning the extra cycles the access pays
    /// (0 on a hit, the page-walk penalty on a miss).
    pub fn translate(&mut self, vaddr: u64) -> u64 {
        self.accesses += 1;
        let page = vaddr / self.page_bytes;
        if self.cache.access(page, AccessType::Read).is_hit() {
            0
        } else {
            self.misses += 1;
            self.miss_penalty
        }
    }

    /// (accesses, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.accesses, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_then_hits() {
        let mut t = Tlb::new(64, 4, 4096, 30);
        assert_eq!(t.translate(0x1234), 30);
        assert_eq!(t.translate(0x1FF8), 0, "same page");
        assert_eq!(t.translate(0x2000), 30, "next page");
        assert_eq!(t.stats(), (3, 2));
    }

    #[test]
    fn capacity_eviction() {
        let mut t = Tlb::new(4, 4, 4096, 30);
        // 5 distinct pages in a 4-entry TLB: page 0 gets evicted (LRU).
        for p in 0..5u64 {
            t.translate(p * 4096);
        }
        assert_eq!(t.translate(0), 30, "page 0 was evicted");
        assert_eq!(t.translate(4 * 4096), 0, "page 4 still resident");
    }

    #[test]
    #[should_panic(expected = "ways-aligned")]
    fn misaligned_geometry_panics() {
        Tlb::new(10, 4, 4096, 30);
    }

    #[test]
    fn huge_addresses_translate() {
        let mut t = Tlb::new(64, 4, 4096, 30);
        assert_eq!(t.translate(u64::MAX), 30);
        assert_eq!(t.translate(u64::MAX - 1), 0);
    }
}

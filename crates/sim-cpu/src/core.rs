//! The cycle-level out-of-order core model.
//!
//! A timing-first OoO model: µops flow through fetch → dispatch → issue →
//! commit under the Table I resource constraints. True data dependencies
//! are honored exactly (the trace carries register operands; renaming is
//! implicit since every dynamic µop is a fresh ROB entry), structural
//! hazards are modelled by widths, the RS window, LDQ/STQ occupancy,
//! memory ports and an unpipelined divider, and control hazards by the
//! TAGE predictor with frontend redirect stalls. L1 caches/TLBs are
//! looked up inline; misses ask the [`MemoryBackend`] for a completion
//! cycle, which naturally captures LLC capacity/latency, MSHR and
//! bandwidth contention when the backend is the shared uncore.
//!
//! Simplifications relative to a real machine (all standard for
//! trace-driven simulators, and shared by the paper's framing since both
//! of its simulators plug into the same uncore): no wrong-path fetch
//! (mispredictions stall fetch until resolve + redirect penalty), L1 fills
//! update tags immediately, and stores never forward to loads (the
//! generators use disjoint load/store address streams, so forwarding
//! would not trigger anyway).

use crate::backend::MemoryBackend;
use crate::branch::Tage;
use crate::config::CoreConfig;
use crate::record::{ReqEvent, RunRecording};
use crate::tlb::Tlb;
use mps_uncore::{AccessType, Cache, PolicyKind};
use mps_workloads::{TraceSource, Uop, UopKind};
use std::collections::{BinaryHeap, VecDeque};

/// Per-core performance counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// µops committed.
    pub committed: u64,
    /// Dynamic branches.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// L1D demand accesses.
    pub dl1_accesses: u64,
    /// L1D demand misses.
    pub dl1_misses: u64,
    /// L1I line fetches.
    pub il1_accesses: u64,
    /// L1I misses.
    pub il1_misses: u64,
    /// DTLB misses.
    pub dtlb_misses: u64,
    /// ITLB misses.
    pub itlb_misses: u64,
}

/// One in-flight µop.
#[derive(Debug, Clone, Copy)]
struct RobEntry {
    seq: u64,
    kind: UopKind,
    producers: [Option<u64>; 2],
    addr: u64,
    pc: u64,
    issued: bool,
    complete: u64,
    mispredicted: bool,
}

/// A capacity-limited queue whose entries free at scheduled cycles
/// (models LDQ/STQ occupancy).
#[derive(Debug, Default)]
struct ReleaseQueue {
    cap: usize,
    used: usize,
    releases: BinaryHeap<std::cmp::Reverse<u64>>,
}

impl ReleaseQueue {
    fn new(cap: usize) -> Self {
        ReleaseQueue {
            cap,
            used: 0,
            // At most `cap` entries are ever queued: no reallocation in
            // the steady state.
            releases: BinaryHeap::with_capacity(cap),
        }
    }

    fn drain(&mut self, now: u64) {
        while let Some(&std::cmp::Reverse(t)) = self.releases.peek() {
            if t <= now {
                self.releases.pop();
                self.used -= 1;
            } else {
                break;
            }
        }
    }

    fn try_reserve(&mut self, now: u64) -> bool {
        self.drain(now);
        if self.used < self.cap {
            self.used += 1;
            true
        } else {
            false
        }
    }

    fn schedule_release(&mut self, t: u64) {
        self.releases.push(std::cmp::Reverse(t));
    }
}

/// A fetched µop waiting to dispatch.
#[derive(Debug, Clone, Copy)]
struct FetchedUop {
    uop: Uop,
    mispredicted: bool,
}

/// Capacity of the in-flight data-prefetch table (`pf_pending`).
const PF_PENDING_CAP: usize = 64;

/// One out-of-order core bound to a trace.
pub struct Core {
    cfg: CoreConfig,
    id: usize,
    trace: Box<dyn TraceSource>,
    /// Length of the trace slice; fetch restarts the trace at this many
    /// µops (the paper's thread-restart rule), and IPC is measured over
    /// the first slice.
    trace_len: u64,

    // Frontend.
    fetch_buffer: VecDeque<FetchedUop>,
    fetch_stall_until: u64,
    /// Fetch is blocked on an unresolved mispredicted branch.
    fetch_blocked: bool,
    last_fetch_line: Option<u64>,
    bp: Tage,
    il1: Cache,
    itlb: Tlb,
    il1_next_pf: mps_uncore::NextLinePrefetcher,
    fetched: u64,
    fetched_in_slice: u64,

    // Backend.
    rob: VecDeque<RobEntry>,
    head_seq: u64,
    next_seq: u64,
    /// Entries in the ROB not yet issued (the RS occupancy), maintained
    /// incrementally so dispatch does not rescan the ROB every cycle.
    unissued: usize,
    /// Lowest sequence number not yet issued: every ROB entry below it is
    /// issued, so the issue scan starts there instead of at the ROB head
    /// (which is O(ROB) per cycle while a long-latency miss blocks commit).
    first_unissued_seq: u64,
    /// Earliest cycle the issue scan can possibly issue anything: the
    /// minimum over every in-window wake source (producer completion
    /// times, the divider freeing, `now + 1` after any issue or
    /// dispatch). Until then `issue_stage` returns immediately — during a
    /// memory-miss stall this turns hundreds of fruitless window scans
    /// into one comparison, with identical issue timing.
    issue_wake: u64,
    reg_producer: [Option<u64>; mps_workloads::uop::NUM_REGS],
    ldq: ReleaseQueue,
    stq: ReleaseQueue,
    dl1: Cache,
    dtlb: Tlb,
    dl1_stride_pf: mps_uncore::IpStridePrefetcher,
    dl1_next_pf: mps_uncore::NextLinePrefetcher,
    /// Data lines with an in-flight prefetch: `(line, ready cycle)` pairs.
    /// The line enters the DL1 only when a demand access arrives at/after
    /// its ready cycle (a demand arriving earlier waits for it). Bounded
    /// at [`PF_PENDING_CAP`] entries, so a linear scan of a flat vector
    /// beats a hash map — no hashing, no heap traffic, one cache stream.
    pf_pending: Vec<(u64, u64)>,
    div_free: u64,

    committed: u64,
    finish_cycle: Option<u64>,
    stats: CoreStats,
    recorder: Option<RunRecording>,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("id", &self.id)
            .field("committed", &self.committed)
            .field("finish_cycle", &self.finish_cycle)
            .finish_non_exhaustive()
    }
}

impl Core {
    /// Creates a core with the given id, trace, and slice length.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `trace_len` is zero.
    pub fn new(cfg: CoreConfig, id: usize, trace: Box<dyn TraceSource>, trace_len: u64) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid CoreConfig: {e}");
        }
        assert!(trace_len > 0, "trace slice must be non-empty");
        let il1_sets = (cfg.il1_size / (cfg.il1_ways as u64 * cfg.line_bytes)) as usize;
        let dl1_sets = (cfg.dl1_size / (cfg.dl1_ways as u64 * cfg.line_bytes)) as usize;
        Core {
            id,
            trace,
            trace_len,
            fetch_buffer: VecDeque::with_capacity(cfg.fetch_buffer),
            fetch_stall_until: 0,
            fetch_blocked: false,
            last_fetch_line: None,
            bp: Tage::new(),
            il1: Cache::new(il1_sets, cfg.il1_ways, PolicyKind::Lru),
            itlb: Tlb::new(
                cfg.itlb_entries,
                cfg.itlb_ways,
                cfg.page_bytes,
                cfg.tlb_miss_penalty,
            ),
            il1_next_pf: mps_uncore::NextLinePrefetcher::new(),
            fetched: 0,
            fetched_in_slice: 0,
            rob: VecDeque::with_capacity(cfg.rob_entries),
            head_seq: 0,
            next_seq: 0,
            unissued: 0,
            first_unissued_seq: 0,
            issue_wake: 0,
            reg_producer: [None; mps_workloads::uop::NUM_REGS],
            ldq: ReleaseQueue::new(cfg.ldq_entries),
            stq: ReleaseQueue::new(cfg.stq_entries),
            dl1: Cache::new(dl1_sets, cfg.dl1_ways, PolicyKind::Lru),
            dtlb: Tlb::new(
                cfg.dtlb_entries,
                cfg.dtlb_ways,
                cfg.page_bytes,
                cfg.tlb_miss_penalty,
            ),
            dl1_stride_pf: mps_uncore::IpStridePrefetcher::new(64, 2, cfg.line_bytes),
            dl1_next_pf: mps_uncore::NextLinePrefetcher::new(),
            pf_pending: Vec::with_capacity(PF_PENDING_CAP),
            div_free: 0,
            committed: 0,
            finish_cycle: None,
            stats: CoreStats::default(),
            recorder: None,
            cfg,
        }
    }

    /// Enables recording of commit times and backend requests (for BADCO
    /// model training). Must be called before the first cycle.
    pub fn enable_recording(&mut self) {
        assert_eq!(self.committed, 0, "recording must start at cycle 0");
        self.recorder = Some(RunRecording::with_capacity(self.trace_len as usize));
    }

    /// Takes the recording out of the core.
    pub fn take_recording(&mut self) -> Option<RunRecording> {
        self.recorder.take()
    }

    /// Cycle at which the first `trace_len` µops had all committed.
    pub fn finish_cycle(&self) -> Option<u64> {
        self.finish_cycle
    }

    /// Whether the measured slice is complete.
    pub fn done(&self) -> bool {
        self.finish_cycle.is_some()
    }

    /// µops committed so far (including restarted slices).
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Performance counters.
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// This core's id (its port on the uncore).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Advances the core by one cycle against the given memory backend.
    pub fn tick<B: MemoryBackend>(&mut self, now: u64, backend: &mut B) {
        self.commit_stage(now);
        self.issue_stage(now, backend);
        self.dispatch_stage(now);
        self.fetch_stage(now, backend);
    }

    fn commit_stage(&mut self, now: u64) {
        for _ in 0..self.cfg.commit_width {
            let Some(front) = self.rob.front() else { break };
            if !front.issued || front.complete > now {
                break;
            }
            let entry = self.rob.pop_front().expect("checked non-empty");
            self.head_seq = entry.seq + 1;
            self.committed += 1;
            self.stats.committed += 1;
            if let Some(rec) = &mut self.recorder {
                rec.commit_cycles.push(now);
            }
            if self.committed == self.trace_len && self.finish_cycle.is_none() {
                self.finish_cycle = Some(now);
            }
        }
    }

    /// Earliest cycle the value produced by `seq` can be available:
    /// `0` once committed, the recorded completion time once issued,
    /// `u64::MAX` while unissued (it needs a future issue event first).
    fn producer_ready_at(&self, seq: u64) -> u64 {
        if seq < self.head_seq {
            return 0; // already committed
        }
        let idx = (seq - self.head_seq) as usize;
        let e = &self.rob[idx];
        if e.issued {
            e.complete
        } else {
            u64::MAX
        }
    }

    fn issue_stage<B: MemoryBackend>(&mut self, now: u64, backend: &mut B) {
        // Event-driven skip: `issue_wake` is a lower bound on the first
        // cycle the scan below could issue anything (and a zero-issue scan
        // is a pure no-op — it recomputes the same `first_unissued_seq`),
        // so returning early is timing-identical to running it.
        if now < self.issue_wake {
            return;
        }
        let mut issued = 0usize;
        let mut mem_issued = 0usize;
        let mut considered = 0usize;
        // Earliest future cycle any in-window entry could become
        // issuable, gathered from the wake sources seen during the scan:
        // producer completion times, the divider freeing, and `now + 1`
        // whenever structural contention blocked a ready entry.
        let mut next_wake = u64::MAX;
        // Every entry older than `first_unissued_seq` is already issued, so
        // the select scan can skip the (often long) issued prefix outright.
        // Entries merely continue'd over in the original full scan, so
        // starting past them is timing-identical.
        let mut i =
            (self.first_unissued_seq.saturating_sub(self.head_seq) as usize).min(self.rob.len());
        // First index (if any) left unissued — including entries we stop
        // scanning at — becomes next cycle's scan start.
        let mut new_first: Option<usize> = None;
        while i < self.rob.len() {
            if issued >= self.cfg.issue_width {
                new_first.get_or_insert(i);
                next_wake = next_wake.min(now + 1);
                break;
            }
            let entry = self.rob[i];
            if entry.issued {
                i += 1;
                continue;
            }
            considered += 1;
            if considered > self.cfg.rs_entries {
                new_first.get_or_insert(i);
                // Out-of-window entries only enter the window after an
                // issue, which already forces a `now + 1` rescan.
                break; // beyond the scheduling window
            }
            // Dependences: earliest cycle every producer is available.
            // `u64::MAX` means some producer is unissued — that entry
            // cannot wake before an issue event triggers a rescan anyway.
            let ready_at = entry
                .producers
                .iter()
                .flatten()
                .fold(0u64, |t, &p| t.max(self.producer_ready_at(p)));
            if ready_at > now {
                if ready_at < u64::MAX {
                    next_wake = next_wake.min(ready_at);
                }
                new_first.get_or_insert(i);
                i += 1;
                continue;
            }
            // Structural hazards.
            let is_mem = entry.kind.is_memory();
            if is_mem && mem_issued >= self.cfg.mem_ports {
                new_first.get_or_insert(i);
                next_wake = next_wake.min(now + 1);
                i += 1;
                continue;
            }
            let is_div = matches!(entry.kind, UopKind::IntDiv | UopKind::FpDiv);
            if is_div && self.div_free > now {
                new_first.get_or_insert(i);
                next_wake = next_wake.min(self.div_free);
                i += 1;
                continue;
            }

            // Execute.
            let complete = match entry.kind {
                UopKind::Load => self.execute_load(&entry, now, backend),
                UopKind::Store => self.execute_store(&entry, now, backend),
                UopKind::Branch => now + 1,
                k => now + u64::from(k.latency()),
            };
            if is_div {
                self.div_free = complete;
            }
            if entry.kind == UopKind::Branch && entry.mispredicted {
                // Frontend redirect: fetch resumes after resolve + penalty.
                self.fetch_stall_until = self
                    .fetch_stall_until
                    .max(complete + self.cfg.mispredict_penalty);
                self.fetch_blocked = false;
            }
            let e = &mut self.rob[i];
            e.issued = true;
            e.complete = complete;
            self.unissued -= 1;
            issued += 1;
            if is_mem {
                mem_issued += 1;
            }
            i += 1;
        }
        self.first_unissued_seq = self.head_seq + new_first.unwrap_or(self.rob.len()) as u64;
        // Anything issued this cycle may wake dependents and shifts the
        // scheduling window, so rescan next cycle; otherwise sleep until
        // the earliest gathered wake source (dispatch also wakes us).
        self.issue_wake = if issued > 0 { now + 1 } else { next_wake };
    }

    fn record_request(&mut self, index: u64, addr: u64, write: bool, instruction: bool) {
        if let Some(rec) = &mut self.recorder {
            rec.requests.push(ReqEvent {
                uop_index: index,
                addr,
                write,
                instruction,
            });
        }
    }

    fn execute_load<B: MemoryBackend>(&mut self, e: &RobEntry, now: u64, backend: &mut B) -> u64 {
        let extra = self.dtlb.translate(e.addr);
        if extra > 0 {
            self.stats.dtlb_misses += 1;
        }
        self.stats.dl1_accesses += 1;
        let line = e.addr / self.cfg.line_bytes;
        let t0 = now + extra + self.cfg.dl1_latency;
        let complete = match self.dl1.access(line, AccessType::Read) {
            mps_uncore::AccessOutcome::Hit => t0,
            mps_uncore::AccessOutcome::Miss { writeback } => {
                self.stats.dl1_misses += 1;
                // The line is fetched from the uncore either way (demand
                // or prefetch): it is part of the core's visible request
                // stream and must be in the BADCO training recording.
                self.record_request(e.seq_index(), e.addr, false, false);
                if let Some(victim) = writeback {
                    // Posted dirty writeback to the LLC.
                    let _ = backend.demand(self.id, victim * self.cfg.line_bytes, true, t0);
                }
                if let Some(p) = self.pf_pending.iter().position(|&(l, _)| l == line) {
                    // An in-flight prefetch covers this line: wait for it
                    // instead of issuing a new request.
                    let (_, ready) = self.pf_pending.swap_remove(p);
                    t0.max(ready)
                } else {
                    backend.demand(self.id, e.addr, false, t0)
                }
            }
        };
        self.train_data_prefetchers(e.pc, e.addr, now, backend);
        self.ldq.schedule_release(complete);
        complete
    }

    fn execute_store<B: MemoryBackend>(&mut self, e: &RobEntry, now: u64, backend: &mut B) -> u64 {
        let extra = self.dtlb.translate(e.addr);
        if extra > 0 {
            self.stats.dtlb_misses += 1;
        }
        self.stats.dl1_accesses += 1;
        let line = e.addr / self.cfg.line_bytes;
        let t0 = now + extra + self.cfg.dl1_latency;
        let drained = match self.dl1.access(line, AccessType::Write) {
            mps_uncore::AccessOutcome::Hit => t0,
            mps_uncore::AccessOutcome::Miss { writeback } => {
                self.stats.dl1_misses += 1;
                self.record_request(e.seq_index(), e.addr, true, false);
                if let Some(victim) = writeback {
                    let _ = backend.demand(self.id, victim * self.cfg.line_bytes, true, t0);
                }
                if let Some(p) = self.pf_pending.iter().position(|&(l, _)| l == line) {
                    let (_, ready) = self.pf_pending.swap_remove(p);
                    t0.max(ready)
                } else {
                    // Write-allocate: fetch the line.
                    backend.demand(self.id, e.addr, true, t0)
                }
            }
        };
        self.train_data_prefetchers(e.pc, e.addr, now, backend);
        // The store occupies its STQ slot until the line is written.
        self.stq.schedule_release(drained);
        // Dependents (none — stores produce no register) and commit do not
        // wait for the write to drain.
        now + 1
    }

    fn train_data_prefetchers<B: MemoryBackend>(
        &mut self,
        pc: u64,
        addr: u64,
        now: u64,
        backend: &mut B,
    ) {
        let line = addr / self.cfg.line_bytes;
        let mut candidates = self.dl1_stride_pf.on_access(pc, addr);
        let nl = self.dl1_next_pf.on_access(line);
        if candidates[0].is_none() {
            candidates[0] = nl;
        } else if candidates[1].is_none() {
            candidates[1] = nl;
        }
        for pf_line in candidates.into_iter().flatten() {
            if !self.dl1.probe(pf_line) && !self.pf_pending.iter().any(|&(l, _)| l == pf_line) {
                if let Some(ready) = backend.prefetch(self.id, pf_line * self.cfg.line_bytes, now) {
                    // Bounded prefetch buffer; stale entries expire lazily.
                    if self.pf_pending.len() >= PF_PENDING_CAP {
                        self.pf_pending.retain(|&(_, r)| r > now);
                    }
                    if self.pf_pending.len() < PF_PENDING_CAP {
                        self.pf_pending.push((pf_line, ready));
                    }
                }
            }
        }
    }

    fn dispatch_stage(&mut self, now: u64) {
        // `self.unissued` is maintained incrementally (incremented here,
        // decremented in `issue_stage`) — same value the old full-ROB scan
        // computed, without the per-cycle O(rob_entries) walk.
        let mut window_free = self.cfg.rs_entries.saturating_sub(self.unissued);
        for _ in 0..self.cfg.decode_width {
            if self.rob.len() >= self.cfg.rob_entries || window_free == 0 {
                break;
            }
            let Some(&fu) = self.fetch_buffer.front() else {
                break;
            };
            // Queue reservations.
            match fu.uop.kind {
                UopKind::Load if !self.ldq.try_reserve(now) => {
                    break;
                }
                UopKind::Store if !self.stq.try_reserve(now) => {
                    break;
                }
                _ => {}
            }
            self.fetch_buffer.pop_front();
            let seq = self.next_seq;
            self.next_seq += 1;
            let mut producers = [None, None];
            for (slot, src) in producers.iter_mut().zip(fu.uop.srcs) {
                if let Some(r) = src {
                    *slot = self.reg_producer[r as usize];
                }
            }
            if let Some(d) = fu.uop.dst {
                self.reg_producer[d as usize] = Some(seq);
            }
            self.rob.push_back(RobEntry {
                seq,
                kind: fu.uop.kind,
                producers,
                addr: fu.uop.addr,
                pc: fu.uop.pc,
                issued: false,
                complete: 0,
                mispredicted: fu.mispredicted,
            });
            self.unissued += 1;
            window_free -= 1;
            // The new entry may be immediately issuable, and dispatch runs
            // after issue within a tick — make sure next cycle scans it.
            self.issue_wake = self.issue_wake.min(now + 1);
        }
    }

    fn fetch_stage<B: MemoryBackend>(&mut self, now: u64, backend: &mut B) {
        if self.fetch_blocked || now < self.fetch_stall_until {
            return;
        }
        for _ in 0..self.cfg.fetch_width {
            if self.fetch_buffer.len() >= self.cfg.fetch_buffer {
                break;
            }
            let uop = self.trace.next_uop();
            let index = self.fetched;
            self.fetched += 1;
            self.fetched_in_slice += 1;
            if self.fetched_in_slice == self.trace_len {
                // Thread restart rule: replay the same slice.
                self.trace.reset();
                self.fetched_in_slice = 0;
                self.last_fetch_line = None;
            }

            // Instruction-side cache/TLB on line change.
            let line = uop.pc / self.cfg.line_bytes;
            let mut stall_after = None;
            if self.last_fetch_line != Some(line) {
                self.last_fetch_line = Some(line);
                let extra = self.itlb.translate(uop.pc);
                if extra > 0 {
                    self.stats.itlb_misses += 1;
                    stall_after = Some(now + extra);
                }
                self.stats.il1_accesses += 1;
                if !self.il1.access(line, AccessType::Read).is_hit() {
                    self.stats.il1_misses += 1;
                    self.record_request(index, uop.pc, false, true);
                    let done = backend.demand(self.id, uop.pc, false, now + self.cfg.il1_latency);
                    stall_after = Some(stall_after.map_or(done, |s| s.max(done)));
                }
                if let Some(pl) = self.il1_next_pf.on_access(line) {
                    // Fill the L1I only when the uncore accepts the
                    // prefetch (instruction footprints are small, so the
                    // timely-fill approximation is harmless here).
                    if !self.il1.probe(pl)
                        && backend
                            .prefetch(self.id, pl * self.cfg.line_bytes, now)
                            .is_some()
                    {
                        self.il1.access(pl, AccessType::Prefetch);
                    }
                }
            }

            let mut mispredicted = false;
            if uop.kind == UopKind::Branch {
                self.stats.branches += 1;
                let pred = self.bp.resolve(uop.pc, uop.taken);
                if pred != uop.taken {
                    self.stats.mispredicts += 1;
                    mispredicted = true;
                }
            }

            self.fetch_buffer
                .push_back(FetchedUop { uop, mispredicted });

            if mispredicted {
                // Stop fetching until the branch resolves.
                self.fetch_blocked = true;
                break;
            }
            if let Some(s) = stall_after {
                // I-cache/ITLB miss: the rest of this fetch group waits.
                self.fetch_stall_until = self.fetch_stall_until.max(s);
                break;
            }
        }
    }
}

impl RobEntry {
    /// Dynamic µop index for recording (sequence numbers are assigned in
    /// fetch order which equals commit order on the correct path).
    fn seq_index(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::FixedLatencyBackend;
    use mps_workloads::{SynthParams, SyntheticTrace};

    fn run_core(params: SynthParams, n: u64, latency: u64) -> (Core, u64) {
        let mut core = Core::new(
            CoreConfig::ispass2013(),
            0,
            Box::new(SyntheticTrace::new(params)),
            n,
        );
        let mut backend = FixedLatencyBackend::new(latency);
        let mut cycle = 0;
        while !core.done() {
            core.tick(cycle, &mut backend);
            cycle += 1;
            assert!(cycle < n * 1000, "runaway simulation");
        }
        let finish = core.finish_cycle().unwrap();
        (core, finish)
    }

    fn alu_only() -> SynthParams {
        SynthParams {
            load_frac: 0.0,
            store_frac: 0.0,
            branch_frac: 0.0,
            longlat_frac: 0.0,
            dep_chain: 0.0,
            ..SynthParams::default()
        }
    }

    #[test]
    fn alu_stream_reaches_high_ipc() {
        let (_, cycles) = run_core(alu_only(), 20_000, 6);
        let ipc = 20_000.0 / cycles as f64;
        // Independent single-cycle ALU ops: bounded by commit width 4,
        // should comfortably exceed 2.
        assert!(ipc > 2.0, "ipc={ipc}");
        assert!(ipc <= 4.05, "ipc={ipc} exceeds commit width");
    }

    #[test]
    fn dependence_chain_serializes() {
        let chained = SynthParams {
            dep_chain: 1.0,
            ..alu_only()
        };
        let (_, chained_cycles) = run_core(chained, 10_000, 6);
        let (_, free_cycles) = run_core(alu_only(), 10_000, 6);
        assert!(
            chained_cycles > free_cycles,
            "dependences must cost cycles: {chained_cycles} vs {free_cycles}"
        );
    }

    #[test]
    fn long_latency_ops_cost_cycles() {
        let divs = SynthParams {
            longlat_frac: 0.3,
            fp_frac: 0.0,
            ..alu_only()
        };
        let (_, div_cycles) = run_core(divs, 5_000, 6);
        let (_, alu_cycles) = run_core(alu_only(), 5_000, 6);
        assert!(div_cycles > 2 * alu_cycles, "{div_cycles} vs {alu_cycles}");
    }

    #[test]
    fn memory_latency_hurts_pointer_chase() {
        let chase = SynthParams {
            pattern: mps_workloads::AccessPattern::PointerChase,
            load_frac: 0.3,
            hot_fraction: 0.0,
            hot_bytes: 0,
            footprint: 4 << 20,
            ..SynthParams::default()
        };
        let (_, fast) = run_core(chase.clone(), 5_000, 6);
        let (_, slow) = run_core(chase, 5_000, 236);
        assert!(
            slow as f64 > fast as f64 * 2.0,
            "chase must be memory-latency-bound: {fast} vs {slow}"
        );
    }

    #[test]
    fn l1_hits_do_not_touch_backend() {
        let tiny = SynthParams {
            footprint: 4 << 10, // fits L1D
            hot_bytes: 2 << 10,
            load_frac: 0.4,
            store_frac: 0.0,
            branch_frac: 0.0,
            longlat_frac: 0.0,
            code_footprint: 1 << 10, // fits L1I
            ..SynthParams::default()
        };
        let mut core = Core::new(
            CoreConfig::ispass2013(),
            0,
            Box::new(SyntheticTrace::new(tiny)),
            20_000,
        );
        let mut backend = FixedLatencyBackend::new(100);
        let mut cycle = 0;
        while !core.done() {
            core.tick(cycle, &mut backend);
            cycle += 1;
        }
        let s = core.stats();
        // Only cold misses reach the backend.
        assert!(s.dl1_misses < 200, "dl1 misses: {}", s.dl1_misses);
        assert!(
            backend.requests() < 400,
            "backend requests: {}",
            backend.requests()
        );
    }

    #[test]
    fn unpredictable_branches_cost_cycles() {
        let easy = SynthParams {
            branch_frac: 0.2,
            branch_predictability: 1.0,
            ..alu_only()
        };
        let hard = SynthParams {
            branch_frac: 0.2,
            branch_predictability: 0.0,
            ..alu_only()
        };
        let (ce, easy_cycles) = run_core(easy, 10_000, 6);
        let (ch, hard_cycles) = run_core(hard, 10_000, 6);
        assert!(ch.stats().mispredicts > 10 * ce.stats().mispredicts.max(1));
        assert!(
            hard_cycles as f64 > 1.5 * easy_cycles as f64,
            "{easy_cycles} vs {hard_cycles}"
        );
    }

    #[test]
    fn committed_counts_match_target() {
        let (core, _) = run_core(alu_only(), 7_777, 6);
        assert!(core.committed() >= 7_777);
        assert!(core.done());
    }

    #[test]
    fn recording_captures_every_commit() {
        let mut core = Core::new(
            CoreConfig::ispass2013(),
            0,
            Box::new(SyntheticTrace::new(SynthParams::default())),
            2_000,
        );
        core.enable_recording();
        let mut backend = FixedLatencyBackend::new(20);
        let mut cycle = 0;
        while !core.done() {
            core.tick(cycle, &mut backend);
            cycle += 1;
        }
        let rec = core.take_recording().unwrap();
        assert!(rec.len() >= 2_000);
        // Commit cycles are non-decreasing.
        assert!(rec.commit_cycles.windows(2).all(|w| w[0] <= w[1]));
        // Some requests were recorded (cold misses at minimum).
        assert!(!rec.requests.is_empty());
        // Request indices refer to real µops.
        for r in &rec.requests {
            assert!((r.uop_index as usize) < rec.len() + 10_000);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let p = SynthParams::default();
        let (_, a) = run_core(p.clone(), 5_000, 30);
        let (_, b) = run_core(p, 5_000, 30);
        assert_eq!(a, b);
    }

    #[test]
    fn ipc_sensitive_to_backend_latency() {
        let memory_heavy = SynthParams {
            load_frac: 0.35,
            footprint: 8 << 20,
            hot_fraction: 0.0,
            hot_bytes: 0,
            pattern: mps_workloads::AccessPattern::Random,
            ..SynthParams::default()
        };
        let (_, fast) = run_core(memory_heavy.clone(), 5_000, 6);
        let (_, slow) = run_core(memory_heavy, 5_000, 236);
        assert!(slow > fast, "{fast} vs {slow}");
    }
}

//! Core configuration (paper Table I).

/// Geometry and latencies of one out-of-order core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions decoded/dispatched per cycle.
    pub decode_width: usize,
    /// Maximum µops issued to execution per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Reservation-station entries (window of unissued µops).
    pub rs_entries: usize,
    /// Load-queue entries.
    pub ldq_entries: usize,
    /// Store-queue entries.
    pub stq_entries: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Fetch-buffer capacity in µops.
    pub fetch_buffer: usize,
    /// Memory operations issued per cycle (load/store ports).
    pub mem_ports: usize,

    /// L1I size in bytes.
    pub il1_size: u64,
    /// L1I associativity.
    pub il1_ways: usize,
    /// L1I hit latency (cycles).
    pub il1_latency: u64,
    /// L1D size in bytes.
    pub dl1_size: u64,
    /// L1D associativity.
    pub dl1_ways: usize,
    /// L1D hit latency (cycles).
    pub dl1_latency: u64,
    /// Cache-line size in bytes.
    pub line_bytes: u64,

    /// ITLB entries.
    pub itlb_entries: usize,
    /// ITLB associativity.
    pub itlb_ways: usize,
    /// DTLB entries.
    pub dtlb_entries: usize,
    /// DTLB associativity.
    pub dtlb_ways: usize,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// TLB miss (page walk) penalty in cycles.
    pub tlb_miss_penalty: u64,

    /// Frontend redirect penalty after a mispredicted branch resolves.
    pub mispredict_penalty: u64,
}

impl CoreConfig {
    /// The paper's Table I core: 4/6/4 decode/issue/commit,
    /// RS/LDQ/STQ/ROB = 36/36/24/128, 32 kB 4-way L1I (2 cycles, next-line
    /// prefetcher), 32 kB 8-way L1D (2 cycles, IP-stride + next-line
    /// prefetchers), 128-entry ITLB, 512-entry DTLB, 4 kB pages, TAGE
    /// branch predictor, 3 GHz clock.
    pub fn ispass2013() -> Self {
        CoreConfig {
            fetch_width: 4,
            decode_width: 4,
            issue_width: 6,
            commit_width: 4,
            rs_entries: 36,
            ldq_entries: 36,
            stq_entries: 24,
            rob_entries: 128,
            fetch_buffer: 16,
            mem_ports: 2,
            il1_size: 32 << 10,
            il1_ways: 4,
            il1_latency: 2,
            dl1_size: 32 << 10,
            dl1_ways: 8,
            dl1_latency: 2,
            line_bytes: 64,
            itlb_entries: 128,
            itlb_ways: 4,
            dtlb_entries: 512,
            dtlb_ways: 4,
            page_bytes: 4 << 10,
            tlb_miss_penalty: 30,
            mispredict_penalty: 12,
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.rob_entries == 0 || self.rs_entries == 0 {
            return Err("ROB and RS must be non-empty".into());
        }
        if self.fetch_width == 0
            || self.decode_width == 0
            || self.issue_width == 0
            || self.commit_width == 0
        {
            return Err("pipeline widths must be positive".into());
        }
        if self.ldq_entries == 0 || self.stq_entries == 0 {
            return Err("LDQ/STQ must be non-empty".into());
        }
        if self.mem_ports == 0 {
            return Err("need at least one memory port".into());
        }
        if !self.line_bytes.is_power_of_two() || !self.page_bytes.is_power_of_two() {
            return Err("line and page sizes must be powers of two".into());
        }
        if self.fetch_buffer < self.fetch_width {
            return Err("fetch buffer smaller than fetch width".into());
        }
        Ok(())
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::ispass2013()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_values() {
        let c = CoreConfig::ispass2013();
        assert_eq!(c.decode_width, 4);
        assert_eq!(c.issue_width, 6);
        assert_eq!(c.commit_width, 4);
        assert_eq!(c.rs_entries, 36);
        assert_eq!(c.ldq_entries, 36);
        assert_eq!(c.stq_entries, 24);
        assert_eq!(c.rob_entries, 128);
        assert_eq!(c.il1_size, 32 << 10);
        assert_eq!(c.il1_ways, 4);
        assert_eq!(c.dl1_ways, 8);
        assert_eq!(c.dl1_latency, 2);
        assert_eq!(c.itlb_entries, 128);
        assert_eq!(c.dtlb_entries, 512);
        assert_eq!(c.page_bytes, 4096);
    }

    #[test]
    fn default_config_validates() {
        assert!(CoreConfig::ispass2013().validate().is_ok());
    }

    #[test]
    fn validation_catches_zero_widths() {
        let mut c = CoreConfig::ispass2013();
        c.issue_width = 0;
        assert!(c.validate().is_err());
        let mut c = CoreConfig::ispass2013();
        c.rob_entries = 0;
        assert!(c.validate().is_err());
        let mut c = CoreConfig::ispass2013();
        c.fetch_buffer = 1;
        assert!(c.validate().is_err());
    }
}

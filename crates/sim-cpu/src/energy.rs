//! Event-based energy accounting.
//!
//! The paper's §VII motivates keeping *some* detailed simulation precisely
//! because "detailed microarchitecture simulation is used to obtain
//! information that the approximate simulator does not provide, such as
//! power consumption (e.g., to find if the extra hardware complexity is
//! worth the performance gain)". This module provides that information: a
//! McPAT-flavoured event-energy model layered over the detailed
//! simulator's counters. Per-event energies are nominal 32 nm-class
//! values; as with timing, relative comparisons are what the methodology
//! consumes.

use crate::core::CoreStats;
use crate::multicore::SimResult;

/// Per-event and static energy coefficients, in picojoules / milliwatts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per committed µop (decode/rename/issue/commit datapath), pJ.
    pub uop_pj: f64,
    /// Energy per L1 (I or D) access, pJ.
    pub l1_access_pj: f64,
    /// Energy per LLC access, pJ.
    pub llc_access_pj: f64,
    /// Energy per DRAM line transfer, pJ.
    pub dram_access_pj: f64,
    /// Energy per branch-predictor lookup/update, pJ.
    pub branch_pj: f64,
    /// Recovery energy per mispredicted branch (flushed work), pJ.
    pub mispredict_pj: f64,
    /// Static (leakage) power per core, mW at 3 GHz → pJ per cycle.
    pub leakage_pj_per_cycle: f64,
}

impl EnergyModel {
    /// Nominal coefficients for a 32 nm-class 3 GHz core (the Table I era).
    pub fn nominal() -> Self {
        EnergyModel {
            uop_pj: 8.0,
            l1_access_pj: 15.0,
            llc_access_pj: 120.0,
            dram_access_pj: 2_000.0,
            branch_pj: 3.0,
            mispredict_pj: 150.0,
            leakage_pj_per_cycle: 50.0 / 3.0, // ~50 mW per core at 3 GHz
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::nominal()
    }
}

/// Energy breakdown of one multicore run, in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Core datapath (per-µop) energy.
    pub core_nj: f64,
    /// L1 cache energy.
    pub l1_nj: f64,
    /// Shared LLC energy.
    pub llc_nj: f64,
    /// DRAM transfer energy.
    pub dram_nj: f64,
    /// Branch prediction + misprediction recovery energy.
    pub branch_nj: f64,
    /// Leakage over the run.
    pub leakage_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.core_nj + self.l1_nj + self.llc_nj + self.dram_nj + self.branch_nj + self.leakage_nj
    }

    /// Energy per committed instruction in picojoules.
    pub fn pj_per_instruction(&self, instructions: u64) -> f64 {
        self.total_nj() * 1000.0 / instructions as f64
    }
}

/// Evaluates the model on a finished multicore run.
///
/// Counters come from the run's [`CoreStats`] and uncore statistics; the
/// result is an aggregate over all cores and the whole run (including
/// restarted slices, matching the run's `instructions`).
pub fn energy_of_run(model: &EnergyModel, result: &SimResult) -> EnergyBreakdown {
    let cores = result.core_stats.len() as f64;
    let mut b = EnergyBreakdown::default();
    for s in &result.core_stats {
        b.core_nj += model.uop_pj * s.committed as f64 / 1000.0;
        b.l1_nj += model.l1_access_pj * (s.dl1_accesses + s.il1_accesses) as f64 / 1000.0;
        b.branch_nj += (model.branch_pj * s.branches as f64
            + model.mispredict_pj * s.mispredicts as f64)
            / 1000.0;
    }
    let u = &result.uncore_stats;
    b.llc_nj = model.llc_access_pj * (u.requests + u.prefetches) as f64 / 1000.0;
    b.dram_nj = model.dram_access_pj * (u.llc_misses + u.prefetches) as f64 / 1000.0;
    b.leakage_nj = model.leakage_pj_per_cycle * result.total_cycles as f64 * cores / 1000.0;
    b
}

/// Evaluates the model on per-core stats alone (single-core studies).
pub fn energy_of_core(model: &EnergyModel, stats: &CoreStats, cycles: u64) -> EnergyBreakdown {
    EnergyBreakdown {
        core_nj: model.uop_pj * stats.committed as f64 / 1000.0,
        l1_nj: model.l1_access_pj * (stats.dl1_accesses + stats.il1_accesses) as f64 / 1000.0,
        llc_nj: 0.0,
        dram_nj: 0.0,
        branch_nj: (model.branch_pj * stats.branches as f64
            + model.mispredict_pj * stats.mispredicts as f64)
            / 1000.0,
        leakage_nj: model.leakage_pj_per_cycle * cycles as f64 / 1000.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multicore::MulticoreSim;
    use crate::CoreConfig;
    use mps_uncore::{PolicyKind, Uncore, UncoreConfig};
    use mps_workloads::{benchmark_by_name, TraceSource};

    fn run(names: &[&str]) -> SimResult {
        let uncore = Uncore::new(
            UncoreConfig::ispass2013_scaled(2, PolicyKind::Lru, 16),
            names.len(),
        );
        let traces: Vec<Box<dyn TraceSource>> = names
            .iter()
            .map(|n| Box::new(benchmark_by_name(n).unwrap().trace()) as Box<dyn TraceSource>)
            .collect();
        MulticoreSim::new(CoreConfig::ispass2013(), uncore, traces).run(3_000)
    }

    #[test]
    fn energy_is_positive_and_decomposes() {
        let r = run(&["gcc", "soplex"]);
        let e = energy_of_run(&EnergyModel::nominal(), &r);
        assert!(e.core_nj > 0.0);
        assert!(e.l1_nj > 0.0);
        assert!(e.llc_nj > 0.0);
        assert!(e.dram_nj > 0.0);
        assert!(e.leakage_nj > 0.0);
        let sum = e.core_nj + e.l1_nj + e.llc_nj + e.dram_nj + e.branch_nj + e.leakage_nj;
        assert!((e.total_nj() - sum).abs() < 1e-9);
        assert!(e.pj_per_instruction(r.instructions) > 0.0);
    }

    #[test]
    fn memory_bound_workloads_burn_more_dram_energy() {
        let compute = energy_of_run(&EnergyModel::nominal(), &run(&["hmmer", "povray"]));
        let memory = energy_of_run(&EnergyModel::nominal(), &run(&["mcf", "omnetpp"]));
        assert!(
            memory.dram_nj > 3.0 * compute.dram_nj,
            "mcf+omnetpp {} vs hmmer+povray {}",
            memory.dram_nj,
            compute.dram_nj
        );
    }

    #[test]
    fn slower_runs_leak_more() {
        let fast = run(&["hmmer", "hmmer"]);
        let slow = run(&["mcf", "mcf"]);
        let m = EnergyModel::nominal();
        assert!(slow.total_cycles > fast.total_cycles);
        assert!(energy_of_run(&m, &slow).leakage_nj > energy_of_run(&m, &fast).leakage_nj);
    }

    #[test]
    fn core_only_model_excludes_uncore() {
        let r = run(&["gcc", "gcc"]);
        let e = energy_of_core(&EnergyModel::nominal(), &r.core_stats[0], r.total_cycles);
        assert_eq!(e.llc_nj, 0.0);
        assert_eq!(e.dram_nj, 0.0);
        assert!(e.core_nj > 0.0);
    }

    #[test]
    fn coefficients_scale_linearly() {
        let r = run(&["gcc", "soplex"]);
        let base = energy_of_run(&EnergyModel::nominal(), &r);
        let mut doubled = EnergyModel::nominal();
        doubled.dram_access_pj *= 2.0;
        let e2 = energy_of_run(&doubled, &r);
        assert!((e2.dram_nj - 2.0 * base.dram_nj).abs() < 1e-9);
        assert!((e2.core_nj - base.core_nj).abs() < 1e-12);
    }
}

//! Shared experiment machinery: model building, population simulation and
//! result caching — in memory *and* across processes.
//!
//! Since the parallel-runner rework, [`StudyContext`] uses interior
//! mutability throughout: every accessor takes `&self`, the artifact
//! caches are keyed [`OnceLock`]s (so a concurrent first access builds an
//! artifact exactly once and everyone else blocks on — then shares — the
//! same value), and the expensive builds fan their independent cells out
//! over an [`mps_par`] work-stealing pool sized by [`StudyContext::jobs`].
//! Results are merged in input-index order, so every artifact is
//! bit-identical regardless of the worker count (asserted end to end by
//! `tests/thread_invariance.rs`).
//!
//! Since the durable-runs rework, a context built through
//! [`StudyBuilder`](crate::StudyBuilder) with a store path additionally
//! persists every expensive artifact — populations, BADCO models,
//! reference IPCs, per-policy throughput tables, trace buffers — through
//! an [`mps_store::Store`], so they are *transparently loaded-or-computed
//! across processes*: a second run (or a resumed killed run) hits the
//! store instead of re-simulating. A poisoned artifact file degrades to a
//! recompute (the store quarantines it), never to a wrong result. The
//! public accessors return `Result<_, mps::Error>`; the panicking
//! `*_or_panic` shims remain for one release for callers migrating from
//! the old API.

use crate::scale::Scale;
use mps_badco::{BadcoModel, BadcoMulticoreSim, BadcoTiming};
use mps_metrics::{PerfTable, ThroughputMetric, WorkloadPerf};
use mps_sampling::{PairData, Population, Workload};
use mps_sim_cpu::{CoreConfig, MulticoreSim, SimResult};
use mps_stats::rng::Rng;
use mps_store::{ArtifactKey, Checkpoint, Error, Store};
use mps_uncore::{PolicyKind, Uncore, UncoreConfig};
use mps_workloads::{suite, BenchmarkSpec, TraceBuffer, TraceCursor, TraceSource};

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// LLC capacity divisor used by all experiments (see
/// [`UncoreConfig::ispass2013_scaled`]): reproduction traces are 10³–10⁴×
/// shorter than the paper's 100 M instructions, so cache capacity scales
/// down with them to preserve working-set-to-cache ratios.
pub const CAPACITY_SCALE: u64 = 16;

/// The capacity-scaled Table II uncore used throughout the experiments.
pub fn experiment_uncore(cores: usize, policy: PolicyKind) -> UncoreConfig {
    UncoreConfig::ispass2013_scaled(cores, policy, CAPACITY_SCALE)
}

/// Hit/rebuild statistics for the [`StudyContext`] memoized artifacts.
///
/// A *hit* returns a cached artifact; a *miss* triggers the (expensive)
/// rebuild — or, on a store-backed context, a disk load. Accounting is
/// atomic-consistent under concurrency: when several threads race on the
/// first access to a key, exactly one miss is recorded (the thread that
/// built) and every other thread records a hit, so `hits + misses` always
/// equals the number of accesses. The same figures are mirrored into the
/// `ctx.*` observability counters so they appear in `--profile` reports
/// and `--trace` files; disk-level traffic is accounted separately under
/// `store.*` (see [`StudyContext::store_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StudyCacheStats {
    /// BADCO model-set cache hits (keyed by core count).
    pub model_hits: u64,
    /// BADCO model-set rebuilds.
    pub model_misses: u64,
    /// Population-table cache hits (keyed by core count).
    pub population_hits: u64,
    /// Population-table rebuilds.
    pub population_misses: u64,
    /// BADCO per-policy throughput-table cache hits.
    pub table_hits: u64,
    /// BADCO per-policy throughput-table rebuilds.
    pub table_misses: u64,
    /// BADCO single-thread reference-IPC cache hits.
    pub badco_ref_hits: u64,
    /// BADCO single-thread reference-IPC rebuilds.
    pub badco_ref_misses: u64,
    /// Detailed-simulator reference-IPC cache hits.
    pub detailed_ref_hits: u64,
    /// Detailed-simulator reference-IPC rebuilds.
    pub detailed_ref_misses: u64,
    /// Per-benchmark SoA trace-buffer cache hits.
    pub trace_hits: u64,
    /// Per-benchmark SoA trace-buffer captures (one per benchmark used).
    pub trace_misses: u64,
}

impl StudyCacheStats {
    /// Total hits across all artifact kinds.
    pub fn hits(&self) -> u64 {
        self.model_hits
            + self.population_hits
            + self.table_hits
            + self.badco_ref_hits
            + self.detailed_ref_hits
            + self.trace_hits
    }

    /// Total rebuilds across all artifact kinds.
    pub fn misses(&self) -> u64 {
        self.model_misses
            + self.population_misses
            + self.table_misses
            + self.badco_ref_misses
            + self.detailed_ref_misses
            + self.trace_misses
    }
}

/// One keyed artifact cache: build-once semantics per key with exact
/// hit/miss accounting under concurrent access.
///
/// The map guards only the *cells* (cheap to lock); each cell is an
/// [`OnceLock`], so a rebuild runs outside the map lock and concurrent
/// first-accessors of the same key block on the winning builder instead
/// of duplicating its work.
struct ArtifactCache<K, V> {
    map: Mutex<HashMap<K, Arc<OnceLock<V>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    hit_counter: mps_obs::Counter,
    miss_counter: mps_obs::Counter,
    build_span: &'static str,
}

impl<K: Eq + Hash, V: Clone> ArtifactCache<K, V> {
    fn new(hit_name: &'static str, miss_name: &'static str, build_span: &'static str) -> Self {
        ArtifactCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            hit_counter: mps_obs::counter(hit_name),
            miss_counter: mps_obs::counter(miss_name),
            build_span,
        }
    }

    /// Returns the artifact for `key`, building it with `build` on the
    /// first access. Exactly one caller per key ever runs `build`; that
    /// caller records the miss, all others record hits.
    fn get_or_build(&self, key: K, build: impl FnOnce() -> V) -> V {
        let cell = {
            let mut map = self
                .map
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            Arc::clone(map.entry(key).or_default())
        };
        let mut built = false;
        let v = cell
            .get_or_init(|| {
                built = true;
                let _span = mps_obs::span(self.build_span);
                build()
            })
            .clone();
        if built {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.miss_counter.incr();
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.hit_counter.incr();
        }
        v
    }

    fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Caches everything the experiments share: benchmark suite, BADCO models,
/// per-policy population throughput tables and reference IPCs.
///
/// All accessors take `&self` and the context is `Sync`, so a single
/// instance can be shared across threads; internally the expensive builds
/// run on an [`mps_par`] pool of [`StudyContext::jobs`] workers.
///
/// The documented way to construct one is
/// [`StudyContext::builder`]:
///
/// ```no_run
/// use mps_harness::{Scale, StudyContext};
///
/// let ctx = StudyContext::builder()
///     .scale(Scale::small())
///     .jobs(4)
///     .store("run-store")
///     .resume(true)
///     .build()?;
/// # Ok::<(), mps_store::Error>(())
/// ```
pub struct StudyContext {
    /// The scaling preset in effect.
    pub scale: Scale,
    jobs: usize,
    store: Option<Arc<Store>>,
    resume: bool,
    suite: Vec<BenchmarkSpec>,
    models: ArtifactCache<usize, Vec<Arc<BadcoModel>>>,
    populations: ArtifactCache<usize, Population>,
    badco_tables: ArtifactCache<(usize, PolicyKind), Arc<PerfTable>>,
    badco_refs: ArtifactCache<usize, Vec<f64>>,
    detailed_refs: ArtifactCache<usize, Vec<f64>>,
    /// Per-benchmark SoA trace buffers (`scale.trace_len` µops each),
    /// keyed by suite index. Every consumer of a benchmark's µop stream —
    /// BADCO training, reference runs, detailed workload runs — replays
    /// the one memoized buffer through a cheap [`TraceCursor`] instead of
    /// re-running the synthetic generator µop by µop.
    traces: ArtifactCache<usize, Arc<TraceBuffer>>,
}

impl std::fmt::Debug for StudyContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StudyContext")
            .field("scale", &self.scale)
            .field("jobs", &self.jobs)
            .field("store", &self.store.as_ref().map(|s| s.root().to_owned()))
            .field("resume", &self.resume)
            .finish_non_exhaustive()
    }
}

impl StudyContext {
    /// Starts building a context — the documented entry point. See
    /// [`StudyBuilder`](crate::StudyBuilder).
    pub fn builder() -> crate::StudyBuilder {
        crate::StudyBuilder::new()
    }

    /// Creates a fresh in-memory-only context at the given scale, with
    /// the worker count resolved from the environment (`MPS_JOBS`, else
    /// the machine's available parallelism).
    pub fn new(scale: Scale) -> Self {
        Self::with_jobs(scale, mps_par::default_jobs())
    }

    /// Creates a fresh in-memory-only context with an explicit worker
    /// count.
    ///
    /// **Deprecated entry point**: prefer
    /// [`StudyContext::builder`]`().scale(..).jobs(..).build()`, which
    /// also exposes the artifact store and resume switches. This
    /// constructor remains for one release for existing callers (tests
    /// use it to prove thread invariance).
    pub fn with_jobs(scale: Scale, jobs: usize) -> Self {
        Self::assemble(scale, jobs, None, false)
    }

    pub(crate) fn assemble(
        scale: Scale,
        jobs: usize,
        store: Option<Arc<Store>>,
        resume: bool,
    ) -> Self {
        StudyContext {
            scale,
            jobs: jobs.max(1),
            store,
            resume,
            suite: suite(),
            models: ArtifactCache::new("ctx.models.hits", "ctx.models.misses", "ctx.models.build"),
            populations: ArtifactCache::new(
                "ctx.population.hits",
                "ctx.population.misses",
                "ctx.population.build",
            ),
            badco_tables: ArtifactCache::new(
                "ctx.badco_table.hits",
                "ctx.badco_table.misses",
                "ctx.badco_table.build",
            ),
            badco_refs: ArtifactCache::new(
                "ctx.badco_refs.hits",
                "ctx.badco_refs.misses",
                "ctx.badco_refs.build",
            ),
            detailed_refs: ArtifactCache::new(
                "ctx.detailed_refs.hits",
                "ctx.detailed_refs.misses",
                "ctx.detailed_refs.build",
            ),
            traces: ArtifactCache::new("ctx.traces.hits", "ctx.traces.misses", "ctx.traces.build"),
        }
    }

    /// Worker threads used for parallel artifact builds and resampling.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The artifact store backing this context, if one was configured.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }

    /// Whether this context resumes checkpointed grids (`--resume`).
    pub fn resume(&self) -> bool {
        self.resume
    }

    /// Disk-level hit/miss/corruption counters, if a store is attached.
    pub fn store_stats(&self) -> Option<mps_store::StoreStats> {
        self.store.as_ref().map(|s| s.stats())
    }

    /// Hit/rebuild statistics of the context's artifact caches so far.
    pub fn cache_stats(&self) -> StudyCacheStats {
        StudyCacheStats {
            model_hits: self.models.hits(),
            model_misses: self.models.misses(),
            population_hits: self.populations.hits(),
            population_misses: self.populations.misses(),
            table_hits: self.badco_tables.hits(),
            table_misses: self.badco_tables.misses(),
            badco_ref_hits: self.badco_refs.hits(),
            badco_ref_misses: self.badco_refs.misses(),
            detailed_ref_hits: self.detailed_refs.hits(),
            detailed_ref_misses: self.detailed_refs.misses(),
            trace_hits: self.traces.hits(),
            trace_misses: self.traces.misses(),
        }
    }

    /// Canonical input-spec string for this context's artifacts: every
    /// knob an artifact's value depends on, so equal specs mean reusable
    /// results. The kernel code revision rides in the store header (see
    /// [`mps_store::KERNEL_REV`]), not in the spec.
    pub fn artifact_spec(&self, extra: &str) -> String {
        let suite_hash = {
            let names: Vec<&str> = self.suite.iter().map(|b| b.name()).collect();
            mps_store::fnv1a64(names.join(",").as_bytes())
        };
        format!(
            "{};suite={:016x};cap={CAPACITY_SCALE};{extra}",
            self.scale.spec_string(),
            suite_hash
        )
    }

    /// Loads `kind` from the store (if configured) or computes and
    /// persists it. Disk problems — missing, truncated, bit-flipped or
    /// undecodable artifacts — degrade to a recompute; they never produce
    /// an error or a wrong value.
    fn load_or_compute<V>(
        &self,
        kind: &'static str,
        extra_spec: &str,
        decode: impl Fn(&[u8]) -> Result<V, Error>,
        encode: impl Fn(&V) -> Vec<u8>,
        compute: impl FnOnce() -> V,
    ) -> V {
        let Some(store) = self.store.as_deref() else {
            return compute();
        };
        let key = ArtifactKey::new(kind, self.artifact_spec(extra_spec));
        if let Some(bytes) = store.get(&key) {
            match decode(&bytes) {
                Ok(v) => return v,
                Err(e) => {
                    // The record passed the store's integrity checks but
                    // failed domain decoding: quarantine + recompute.
                    store.quarantine_key(&key, &e);
                }
            }
        }
        let v = compute();
        if let Err(e) = store.put(&key, &encode(&v)) {
            // A full disk must not kill a running study.
            eprintln!("warning: could not persist {kind}: {e}");
        }
        v
    }

    /// Opens (or resumes) the checkpoint log for an experiment grid.
    /// Returns `None` when the context has no store — the grid then runs
    /// un-checkpointed, exactly as before the durability rework.
    pub fn grid_checkpoint(&self, grid: &'static str) -> Option<Arc<Checkpoint>> {
        let store = self.store.as_deref()?;
        match Checkpoint::open(store, grid, &self.artifact_spec(""), self.resume) {
            Ok(c) => Some(Arc::new(c)),
            Err(e) => {
                eprintln!("warning: checkpointing disabled for {grid}: {e}");
                None
            }
        }
    }

    fn check_bench(&self, bench: usize) -> Result<(), Error> {
        if bench >= self.suite.len() {
            return Err(Error::InvalidInput(format!(
                "benchmark index {bench} out of range (suite has {})",
                self.suite.len()
            )));
        }
        Ok(())
    }

    fn check_workload(&self, w: &Workload) -> Result<(), Error> {
        for &b in w.benchmarks() {
            self.check_bench(b as usize)?;
        }
        Ok(())
    }

    /// The memoized SoA trace buffer of suite benchmark `bench`, captured
    /// on first use (or loaded from the store). The buffer holds exactly
    /// `scale.trace_len` µops — the detailed core's thread-restart period
    /// and BADCO's training slice — so a cycling [`TraceCursor`] over it
    /// is stream-identical to the benchmark's generator under the restart
    /// rule.
    pub fn trace_buffer(&self, bench: usize) -> Result<Arc<TraceBuffer>, Error> {
        self.check_bench(bench)?;
        Ok(self.traces.get_or_build(bench, || {
            let name = self.suite[bench].name().to_owned();
            self.load_or_compute(
                "trace",
                &format!("bench={name}"),
                crate::persist::decode_trace,
                |v| crate::persist::encode_trace(v),
                || {
                    let mut source = self.suite[bench].trace();
                    Arc::new(TraceBuffer::capture(&mut source, self.scale.trace_len))
                },
            )
        }))
    }

    /// A fresh replay cursor (positioned at µop 0) over
    /// [`Self::trace_buffer`].
    pub fn trace_cursor(&self, bench: usize) -> Result<TraceCursor, Error> {
        Ok(self.trace_buffer(bench)?.cursor())
    }

    fn trace_cursor_cached(&self, bench: usize) -> TraceCursor {
        self.trace_buffer(bench)
            .expect("suite indices are validated by callers")
            .cursor()
    }

    /// The 22-benchmark suite.
    pub fn suite(&self) -> &[BenchmarkSpec] {
        &self.suite
    }

    /// The five paper policies.
    pub fn policies(&self) -> [PolicyKind; 5] {
        PolicyKind::PAPER_POLICIES
    }

    /// All 10 unordered policy pairs `(X, Y)` in paper order
    /// (LRU>RND, LRU>FIFO, ..., DIP>DRRIP).
    pub fn policy_pairs(&self) -> Vec<(PolicyKind, PolicyKind)> {
        let p = PolicyKind::PAPER_POLICIES;
        let mut pairs = Vec::new();
        for i in 0..p.len() {
            for j in (i + 1)..p.len() {
                pairs.push((p[i], p[j]));
            }
        }
        pairs
    }

    /// The workload population table for a core count (full for 2 cores,
    /// scale-sized subsamples for 4 and 8).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInput`] for core counts other than 2, 4 and 8.
    pub fn population(&self, cores: usize) -> Result<Population, Error> {
        if !matches!(cores, 2 | 4 | 8) {
            return Err(Error::InvalidInput(format!(
                "populations are defined for 2, 4 and 8 cores (got {cores})"
            )));
        }
        Ok(self.populations.get_or_build(cores, || {
            self.load_or_compute(
                "population",
                &format!("cores={cores}"),
                crate::persist::decode_population,
                crate::persist::encode_population,
                || {
                    let scale = &self.scale;
                    let b = 22;
                    let mut rng = Rng::new(scale.seed ^ (cores as u64) << 8);
                    match cores {
                        2 => Population::full(b, 2),
                        4 => {
                            if scale.pop_4core_is_full() {
                                Population::full(b, 4)
                            } else {
                                Population::subsampled(b, 4, scale.pop_4core, &mut rng)
                            }
                        }
                        _ => Population::subsampled(b, 8, scale.pop_8core, &mut rng),
                    }
                },
            )
        }))
    }

    /// BADCO models for every benchmark, trained with the Table II timing
    /// of the given core count. The per-benchmark ideal/pessimal training
    /// runs are independent, so they fan out over the worker pool.
    pub fn models(&self, cores: usize) -> Result<Vec<Arc<BadcoModel>>, Error> {
        if cores == 0 || cores > 64 {
            return Err(Error::InvalidInput(format!(
                "implausible core count {cores}"
            )));
        }
        // Trace buffers feed the training runs; surface their validation
        // before entering the infallible build path.
        self.trace_buffer(0)?;
        Ok(self.models.get_or_build(cores, || {
            self.load_or_compute(
                "badco-models",
                &format!("cores={cores}"),
                crate::persist::decode_models,
                |v| crate::persist::encode_models(v),
                || {
                    let timing =
                        BadcoTiming::from_uncore(&experiment_uncore(cores, PolicyKind::Lru));
                    let trace_len = self.scale.trace_len;
                    mps_par::par_map_indexed(self.jobs, &self.suite, |i, b| {
                        Arc::new(BadcoModel::build(
                            b.name(),
                            &CoreConfig::ispass2013(),
                            &self.trace_cursor_cached(i),
                            trace_len,
                            timing,
                        ))
                    })
                },
            )
        }))
    }

    /// Single-thread reference IPCs (benchmark alone on the reference
    /// machine, LRU uncore) measured with BADCO.
    pub fn badco_reference_ipcs(&self, cores: usize) -> Result<Vec<f64>, Error> {
        let models = self.models(cores)?;
        Ok(self.badco_refs.get_or_build(cores, || {
            self.load_or_compute(
                "badco-refs",
                &format!("cores={cores}"),
                crate::persist::decode_f64s,
                |v| crate::persist::encode_f64s(v),
                || {
                    mps_par::par_map_indexed(self.jobs, &models, |_, m| {
                        let uncore = Uncore::new(experiment_uncore(cores, PolicyKind::Lru), 1);
                        let r = BadcoMulticoreSim::new(uncore, vec![Arc::clone(m)]).run();
                        r.ipc[0]
                    })
                },
            )
        }))
    }

    /// Single-thread reference IPCs measured with the detailed simulator.
    pub fn detailed_reference_ipcs(&self, cores: usize) -> Result<Vec<f64>, Error> {
        if cores == 0 || cores > 64 {
            return Err(Error::InvalidInput(format!(
                "implausible core count {cores}"
            )));
        }
        self.trace_buffer(0)?;
        Ok(self.detailed_refs.get_or_build(cores, || {
            self.load_or_compute(
                "detailed-refs",
                &format!("cores={cores}"),
                crate::persist::decode_f64s,
                |v| crate::persist::encode_f64s(v),
                || {
                    let trace_len = self.scale.trace_len;
                    mps_par::par_map_indexed(self.jobs, &self.suite, |i, _| {
                        let uncore = Uncore::new(experiment_uncore(cores, PolicyKind::Lru), 1);
                        let sim = MulticoreSim::new(
                            CoreConfig::ispass2013(),
                            uncore,
                            vec![Box::new(self.trace_cursor_cached(i))],
                        );
                        sim.run(trace_len).ipc[0]
                    })
                },
            )
        }))
    }

    /// Runs one workload under one policy with BADCO; returns per-core IPC.
    pub fn badco_run(
        &self,
        cores: usize,
        policy: PolicyKind,
        w: &Workload,
    ) -> Result<Vec<f64>, Error> {
        self.check_workload(w)?;
        let models = self.models(cores)?;
        Ok(Self::badco_run_with(&models, cores, policy, w))
    }

    /// [`Self::badco_run`] against an already-fetched model set (the
    /// per-workload cell of the parallel table build, which prefetches the
    /// models once instead of taking the cache lock from every worker).
    /// Public because the validation sweep substitutes deliberately
    /// perturbed model sets here (see [`crate::validate`]).
    pub fn badco_run_with(
        models: &[Arc<BadcoModel>],
        cores: usize,
        policy: PolicyKind,
        w: &Workload,
    ) -> Vec<f64> {
        let uncore = Uncore::new(experiment_uncore(cores, policy), w.cores());
        let bound: Vec<Arc<BadcoModel>> = w
            .benchmarks()
            .iter()
            .map(|&b| Arc::clone(&models[b as usize]))
            .collect();
        BadcoMulticoreSim::new(uncore, bound).run().ipc
    }

    /// Runs one workload through the *stable validation entry point* of
    /// the detailed simulator ([`mps_sim_cpu::validation_ipcs`]) and
    /// returns only the per-core IPCs. `mps-harness validate` measures
    /// the detailed side exclusively through this method, so the
    /// validation suite is insulated from changes to
    /// [`Self::detailed_run`]'s richer result surface.
    pub fn validation_detailed_ipcs(
        &self,
        cores: usize,
        policy: PolicyKind,
        w: &Workload,
    ) -> Result<Vec<f64>, Error> {
        self.check_workload(w)?;
        let traces: Vec<Box<dyn TraceSource>> = w
            .benchmarks()
            .iter()
            .map(|&b| Box::new(self.trace_cursor_cached(b as usize)) as Box<dyn TraceSource>)
            .collect();
        let uncore = Uncore::new(experiment_uncore(cores, policy), w.cores());
        Ok(mps_sim_cpu::validation_ipcs(
            CoreConfig::ispass2013(),
            uncore,
            traces,
            self.scale.trace_len,
        ))
    }

    /// Runs one workload under one policy with the detailed simulator.
    pub fn detailed_run(
        &self,
        cores: usize,
        policy: PolicyKind,
        w: &Workload,
    ) -> Result<SimResult, Error> {
        self.check_workload(w)?;
        let traces: Vec<Box<dyn TraceSource>> = w
            .benchmarks()
            .iter()
            .map(|&b| Box::new(self.trace_cursor_cached(b as usize)) as Box<dyn TraceSource>)
            .collect();
        let uncore = Uncore::new(experiment_uncore(cores, policy), w.cores());
        Ok(MulticoreSim::new(CoreConfig::ispass2013(), uncore, traces).run(self.scale.trace_len))
    }

    /// The BADCO per-workload performance table of one policy over the
    /// whole population for `cores` — the expensive artifact behind
    /// Figures 3–7, computed once, cached and (when a store is attached)
    /// persisted across processes. Each `(policy, workload)` cell is an
    /// independent simulation, so the grid fans out over the worker pool;
    /// rows are merged in population order, keeping the table
    /// bit-identical for every `jobs` value.
    pub fn badco_table(&self, cores: usize, policy: PolicyKind) -> Result<Arc<PerfTable>, Error> {
        // Pull the inputs through the validated accessors first; the
        // cached build below then cannot fail.
        let pop = self.population(cores)?;
        let refs = self.badco_reference_ipcs(cores)?;
        let models = self.models(cores)?;
        Ok(self.badco_tables.get_or_build((cores, policy), || {
            self.load_or_compute(
                "perf-table",
                &format!("cores={cores};policy={policy:?}"),
                |b| crate::persist::decode_perf_table(b).map(Arc::new),
                |v| crate::persist::encode_perf_table(v),
                || {
                    let workloads: Vec<Workload> = pop.workloads().to_vec();
                    let cell_hist = mps_obs::histogram("table.cell.latency_us");
                    let rows = mps_par::par_map_indexed(self.jobs, &workloads, |_, w| {
                        let started = std::time::Instant::now();
                        let ipcs = Self::badco_run_with(&models, cores, policy, w);
                        cell_hist.record_duration(started.elapsed());
                        ipcs
                    });
                    let mut table = PerfTable::new(refs.clone());
                    for (w, ipcs) in workloads.iter().zip(rows) {
                        table.push(WorkloadPerf::new(
                            w.benchmarks().iter().map(|&b| b as usize).collect(),
                            ipcs,
                        ));
                    }
                    Arc::new(table)
                },
            )
        }))
    }

    /// Detailed-simulator performance table over a list of workloads,
    /// one independent simulation per workload, fanned out like
    /// [`Self::badco_table`]. Persisted under a key that hashes the
    /// workload list, so e.g. Figure 7's full-population detailed pass is
    /// simulated once per store lifetime.
    pub fn detailed_table(
        &self,
        cores: usize,
        policy: PolicyKind,
        workloads: &[Workload],
    ) -> Result<PerfTable, Error> {
        for w in workloads {
            self.check_workload(w)?;
        }
        let refs = self.detailed_reference_ipcs(cores)?;
        let wl_hash = {
            let mut bytes = Vec::with_capacity(workloads.len() * 4);
            for w in workloads {
                for &b in w.benchmarks() {
                    bytes.push(b as u8);
                }
                bytes.push(0xFF);
            }
            mps_store::fnv1a64(&bytes)
        };
        Ok(self.load_or_compute(
            "detailed-table",
            &format!("cores={cores};policy={policy:?};wl={wl_hash:016x}"),
            crate::persist::decode_perf_table,
            crate::persist::encode_perf_table,
            || {
                let cell_hist = mps_obs::histogram("table.cell.latency_us");
                let rows = mps_par::par_map_indexed(self.jobs, workloads, |_, w| {
                    let started = std::time::Instant::now();
                    let ipc = self
                        .detailed_run(cores, policy, w)
                        .expect("workloads validated above")
                        .ipc;
                    cell_hist.record_duration(started.elapsed());
                    ipc
                });
                let mut table = PerfTable::new(refs.clone());
                for (w, ipc) in workloads.iter().zip(rows) {
                    table.push(WorkloadPerf::new(
                        w.benchmarks().iter().map(|&b| b as usize).collect(),
                        ipc,
                    ));
                }
                table
            },
        ))
    }

    /// Pair data (per-workload throughputs of X and Y) under a metric from
    /// the cached BADCO population tables.
    pub fn badco_pair_data(
        &self,
        cores: usize,
        x: PolicyKind,
        y: PolicyKind,
        metric: ThroughputMetric,
    ) -> Result<PairData, Error> {
        let tx = self.badco_table(cores, x)?.throughputs(metric);
        let ty = self.badco_table(cores, y)?.throughputs(metric);
        Ok(PairData::new(metric, tx, ty))
    }

    /// A fresh deterministic RNG stream for an experiment.
    pub fn rng(&self, stream: u64) -> Rng {
        Rng::new(
            self.scale
                .seed
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(stream),
        )
    }
}

/// Panicking compatibility shims for the pre-durability accessor names.
///
/// These unwrap the `Result`-returning accessors above and will be
/// removed after one release; migrate to the fallible versions (the only
/// failures are invalid inputs, so most call sites just add `?`).
impl StudyContext {
    /// [`Self::population`], panicking on invalid core counts.
    pub fn population_or_panic(&self, cores: usize) -> Population {
        self.population(cores).unwrap()
    }

    /// [`Self::models`], panicking on invalid core counts.
    pub fn models_or_panic(&self, cores: usize) -> Vec<Arc<BadcoModel>> {
        self.models(cores).unwrap()
    }

    /// [`Self::badco_reference_ipcs`], panicking on invalid core counts.
    pub fn badco_reference_ipcs_or_panic(&self, cores: usize) -> Vec<f64> {
        self.badco_reference_ipcs(cores).unwrap()
    }

    /// [`Self::detailed_reference_ipcs`], panicking on invalid core counts.
    pub fn detailed_reference_ipcs_or_panic(&self, cores: usize) -> Vec<f64> {
        self.detailed_reference_ipcs(cores).unwrap()
    }

    /// [`Self::badco_table`], panicking on invalid inputs.
    pub fn badco_table_or_panic(&self, cores: usize, policy: PolicyKind) -> Arc<PerfTable> {
        self.badco_table(cores, policy).unwrap()
    }

    /// [`Self::detailed_table`], panicking on invalid inputs.
    pub fn detailed_table_or_panic(
        &self,
        cores: usize,
        policy: PolicyKind,
        workloads: &[Workload],
    ) -> PerfTable {
        self.detailed_table(cores, policy, workloads).unwrap()
    }

    /// [`Self::badco_pair_data`], panicking on invalid inputs.
    pub fn badco_pair_data_or_panic(
        &self,
        cores: usize,
        x: PolicyKind,
        y: PolicyKind,
        metric: ThroughputMetric,
    ) -> PairData {
        self.badco_pair_data(cores, x, y, metric).unwrap()
    }

    /// [`Self::trace_buffer`], panicking on out-of-range indices.
    pub fn trace_buffer_or_panic(&self, bench: usize) -> Arc<TraceBuffer> {
        self.trace_buffer(bench).unwrap()
    }

    /// [`Self::trace_cursor`], panicking on out-of-range indices.
    pub fn trace_cursor_or_panic(&self, bench: usize) -> TraceCursor {
        self.trace_cursor(bench).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> StudyContext {
        StudyContext::new(Scale::test())
    }

    #[test]
    fn populations_have_scale_sizes() {
        let c = ctx();
        assert_eq!(c.population(2).unwrap().len(), 253);
        assert_eq!(c.population(4).unwrap().len(), Scale::test().pop_4core);
        assert_eq!(c.population(8).unwrap().len(), Scale::test().pop_8core);
    }

    #[test]
    fn invalid_inputs_error_instead_of_panicking() {
        let c = ctx();
        assert!(matches!(c.population(3), Err(Error::InvalidInput(_))));
        assert!(matches!(c.models(0), Err(Error::InvalidInput(_))));
        assert!(matches!(c.trace_buffer(22), Err(Error::InvalidInput(_))));
        let w = Workload::new(vec![21, 22]);
        assert!(matches!(
            c.detailed_run(2, PolicyKind::Lru, &w),
            Err(Error::InvalidInput(_))
        ));
    }

    #[test]
    fn policy_pairs_are_ten() {
        let c = ctx();
        let pairs = c.policy_pairs();
        assert_eq!(pairs.len(), 10);
        assert_eq!(pairs[0], (PolicyKind::Lru, PolicyKind::Random));
        assert_eq!(pairs[9], (PolicyKind::Dip, PolicyKind::Drrip));
    }

    #[test]
    fn models_cover_suite_and_cache() {
        let c = ctx();
        let m = c.models(2).unwrap();
        assert_eq!(m.len(), 22);
        let again = c.models(2).unwrap();
        assert!(Arc::ptr_eq(&m[0], &again[0]), "models must be cached");
    }

    #[test]
    fn badco_table_is_cached_and_aligned() {
        let c = ctx();
        // Shrink further for test speed: 2-core population is 253.
        let t1 = c.badco_table(2, PolicyKind::Lru).unwrap();
        let t2 = c.badco_table(2, PolicyKind::Lru).unwrap();
        assert!(Arc::ptr_eq(&t1, &t2));
        assert_eq!(t1.len(), c.population(2).unwrap().len());
    }

    #[test]
    fn pair_data_has_population_length() {
        let c = ctx();
        let d = c
            .badco_pair_data(
                2,
                PolicyKind::Lru,
                PolicyKind::Random,
                ThroughputMetric::WeightedSpeedup,
            )
            .unwrap();
        assert_eq!(d.len(), 253);
    }

    #[test]
    fn reference_ipcs_are_positive() {
        let c = ctx();
        for ipc in c.badco_reference_ipcs(2).unwrap() {
            assert!(ipc > 0.0 && ipc < 4.0);
        }
    }

    #[test]
    fn tables_are_jobs_invariant() {
        // The same table built with 1 and 4 workers must be bit-identical.
        let t1 = StudyContext::with_jobs(Scale::test(), 1)
            .badco_table(2, PolicyKind::Drrip)
            .unwrap()
            .throughputs(ThroughputMetric::IpcThroughput);
        let t4 = StudyContext::with_jobs(Scale::test(), 4)
            .badco_table(2, PolicyKind::Drrip)
            .unwrap()
            .throughputs(ThroughputMetric::IpcThroughput);
        assert_eq!(t1, t4);
    }

    #[test]
    fn concurrent_first_access_builds_once() {
        // Eight threads race on the same cold artifact: the cache must
        // rebuild exactly once and account exactly one miss, with every
        // other access a hit (hits + misses == accesses).
        let c = StudyContext::with_jobs(Scale::test(), 2);
        let threads = 8;
        let tables: Vec<Arc<PerfTable>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| s.spawn(|| c.badco_table(2, PolicyKind::Fifo).unwrap()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panics"))
                .collect()
        });
        for t in &tables[1..] {
            assert!(
                Arc::ptr_eq(&tables[0], t),
                "all threads must share one build"
            );
        }
        let stats = c.cache_stats();
        assert_eq!(stats.table_misses, 1, "exactly one rebuild: {stats:?}");
        assert_eq!(
            stats.table_hits,
            threads as u64 - 1,
            "every other access is a hit: {stats:?}"
        );
    }

    #[test]
    fn store_round_trips_artifacts_across_contexts() {
        let dir = std::env::temp_dir().join(format!(
            "mps-runner-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let build = || {
            crate::StudyBuilder::new()
                .scale(Scale::test())
                .jobs(1)
                .store(&dir)
                .build()
                .unwrap()
        };
        let cold = build();
        let t_cold = cold.badco_table(2, PolicyKind::Lru).unwrap();
        let refs_cold = cold.detailed_reference_ipcs(2).unwrap();
        let stats = cold.store_stats().unwrap();
        assert!(
            stats.puts >= 2,
            "cold run must persist artifacts: {stats:?}"
        );

        let warm = build();
        let t_warm = warm.badco_table(2, PolicyKind::Lru).unwrap();
        let refs_warm = warm.detailed_reference_ipcs(2).unwrap();
        assert_eq!(*t_warm, *t_cold, "loaded table must be bit-identical");
        assert_eq!(refs_warm, refs_cold);
        let stats = warm.store_stats().unwrap();
        assert!(stats.hits >= 2, "warm run must hit the store: {stats:?}");
    }

    #[test]
    fn different_scales_do_not_share_artifacts() {
        let a = StudyContext::new(Scale::test()).artifact_spec("cores=2");
        let b = StudyContext::new(Scale::small()).artifact_spec("cores=2");
        assert_ne!(a, b);
    }
}

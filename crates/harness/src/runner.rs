//! Shared experiment machinery: model building, population simulation and
//! result caching.

use crate::scale::Scale;
use mps_badco::{BadcoModel, BadcoMulticoreSim, BadcoTiming};
use mps_metrics::{PerfTable, ThroughputMetric, WorkloadPerf};
use mps_sampling::{PairData, Population, Workload};
use mps_sim_cpu::{CoreConfig, MulticoreSim, SimResult};
use mps_stats::rng::Rng;
use mps_uncore::{PolicyKind, Uncore, UncoreConfig};
use mps_workloads::{suite, BenchmarkSpec, TraceSource};

use std::collections::HashMap;
use std::sync::Arc;
/// LLC capacity divisor used by all experiments (see
/// [`UncoreConfig::ispass2013_scaled`]): reproduction traces are 10³–10⁴×
/// shorter than the paper's 100 M instructions, so cache capacity scales
/// down with them to preserve working-set-to-cache ratios.
pub const CAPACITY_SCALE: u64 = 16;

/// The capacity-scaled Table II uncore used throughout the experiments.
pub fn experiment_uncore(cores: usize, policy: PolicyKind) -> UncoreConfig {
    UncoreConfig::ispass2013_scaled(cores, policy, CAPACITY_SCALE)
}

/// Hit/rebuild statistics for the [`StudyContext`] memoized artifacts.
///
/// A *hit* returns a cached artifact; a *miss* triggers the (expensive)
/// rebuild. The same figures are mirrored into the `ctx.*` observability
/// counters so they appear in `--profile` reports and `--trace` files.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StudyCacheStats {
    /// BADCO model-set cache hits (keyed by core count).
    pub model_hits: u64,
    /// BADCO model-set rebuilds.
    pub model_misses: u64,
    /// Population-table cache hits (keyed by core count).
    pub population_hits: u64,
    /// Population-table rebuilds.
    pub population_misses: u64,
    /// BADCO per-policy throughput-table cache hits.
    pub table_hits: u64,
    /// BADCO per-policy throughput-table rebuilds.
    pub table_misses: u64,
    /// BADCO single-thread reference-IPC cache hits.
    pub badco_ref_hits: u64,
    /// BADCO single-thread reference-IPC rebuilds.
    pub badco_ref_misses: u64,
    /// Detailed-simulator reference-IPC cache hits.
    pub detailed_ref_hits: u64,
    /// Detailed-simulator reference-IPC rebuilds.
    pub detailed_ref_misses: u64,
}

impl StudyCacheStats {
    /// Total hits across all artifact kinds.
    pub fn hits(&self) -> u64 {
        self.model_hits
            + self.population_hits
            + self.table_hits
            + self.badco_ref_hits
            + self.detailed_ref_hits
    }

    /// Total rebuilds across all artifact kinds.
    pub fn misses(&self) -> u64 {
        self.model_misses
            + self.population_misses
            + self.table_misses
            + self.badco_ref_misses
            + self.detailed_ref_misses
    }
}

/// Caches everything the experiments share: benchmark suite, BADCO models,
/// per-policy population throughput tables and reference IPCs.
pub struct StudyContext {
    /// The scaling preset in effect.
    pub scale: Scale,
    suite: Vec<BenchmarkSpec>,
    models: HashMap<usize, Vec<Arc<BadcoModel>>>,
    populations: HashMap<usize, Population>,
    badco_tables: HashMap<(usize, PolicyKind), Arc<PerfTable>>,
    badco_refs: HashMap<usize, Vec<f64>>,
    detailed_refs: HashMap<usize, Vec<f64>>,
    cache: StudyCacheStats,
}

impl std::fmt::Debug for StudyContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StudyContext")
            .field("scale", &self.scale)
            .field("cached_tables", &self.badco_tables.len())
            .finish_non_exhaustive()
    }
}

impl StudyContext {
    /// Creates a fresh context at the given scale.
    pub fn new(scale: Scale) -> Self {
        StudyContext {
            scale,
            suite: suite(),
            models: HashMap::new(),
            populations: HashMap::new(),
            badco_tables: HashMap::new(),
            badco_refs: HashMap::new(),
            detailed_refs: HashMap::new(),
            cache: StudyCacheStats::default(),
        }
    }

    /// Hit/rebuild statistics of the context's artifact caches so far.
    pub fn cache_stats(&self) -> StudyCacheStats {
        self.cache
    }

    /// The 22-benchmark suite.
    pub fn suite(&self) -> &[BenchmarkSpec] {
        &self.suite
    }

    /// The five paper policies.
    pub fn policies(&self) -> [PolicyKind; 5] {
        PolicyKind::PAPER_POLICIES
    }

    /// All 10 unordered policy pairs `(X, Y)` in paper order
    /// (LRU>RND, LRU>FIFO, ..., DIP>DRRIP).
    pub fn policy_pairs(&self) -> Vec<(PolicyKind, PolicyKind)> {
        let p = PolicyKind::PAPER_POLICIES;
        let mut pairs = Vec::new();
        for i in 0..p.len() {
            for j in (i + 1)..p.len() {
                pairs.push((p[i], p[j]));
            }
        }
        pairs
    }

    /// The workload population table for a core count (full for 2 cores,
    /// scale-sized subsamples for 4 and 8).
    pub fn population(&mut self, cores: usize) -> Population {
        if let Some(pop) = self.populations.get(&cores) {
            self.cache.population_hits += 1;
            mps_obs::counter("ctx.population.hits").incr();
            return pop.clone();
        }
        self.cache.population_misses += 1;
        mps_obs::counter("ctx.population.misses").incr();
        let _span = mps_obs::span("ctx.population.build");
        let scale = self.scale.clone();
        let b = 22;
        let mut rng = Rng::new(scale.seed ^ (cores as u64) << 8);
        let pop = match cores {
            2 => Population::full(b, 2),
            4 => {
                if scale.pop_4core_is_full() {
                    Population::full(b, 4)
                } else {
                    Population::subsampled(b, 4, scale.pop_4core, &mut rng)
                }
            }
            8 => Population::subsampled(b, 8, scale.pop_8core, &mut rng),
            _ => panic!("populations are defined for 2, 4 and 8 cores"),
        };
        self.populations.insert(cores, pop.clone());
        pop
    }

    /// BADCO models for every benchmark, trained with the Table II timing
    /// of the given core count.
    pub fn models(&mut self, cores: usize) -> Vec<Arc<BadcoModel>> {
        if let Some(models) = self.models.get(&cores) {
            self.cache.model_hits += 1;
            mps_obs::counter("ctx.models.hits").incr();
            return models.clone();
        }
        self.cache.model_misses += 1;
        mps_obs::counter("ctx.models.misses").incr();
        let _span = mps_obs::span("ctx.models.build");
        let timing = BadcoTiming::from_uncore(&experiment_uncore(cores, PolicyKind::Lru));
        let models: Vec<Arc<BadcoModel>> = self
            .suite
            .iter()
            .map(|b| {
                Arc::new(BadcoModel::build(
                    b.name(),
                    &CoreConfig::ispass2013(),
                    &b.trace(),
                    self.scale.trace_len,
                    timing,
                ))
            })
            .collect();
        self.models.insert(cores, models.clone());
        models
    }

    /// Single-thread reference IPCs (benchmark alone on the reference
    /// machine, LRU uncore) measured with BADCO.
    pub fn badco_reference_ipcs(&mut self, cores: usize) -> Vec<f64> {
        if let Some(r) = self.badco_refs.get(&cores) {
            self.cache.badco_ref_hits += 1;
            mps_obs::counter("ctx.badco_refs.hits").incr();
            return r.clone();
        }
        self.cache.badco_ref_misses += 1;
        mps_obs::counter("ctx.badco_refs.misses").incr();
        let _span = mps_obs::span("ctx.badco_refs.build");
        let models = self.models(cores);
        let refs: Vec<f64> = models
            .iter()
            .map(|m| {
                let uncore = Uncore::new(experiment_uncore(cores, PolicyKind::Lru), 1);
                let r = BadcoMulticoreSim::new(uncore, vec![Arc::clone(m)]).run();
                r.ipc[0]
            })
            .collect();
        self.badco_refs.insert(cores, refs.clone());
        refs
    }

    /// Single-thread reference IPCs measured with the detailed simulator.
    pub fn detailed_reference_ipcs(&mut self, cores: usize) -> Vec<f64> {
        if let Some(r) = self.detailed_refs.get(&cores) {
            self.cache.detailed_ref_hits += 1;
            mps_obs::counter("ctx.detailed_refs.hits").incr();
            return r.clone();
        }
        self.cache.detailed_ref_misses += 1;
        mps_obs::counter("ctx.detailed_refs.misses").incr();
        let _span = mps_obs::span("ctx.detailed_refs.build");
        let trace_len = self.scale.trace_len;
        let refs: Vec<f64> = self
            .suite
            .iter()
            .map(|b| {
                let uncore = Uncore::new(experiment_uncore(cores, PolicyKind::Lru), 1);
                let sim =
                    MulticoreSim::new(CoreConfig::ispass2013(), uncore, vec![Box::new(b.trace())]);
                sim.run(trace_len).ipc[0]
            })
            .collect();
        self.detailed_refs.insert(cores, refs.clone());
        refs
    }

    /// Runs one workload under one policy with BADCO; returns per-core IPC.
    pub fn badco_run(&mut self, cores: usize, policy: PolicyKind, w: &Workload) -> Vec<f64> {
        let models = self.models(cores);
        let uncore = Uncore::new(experiment_uncore(cores, policy), w.cores());
        let bound: Vec<Arc<BadcoModel>> = w
            .benchmarks()
            .iter()
            .map(|&b| Arc::clone(&models[b as usize]))
            .collect();
        BadcoMulticoreSim::new(uncore, bound).run().ipc
    }

    /// Runs one workload under one policy with the detailed simulator.
    pub fn detailed_run(&mut self, cores: usize, policy: PolicyKind, w: &Workload) -> SimResult {
        let uncore = Uncore::new(experiment_uncore(cores, policy), w.cores());
        let traces: Vec<Box<dyn TraceSource>> = w
            .benchmarks()
            .iter()
            .map(|&b| Box::new(self.suite[b as usize].trace()) as Box<dyn TraceSource>)
            .collect();
        MulticoreSim::new(CoreConfig::ispass2013(), uncore, traces).run(self.scale.trace_len)
    }

    /// The BADCO per-workload performance table of one policy over the
    /// whole population for `cores` — the expensive artifact behind
    /// Figures 3–7, computed once and cached.
    pub fn badco_table(&mut self, cores: usize, policy: PolicyKind) -> Arc<PerfTable> {
        if let Some(t) = self.badco_tables.get(&(cores, policy)) {
            self.cache.table_hits += 1;
            mps_obs::counter("ctx.badco_table.hits").incr();
            return Arc::clone(t);
        }
        self.cache.table_misses += 1;
        mps_obs::counter("ctx.badco_table.misses").incr();
        let _span = mps_obs::span("ctx.badco_table.build");
        let pop = self.population(cores);
        let refs = self.badco_reference_ipcs(cores);
        let mut table = PerfTable::new(refs);
        let workloads: Vec<Workload> = pop.workloads().to_vec();
        for w in &workloads {
            let ipcs = self.badco_run(cores, policy, w);
            table.push(WorkloadPerf::new(
                w.benchmarks().iter().map(|&b| b as usize).collect(),
                ipcs,
            ));
        }
        let table = Arc::new(table);
        self.badco_tables
            .insert((cores, policy), Arc::clone(&table));
        table
    }

    /// Detailed-simulator performance table over a list of workloads.
    pub fn detailed_table(
        &mut self,
        cores: usize,
        policy: PolicyKind,
        workloads: &[Workload],
    ) -> PerfTable {
        let refs = self.detailed_reference_ipcs(cores);
        let mut table = PerfTable::new(refs);
        for w in workloads {
            let r = self.detailed_run(cores, policy, w);
            table.push(WorkloadPerf::new(
                w.benchmarks().iter().map(|&b| b as usize).collect(),
                r.ipc,
            ));
        }
        table
    }

    /// Pair data (per-workload throughputs of X and Y) under a metric from
    /// the cached BADCO population tables.
    pub fn badco_pair_data(
        &mut self,
        cores: usize,
        x: PolicyKind,
        y: PolicyKind,
        metric: ThroughputMetric,
    ) -> PairData {
        let tx = self.badco_table(cores, x).throughputs(metric);
        let ty = self.badco_table(cores, y).throughputs(metric);
        PairData::new(metric, tx, ty)
    }

    /// A fresh deterministic RNG stream for an experiment.
    pub fn rng(&self, stream: u64) -> Rng {
        Rng::new(
            self.scale
                .seed
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(stream),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> StudyContext {
        StudyContext::new(Scale::test())
    }

    #[test]
    fn populations_have_scale_sizes() {
        let mut c = ctx();
        assert_eq!(c.population(2).len(), 253);
        assert_eq!(c.population(4).len(), Scale::test().pop_4core);
        assert_eq!(c.population(8).len(), Scale::test().pop_8core);
    }

    #[test]
    fn policy_pairs_are_ten() {
        let c = ctx();
        let pairs = c.policy_pairs();
        assert_eq!(pairs.len(), 10);
        assert_eq!(pairs[0], (PolicyKind::Lru, PolicyKind::Random));
        assert_eq!(pairs[9], (PolicyKind::Dip, PolicyKind::Drrip));
    }

    #[test]
    fn models_cover_suite_and_cache() {
        let mut c = ctx();
        let m = c.models(2);
        assert_eq!(m.len(), 22);
        let again = c.models(2);
        assert!(Arc::ptr_eq(&m[0], &again[0]), "models must be cached");
    }

    #[test]
    fn badco_table_is_cached_and_aligned() {
        let mut c = ctx();
        // Shrink further for test speed: 2-core population is 253.
        let t1 = c.badco_table(2, PolicyKind::Lru);
        let t2 = c.badco_table(2, PolicyKind::Lru);
        assert!(Arc::ptr_eq(&t1, &t2));
        assert_eq!(t1.len(), c.population(2).len());
    }

    #[test]
    fn pair_data_has_population_length() {
        let mut c = ctx();
        let d = c.badco_pair_data(
            2,
            PolicyKind::Lru,
            PolicyKind::Random,
            ThroughputMetric::WeightedSpeedup,
        );
        assert_eq!(d.len(), 253);
    }

    #[test]
    fn reference_ipcs_are_positive() {
        let mut c = ctx();
        for ipc in c.badco_reference_ipcs(2) {
            assert!(ipc > 0.0 && ipc < 4.0);
        }
    }
}

//! Shared experiment machinery: model building, population simulation and
//! result caching.
//!
//! Since the parallel-runner rework, [`StudyContext`] uses interior
//! mutability throughout: every accessor takes `&self`, the artifact
//! caches are keyed [`OnceLock`]s (so a concurrent first access builds an
//! artifact exactly once and everyone else blocks on — then shares — the
//! same value), and the expensive builds fan their independent cells out
//! over an [`mps_par`] work-stealing pool sized by [`StudyContext::jobs`].
//! Results are merged in input-index order, so every artifact is
//! bit-identical regardless of the worker count (asserted end to end by
//! `tests/thread_invariance.rs`).

use crate::scale::Scale;
use mps_badco::{BadcoModel, BadcoMulticoreSim, BadcoTiming};
use mps_metrics::{PerfTable, ThroughputMetric, WorkloadPerf};
use mps_sampling::{PairData, Population, Workload};
use mps_sim_cpu::{CoreConfig, MulticoreSim, SimResult};
use mps_stats::rng::Rng;
use mps_uncore::{PolicyKind, Uncore, UncoreConfig};
use mps_workloads::{suite, BenchmarkSpec, TraceBuffer, TraceCursor, TraceSource};

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// LLC capacity divisor used by all experiments (see
/// [`UncoreConfig::ispass2013_scaled`]): reproduction traces are 10³–10⁴×
/// shorter than the paper's 100 M instructions, so cache capacity scales
/// down with them to preserve working-set-to-cache ratios.
pub const CAPACITY_SCALE: u64 = 16;

/// The capacity-scaled Table II uncore used throughout the experiments.
pub fn experiment_uncore(cores: usize, policy: PolicyKind) -> UncoreConfig {
    UncoreConfig::ispass2013_scaled(cores, policy, CAPACITY_SCALE)
}

/// Hit/rebuild statistics for the [`StudyContext`] memoized artifacts.
///
/// A *hit* returns a cached artifact; a *miss* triggers the (expensive)
/// rebuild. Accounting is atomic-consistent under concurrency: when
/// several threads race on the first access to a key, exactly one miss is
/// recorded (the thread that built) and every other thread records a hit,
/// so `hits + misses` always equals the number of accesses. The same
/// figures are mirrored into the `ctx.*` observability counters so they
/// appear in `--profile` reports and `--trace` files.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StudyCacheStats {
    /// BADCO model-set cache hits (keyed by core count).
    pub model_hits: u64,
    /// BADCO model-set rebuilds.
    pub model_misses: u64,
    /// Population-table cache hits (keyed by core count).
    pub population_hits: u64,
    /// Population-table rebuilds.
    pub population_misses: u64,
    /// BADCO per-policy throughput-table cache hits.
    pub table_hits: u64,
    /// BADCO per-policy throughput-table rebuilds.
    pub table_misses: u64,
    /// BADCO single-thread reference-IPC cache hits.
    pub badco_ref_hits: u64,
    /// BADCO single-thread reference-IPC rebuilds.
    pub badco_ref_misses: u64,
    /// Detailed-simulator reference-IPC cache hits.
    pub detailed_ref_hits: u64,
    /// Detailed-simulator reference-IPC rebuilds.
    pub detailed_ref_misses: u64,
    /// Per-benchmark SoA trace-buffer cache hits.
    pub trace_hits: u64,
    /// Per-benchmark SoA trace-buffer captures (one per benchmark used).
    pub trace_misses: u64,
}

impl StudyCacheStats {
    /// Total hits across all artifact kinds.
    pub fn hits(&self) -> u64 {
        self.model_hits
            + self.population_hits
            + self.table_hits
            + self.badco_ref_hits
            + self.detailed_ref_hits
            + self.trace_hits
    }

    /// Total rebuilds across all artifact kinds.
    pub fn misses(&self) -> u64 {
        self.model_misses
            + self.population_misses
            + self.table_misses
            + self.badco_ref_misses
            + self.detailed_ref_misses
            + self.trace_misses
    }
}

/// One keyed artifact cache: build-once semantics per key with exact
/// hit/miss accounting under concurrent access.
///
/// The map guards only the *cells* (cheap to lock); each cell is an
/// [`OnceLock`], so a rebuild runs outside the map lock and concurrent
/// first-accessors of the same key block on the winning builder instead
/// of duplicating its work.
struct ArtifactCache<K, V> {
    map: Mutex<HashMap<K, Arc<OnceLock<V>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    hit_counter: mps_obs::Counter,
    miss_counter: mps_obs::Counter,
    build_span: &'static str,
}

impl<K: Eq + Hash, V: Clone> ArtifactCache<K, V> {
    fn new(hit_name: &'static str, miss_name: &'static str, build_span: &'static str) -> Self {
        ArtifactCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            hit_counter: mps_obs::counter(hit_name),
            miss_counter: mps_obs::counter(miss_name),
            build_span,
        }
    }

    /// Returns the artifact for `key`, building it with `build` on the
    /// first access. Exactly one caller per key ever runs `build`; that
    /// caller records the miss, all others record hits.
    fn get_or_build(&self, key: K, build: impl FnOnce() -> V) -> V {
        let cell = {
            let mut map = self
                .map
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            Arc::clone(map.entry(key).or_default())
        };
        let mut built = false;
        let v = cell
            .get_or_init(|| {
                built = true;
                let _span = mps_obs::span(self.build_span);
                build()
            })
            .clone();
        if built {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.miss_counter.incr();
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.hit_counter.incr();
        }
        v
    }

    fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Caches everything the experiments share: benchmark suite, BADCO models,
/// per-policy population throughput tables and reference IPCs.
///
/// All accessors take `&self` and the context is `Sync`, so a single
/// instance can be shared across threads; internally the expensive builds
/// run on an [`mps_par`] pool of [`StudyContext::jobs`] workers.
pub struct StudyContext {
    /// The scaling preset in effect.
    pub scale: Scale,
    jobs: usize,
    suite: Vec<BenchmarkSpec>,
    models: ArtifactCache<usize, Vec<Arc<BadcoModel>>>,
    populations: ArtifactCache<usize, Population>,
    badco_tables: ArtifactCache<(usize, PolicyKind), Arc<PerfTable>>,
    badco_refs: ArtifactCache<usize, Vec<f64>>,
    detailed_refs: ArtifactCache<usize, Vec<f64>>,
    /// Per-benchmark SoA trace buffers (`scale.trace_len` µops each),
    /// keyed by suite index. Every consumer of a benchmark's µop stream —
    /// BADCO training, reference runs, detailed workload runs — replays
    /// the one memoized buffer through a cheap [`TraceCursor`] instead of
    /// re-running the synthetic generator µop by µop.
    traces: ArtifactCache<usize, Arc<TraceBuffer>>,
}

impl std::fmt::Debug for StudyContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StudyContext")
            .field("scale", &self.scale)
            .field("jobs", &self.jobs)
            .finish_non_exhaustive()
    }
}

impl StudyContext {
    /// Creates a fresh context at the given scale, with the worker count
    /// resolved from the environment (`MPS_JOBS`, else the machine's
    /// available parallelism).
    pub fn new(scale: Scale) -> Self {
        Self::with_jobs(scale, mps_par::default_jobs())
    }

    /// Creates a fresh context with an explicit worker count (the harness
    /// `--jobs` flag; tests use it to prove thread invariance).
    pub fn with_jobs(scale: Scale, jobs: usize) -> Self {
        StudyContext {
            scale,
            jobs: jobs.max(1),
            suite: suite(),
            models: ArtifactCache::new("ctx.models.hits", "ctx.models.misses", "ctx.models.build"),
            populations: ArtifactCache::new(
                "ctx.population.hits",
                "ctx.population.misses",
                "ctx.population.build",
            ),
            badco_tables: ArtifactCache::new(
                "ctx.badco_table.hits",
                "ctx.badco_table.misses",
                "ctx.badco_table.build",
            ),
            badco_refs: ArtifactCache::new(
                "ctx.badco_refs.hits",
                "ctx.badco_refs.misses",
                "ctx.badco_refs.build",
            ),
            detailed_refs: ArtifactCache::new(
                "ctx.detailed_refs.hits",
                "ctx.detailed_refs.misses",
                "ctx.detailed_refs.build",
            ),
            traces: ArtifactCache::new("ctx.traces.hits", "ctx.traces.misses", "ctx.traces.build"),
        }
    }

    /// Worker threads used for parallel artifact builds and resampling.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Hit/rebuild statistics of the context's artifact caches so far.
    pub fn cache_stats(&self) -> StudyCacheStats {
        StudyCacheStats {
            model_hits: self.models.hits(),
            model_misses: self.models.misses(),
            population_hits: self.populations.hits(),
            population_misses: self.populations.misses(),
            table_hits: self.badco_tables.hits(),
            table_misses: self.badco_tables.misses(),
            badco_ref_hits: self.badco_refs.hits(),
            badco_ref_misses: self.badco_refs.misses(),
            detailed_ref_hits: self.detailed_refs.hits(),
            detailed_ref_misses: self.detailed_refs.misses(),
            trace_hits: self.traces.hits(),
            trace_misses: self.traces.misses(),
        }
    }

    /// The memoized SoA trace buffer of suite benchmark `bench`, captured
    /// on first use. The buffer holds exactly `scale.trace_len` µops —
    /// the detailed core's thread-restart period and BADCO's training
    /// slice — so a cycling [`TraceCursor`] over it is stream-identical
    /// to the benchmark's generator under the restart rule.
    pub fn trace_buffer(&self, bench: usize) -> Arc<TraceBuffer> {
        self.traces.get_or_build(bench, || {
            let mut source = self.suite[bench].trace();
            Arc::new(TraceBuffer::capture(&mut source, self.scale.trace_len))
        })
    }

    /// A fresh replay cursor (positioned at µop 0) over
    /// [`Self::trace_buffer`].
    pub fn trace_cursor(&self, bench: usize) -> TraceCursor {
        self.trace_buffer(bench).cursor()
    }

    /// The 22-benchmark suite.
    pub fn suite(&self) -> &[BenchmarkSpec] {
        &self.suite
    }

    /// The five paper policies.
    pub fn policies(&self) -> [PolicyKind; 5] {
        PolicyKind::PAPER_POLICIES
    }

    /// All 10 unordered policy pairs `(X, Y)` in paper order
    /// (LRU>RND, LRU>FIFO, ..., DIP>DRRIP).
    pub fn policy_pairs(&self) -> Vec<(PolicyKind, PolicyKind)> {
        let p = PolicyKind::PAPER_POLICIES;
        let mut pairs = Vec::new();
        for i in 0..p.len() {
            for j in (i + 1)..p.len() {
                pairs.push((p[i], p[j]));
            }
        }
        pairs
    }

    /// The workload population table for a core count (full for 2 cores,
    /// scale-sized subsamples for 4 and 8).
    pub fn population(&self, cores: usize) -> Population {
        self.populations.get_or_build(cores, || {
            let scale = &self.scale;
            let b = 22;
            let mut rng = Rng::new(scale.seed ^ (cores as u64) << 8);
            match cores {
                2 => Population::full(b, 2),
                4 => {
                    if scale.pop_4core_is_full() {
                        Population::full(b, 4)
                    } else {
                        Population::subsampled(b, 4, scale.pop_4core, &mut rng)
                    }
                }
                8 => Population::subsampled(b, 8, scale.pop_8core, &mut rng),
                _ => panic!("populations are defined for 2, 4 and 8 cores"),
            }
        })
    }

    /// BADCO models for every benchmark, trained with the Table II timing
    /// of the given core count. The per-benchmark ideal/pessimal training
    /// runs are independent, so they fan out over the worker pool.
    pub fn models(&self, cores: usize) -> Vec<Arc<BadcoModel>> {
        self.models.get_or_build(cores, || {
            let timing = BadcoTiming::from_uncore(&experiment_uncore(cores, PolicyKind::Lru));
            let trace_len = self.scale.trace_len;
            mps_par::par_map_indexed(self.jobs, &self.suite, |i, b| {
                Arc::new(BadcoModel::build(
                    b.name(),
                    &CoreConfig::ispass2013(),
                    &self.trace_cursor(i),
                    trace_len,
                    timing,
                ))
            })
        })
    }

    /// Single-thread reference IPCs (benchmark alone on the reference
    /// machine, LRU uncore) measured with BADCO.
    pub fn badco_reference_ipcs(&self, cores: usize) -> Vec<f64> {
        self.badco_refs.get_or_build(cores, || {
            let models = self.models(cores);
            mps_par::par_map_indexed(self.jobs, &models, |_, m| {
                let uncore = Uncore::new(experiment_uncore(cores, PolicyKind::Lru), 1);
                let r = BadcoMulticoreSim::new(uncore, vec![Arc::clone(m)]).run();
                r.ipc[0]
            })
        })
    }

    /// Single-thread reference IPCs measured with the detailed simulator.
    pub fn detailed_reference_ipcs(&self, cores: usize) -> Vec<f64> {
        self.detailed_refs.get_or_build(cores, || {
            let trace_len = self.scale.trace_len;
            mps_par::par_map_indexed(self.jobs, &self.suite, |i, _| {
                let uncore = Uncore::new(experiment_uncore(cores, PolicyKind::Lru), 1);
                let sim = MulticoreSim::new(
                    CoreConfig::ispass2013(),
                    uncore,
                    vec![Box::new(self.trace_cursor(i))],
                );
                sim.run(trace_len).ipc[0]
            })
        })
    }

    /// Runs one workload under one policy with BADCO; returns per-core IPC.
    pub fn badco_run(&self, cores: usize, policy: PolicyKind, w: &Workload) -> Vec<f64> {
        let models = self.models(cores);
        Self::badco_run_with(&models, cores, policy, w)
    }

    /// [`Self::badco_run`] against an already-fetched model set (the
    /// per-workload cell of the parallel table build, which prefetches the
    /// models once instead of taking the cache lock from every worker).
    fn badco_run_with(
        models: &[Arc<BadcoModel>],
        cores: usize,
        policy: PolicyKind,
        w: &Workload,
    ) -> Vec<f64> {
        let uncore = Uncore::new(experiment_uncore(cores, policy), w.cores());
        let bound: Vec<Arc<BadcoModel>> = w
            .benchmarks()
            .iter()
            .map(|&b| Arc::clone(&models[b as usize]))
            .collect();
        BadcoMulticoreSim::new(uncore, bound).run().ipc
    }

    /// Runs one workload under one policy with the detailed simulator.
    pub fn detailed_run(&self, cores: usize, policy: PolicyKind, w: &Workload) -> SimResult {
        let uncore = Uncore::new(experiment_uncore(cores, policy), w.cores());
        let traces: Vec<Box<dyn TraceSource>> = w
            .benchmarks()
            .iter()
            .map(|&b| Box::new(self.trace_cursor(b as usize)) as Box<dyn TraceSource>)
            .collect();
        MulticoreSim::new(CoreConfig::ispass2013(), uncore, traces).run(self.scale.trace_len)
    }

    /// The BADCO per-workload performance table of one policy over the
    /// whole population for `cores` — the expensive artifact behind
    /// Figures 3–7, computed once and cached. Each `(policy, workload)`
    /// cell is an independent simulation, so the grid fans out over the
    /// worker pool; rows are merged in population order, keeping the
    /// table bit-identical for every `jobs` value.
    pub fn badco_table(&self, cores: usize, policy: PolicyKind) -> Arc<PerfTable> {
        self.badco_tables.get_or_build((cores, policy), || {
            let pop = self.population(cores);
            let refs = self.badco_reference_ipcs(cores);
            let models = self.models(cores);
            let workloads: Vec<Workload> = pop.workloads().to_vec();
            let rows = mps_par::par_map_indexed(self.jobs, &workloads, |_, w| {
                Self::badco_run_with(&models, cores, policy, w)
            });
            let mut table = PerfTable::new(refs);
            for (w, ipcs) in workloads.iter().zip(rows) {
                table.push(WorkloadPerf::new(
                    w.benchmarks().iter().map(|&b| b as usize).collect(),
                    ipcs,
                ));
            }
            Arc::new(table)
        })
    }

    /// Detailed-simulator performance table over a list of workloads,
    /// one independent simulation per workload, fanned out like
    /// [`Self::badco_table`].
    pub fn detailed_table(
        &self,
        cores: usize,
        policy: PolicyKind,
        workloads: &[Workload],
    ) -> PerfTable {
        let refs = self.detailed_reference_ipcs(cores);
        let rows = mps_par::par_map_indexed(self.jobs, workloads, |_, w| {
            self.detailed_run(cores, policy, w).ipc
        });
        let mut table = PerfTable::new(refs);
        for (w, ipc) in workloads.iter().zip(rows) {
            table.push(WorkloadPerf::new(
                w.benchmarks().iter().map(|&b| b as usize).collect(),
                ipc,
            ));
        }
        table
    }

    /// Pair data (per-workload throughputs of X and Y) under a metric from
    /// the cached BADCO population tables.
    pub fn badco_pair_data(
        &self,
        cores: usize,
        x: PolicyKind,
        y: PolicyKind,
        metric: ThroughputMetric,
    ) -> PairData {
        let tx = self.badco_table(cores, x).throughputs(metric);
        let ty = self.badco_table(cores, y).throughputs(metric);
        PairData::new(metric, tx, ty)
    }

    /// A fresh deterministic RNG stream for an experiment.
    pub fn rng(&self, stream: u64) -> Rng {
        Rng::new(
            self.scale
                .seed
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(stream),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> StudyContext {
        StudyContext::new(Scale::test())
    }

    #[test]
    fn populations_have_scale_sizes() {
        let c = ctx();
        assert_eq!(c.population(2).len(), 253);
        assert_eq!(c.population(4).len(), Scale::test().pop_4core);
        assert_eq!(c.population(8).len(), Scale::test().pop_8core);
    }

    #[test]
    fn policy_pairs_are_ten() {
        let c = ctx();
        let pairs = c.policy_pairs();
        assert_eq!(pairs.len(), 10);
        assert_eq!(pairs[0], (PolicyKind::Lru, PolicyKind::Random));
        assert_eq!(pairs[9], (PolicyKind::Dip, PolicyKind::Drrip));
    }

    #[test]
    fn models_cover_suite_and_cache() {
        let c = ctx();
        let m = c.models(2);
        assert_eq!(m.len(), 22);
        let again = c.models(2);
        assert!(Arc::ptr_eq(&m[0], &again[0]), "models must be cached");
    }

    #[test]
    fn badco_table_is_cached_and_aligned() {
        let c = ctx();
        // Shrink further for test speed: 2-core population is 253.
        let t1 = c.badco_table(2, PolicyKind::Lru);
        let t2 = c.badco_table(2, PolicyKind::Lru);
        assert!(Arc::ptr_eq(&t1, &t2));
        assert_eq!(t1.len(), c.population(2).len());
    }

    #[test]
    fn pair_data_has_population_length() {
        let c = ctx();
        let d = c.badco_pair_data(
            2,
            PolicyKind::Lru,
            PolicyKind::Random,
            ThroughputMetric::WeightedSpeedup,
        );
        assert_eq!(d.len(), 253);
    }

    #[test]
    fn reference_ipcs_are_positive() {
        let c = ctx();
        for ipc in c.badco_reference_ipcs(2) {
            assert!(ipc > 0.0 && ipc < 4.0);
        }
    }

    #[test]
    fn tables_are_jobs_invariant() {
        // The same table built with 1 and 4 workers must be bit-identical.
        let t1 = StudyContext::with_jobs(Scale::test(), 1)
            .badco_table(2, PolicyKind::Drrip)
            .throughputs(ThroughputMetric::IpcThroughput);
        let t4 = StudyContext::with_jobs(Scale::test(), 4)
            .badco_table(2, PolicyKind::Drrip)
            .throughputs(ThroughputMetric::IpcThroughput);
        assert_eq!(t1, t4);
    }

    #[test]
    fn concurrent_first_access_builds_once() {
        // Eight threads race on the same cold artifact: the cache must
        // rebuild exactly once and account exactly one miss, with every
        // other access a hit (hits + misses == accesses).
        let c = StudyContext::with_jobs(Scale::test(), 2);
        let threads = 8;
        let tables: Vec<Arc<PerfTable>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| s.spawn(|| c.badco_table(2, PolicyKind::Fifo)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panics"))
                .collect()
        });
        for t in &tables[1..] {
            assert!(
                Arc::ptr_eq(&tables[0], t),
                "all threads must share one build"
            );
        }
        let stats = c.cache_stats();
        assert_eq!(stats.table_misses, 1, "exactly one rebuild: {stats:?}");
        assert_eq!(
            stats.table_hits,
            threads as u64 - 1,
            "every other access is a hit: {stats:?}"
        );
    }
}

//! Live convergence diagnostics for the resampling experiments.
//!
//! The paper's §VII guideline rests on the coefficient of variation `cv`
//! of the per-workload throughput difference `d(w)`: from it follow the
//! required random-sample size `W = 8·cv²` (equation (8)) and the degree
//! of confidence `Pr(D≥0) = ½[1+erf((1/cv)·√(W/2))]` (equation (5)). A
//! [`ConvergenceProbe`] wraps one `mps-obs` estimator per experiment
//! panel, feeds it the pair's differences once, and — per evaluated grid
//! cell — emits a `convergence` JSONL event carrying the running
//! diagnostics alongside the cell's sampler and sample size, so a live
//! scrape (`/metrics` `mps_estimator_*` rows) and an offline trace read
//! report the same numbers. With the `obs` feature off everything here is
//! inert and the probe costs nothing.

use mps_stats::confidence::{degree_of_confidence, required_sample_size};
use std::collections::HashMap;
use std::sync::Mutex;

/// Interns a dynamically composed name, returning a `'static` reference
/// the `mps-obs` registry can key on. Memoized: the same string leaks at
/// most once per process, and the estimator grid is small (one entry per
/// experiment panel), so the table stays tiny.
pub fn intern(name: String) -> &'static str {
    static TABLE: Mutex<Option<HashMap<String, &'static str>>> = Mutex::new(None);
    let mut guard = match TABLE.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    let table = guard.get_or_insert_with(HashMap::new);
    if let Some(&s) = table.get(&name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.clone().into_boxed_str());
    table.insert(name, leaked);
    leaked
}

/// Streaming §VII diagnostics for one experiment panel (one policy pair
/// or one figure series).
#[derive(Debug, Clone, Copy)]
pub struct ConvergenceProbe {
    experiment: &'static str,
    label: &'static str,
    est: mps_obs::Estimator,
}

impl ConvergenceProbe {
    /// Creates (or re-attaches to) the estimator
    /// `convergence.{experiment}.{label}` and feeds it the per-workload
    /// differences `d(w)` — only when the estimator is still empty, so
    /// repeated runs in one process (tests, cached experiment replays)
    /// stay idempotent.
    pub fn new(experiment: &'static str, label: &str, differences: &[f64]) -> Self {
        let label = intern(label.to_owned());
        let est = mps_obs::estimator(intern(format!("convergence.{experiment}.{label}")));
        if est.count() == 0 {
            est.record_many(differences);
        }
        ConvergenceProbe {
            experiment,
            label,
            est,
        }
    }

    /// The underlying estimator handle (for tests and the ledger).
    pub fn estimator(&self) -> mps_obs::Estimator {
        self.est
    }

    /// Reports one evaluated grid cell: emits a `convergence` JSONL event
    /// with the running diagnostics evaluated *at the cell's sample size
    /// `w`* (that is what equation (5) asks: the confidence an architect
    /// gets from drawing `w` workloads given the observed `cv`), and
    /// refreshes the `convergence.cv_permille` gauge the heartbeat line
    /// shows. `samples` is the number of Monte-Carlo resamples the cell
    /// averaged over — context, not part of the formulas.
    pub fn cell(&self, sampler: &str, w: usize, samples: usize) {
        if !mps_obs::enabled() {
            return;
        }
        let c = self.est.convergence();
        let confidence = degree_of_confidence(c.cv, w);
        let required_w = required_sample_size(c.cv);
        mps_obs::event(
            "convergence",
            &[
                ("experiment", self.experiment.to_owned()),
                ("label", self.label.to_owned()),
                ("sampler", sampler.to_owned()),
                ("w", w.to_string()),
                ("required_w", required_w.to_string()),
                ("samples", samples.to_string()),
                ("n", c.count.to_string()),
                ("mean", format!("{}", c.mean)),
                ("cv", format!("{}", c.cv)),
                ("confidence", format!("{confidence}")),
            ],
        );
        if c.cv.is_finite() {
            mps_obs::gauge("convergence.cv_permille").set((c.cv.abs() * 1000.0) as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_memoized_and_stable() {
        let a = intern("test.convergence.intern".to_owned());
        let b = intern("test.convergence.intern".to_owned());
        assert!(std::ptr::eq(a, b), "same allocation for the same name");
        assert_eq!(a, "test.convergence.intern");
    }

    #[test]
    fn probe_feeds_differences_once() {
        if !mps_obs::enabled() {
            return; // inert without the feature: nothing to assert
        }
        let diffs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]; // cv = 0.4
        let p = ConvergenceProbe::new("testprobe", "p0", &diffs);
        assert_eq!(p.estimator().count(), 8);
        // Re-creating the probe (a repeated experiment in one process)
        // must not double-count the stream.
        let p2 = ConvergenceProbe::new("testprobe", "p0", &diffs);
        assert_eq!(p2.estimator().count(), 8);
        let c = p2.estimator().convergence();
        assert!((c.cv - 0.4).abs() < 1e-12);
        assert_eq!(c.required_w, 2);
        p2.cell("random", 8, 100); // exercises the event path
    }
}

//! `mps-harness` — regenerate the paper's tables and figures.
//!
//! ```text
//! mps-harness <experiment> [--scale test|small|full] [--out DIR]
//!                          [--jobs N] [--profile] [--trace FILE]
//!
//! experiments:
//!   table1 table2 table3 table4
//!   fig1 fig2 fig3 fig4 fig5 fig6 fig7
//!   overhead   — the §VII-A CPU-hours example
//!   guideline  — §VII decisions for every policy pair
//!   energy     — per-policy energy (the "why detailed simulation" motivation)
//!   ablation   — stratification parameter / allocation / clustering sweep
//!   dw         — d(w) distribution histograms (the stratification input)
//!   profile    — run the representative pipeline and print the per-phase
//!                profile report (see docs/observability.md)
//!   all        — every experiment, in paper order
//!
//! --out DIR writes each report as DIR/<name>.txt plus DIR/<name>.csv
//! where the report has tabular data.
//! --jobs N sets the worker-thread count for parallel simulation grids.
//! N = 0 means "auto": the MPS_JOBS environment variable, else all
//! available cores (the same default as omitting the flag). Results are
//! bit-identical for every N.
//! --profile appends the profile pipeline + report after the experiments.
//! --trace FILE streams structured JSONL span/event records to FILE
//! (equivalent to MPS_OBS_OUT=FILE). Both need the `obs` feature (on by
//! default).
//! ```

use mps_harness::experiments as exp;
use mps_harness::export::CsvExport;
use mps_harness::{Scale, StudyContext};
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut scale = Scale::small();
    let mut out: Option<PathBuf> = None;
    let mut profile = false;
    let mut jobs: Option<usize> = None;
    let mut i = 0;
    mps_obs::init_from_env();
    while i < args.len() {
        match args[i].as_str() {
            "--profile" => profile = true,
            "--jobs" => {
                i += 1;
                let n = args.get(i).map(String::as_str).unwrap_or("");
                match n.parse::<usize>() {
                    // 0 means "auto": resolve from MPS_JOBS, else all
                    // available cores — same as omitting the flag.
                    Ok(0) => jobs = None,
                    Ok(n) => jobs = Some(n),
                    Err(_) => {
                        eprintln!("--jobs needs a non-negative integer (got '{n}'; 0 = auto)");
                        std::process::exit(2);
                    }
                }
            }
            "--trace" => {
                i += 1;
                let file = args.get(i).map(String::as_str).unwrap_or("");
                if file.is_empty() {
                    eprintln!("--trace needs a file path");
                    std::process::exit(2);
                }
                if !mps_obs::enabled() {
                    eprintln!("note: built without the `obs` feature; --trace will record nothing");
                }
                if let Err(e) = mps_obs::set_sink_path(file) {
                    eprintln!("cannot open trace file {file}: {e}");
                    std::process::exit(1);
                }
            }
            "--scale" => {
                i += 1;
                let name = args.get(i).map(String::as_str).unwrap_or("");
                scale = Scale::parse(name).unwrap_or_else(|| {
                    eprintln!("unknown scale '{name}' (use test|small|full)");
                    std::process::exit(2);
                });
            }
            "--out" => {
                i += 1;
                let dir = args.get(i).map(String::as_str).unwrap_or("");
                if dir.is_empty() {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                }
                out = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: mps-harness <table1..table4|fig1..fig7|overhead|guideline|ablation|profile|all> \
                     [--scale test|small|full] [--out DIR] [--jobs N] [--profile] [--trace FILE]\n\
                     --jobs 0 (or omitting the flag) means auto: MPS_JOBS, else all available cores"
                );
                return;
            }
            other => which.push(other.to_owned()),
        }
        i += 1;
    }
    if which.is_empty() {
        which.push("all".to_owned());
    }
    let all = [
        "table1",
        "table2",
        "table3",
        "table4",
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "overhead",
        "guideline",
        "ablation",
        "energy",
        "dw",
    ];
    // Experiment names come from the static list so each can also name a
    // `phase.<experiment>` observability span (which wants 'static strs).
    let selected: Vec<&'static str> = if which.iter().any(|w| w == "all") {
        all.to_vec()
    } else {
        which
            .iter()
            .filter_map(|w| {
                if w == "profile" {
                    profile = true;
                    return None;
                }
                match all.iter().find(|a| *a == w) {
                    Some(&a) => Some(a),
                    None => {
                        eprintln!("unknown experiment '{w}'");
                        std::process::exit(2);
                    }
                }
            })
            .collect()
    };
    if let Some(dir) = &out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir:?}: {e}");
            std::process::exit(1);
        }
    }

    let jobs = mps_par::resolve_jobs(jobs);
    let ctx = StudyContext::with_jobs(scale.clone(), jobs);
    mps_obs::event(
        "harness.start",
        &[
            ("trace_len", scale.trace_len.to_string()),
            ("pop_4core", scale.pop_4core.to_string()),
            ("confidence_samples", scale.confidence_samples.to_string()),
            ("jobs", jobs.to_string()),
        ],
    );
    let mut speeds: Option<exp::SpeedReport> = None;
    for name in selected {
        let t0 = Instant::now();
        let span = mps_obs::span(name);
        mps_obs::event("harness.experiment.start", &[("name", name.to_string())]);
        let (text, csv): (String, Option<String>) = match name {
            "table1" => (exp::table1(), None),
            "table2" => (exp::table2(), None),
            "table3" => {
                let r = exp::table3(&ctx);
                let pair = (r.to_string(), Some(r.csv()));
                speeds = Some(r);
                pair
            }
            "table4" => {
                let r = exp::table4(&ctx);
                (r.to_string(), Some(r.csv()))
            }
            "fig1" => {
                let r = exp::fig1();
                (r.to_string(), Some(r.csv()))
            }
            "fig2" => {
                let r = exp::fig2(&ctx);
                (r.to_string(), Some(r.csv()))
            }
            "fig3" => {
                let r = exp::fig3(&ctx);
                (r.to_string(), Some(r.csv()))
            }
            "fig4" => {
                let r = exp::fig4(&ctx);
                (r.to_string(), Some(r.csv()))
            }
            "fig5" => {
                let r = exp::fig5(&ctx);
                (r.to_string(), Some(r.csv()))
            }
            "fig6" => {
                let r = exp::fig6(&ctx);
                (r.to_string(), Some(r.csv()))
            }
            "fig7" => {
                let r = exp::fig7(&ctx);
                (r.to_string(), Some(r.csv()))
            }
            "dw" => {
                let r = exp::dw(&ctx);
                (r.to_string(), None)
            }
            "energy" => {
                let r = exp::energy(&ctx);
                (r.to_string(), None)
            }
            "guideline" => {
                let r = exp::guideline(&ctx);
                (r.to_string(), Some(r.csv()))
            }
            "ablation" => {
                let r = exp::ablation(&ctx);
                (r.to_string(), Some(r.csv()))
            }
            "overhead" => {
                let s = match &speeds {
                    Some(s) => s.clone(),
                    None => {
                        let s = exp::table3(&ctx);
                        speeds = Some(s.clone());
                        s
                    }
                };
                (exp::overhead(&ctx, &s).to_string(), None)
            }
            _ => unreachable!("validated above"),
        };
        print!("{text}");
        if let Some(dir) = &out {
            if let Err(e) = std::fs::write(dir.join(format!("{name}.txt")), &text) {
                eprintln!("write failed: {e}");
                std::process::exit(1);
            }
            if let Some(c) = csv {
                if let Err(e) = std::fs::write(dir.join(format!("{name}.csv")), c) {
                    eprintln!("write failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        span.finish();
        mps_obs::event(
            "harness.experiment.done",
            &[
                ("name", name.to_string()),
                ("wall_ms", t0.elapsed().as_millis().to_string()),
            ],
        );
        println!();
    }

    if profile {
        let report = exp::profile(&ctx);
        let text = report.to_string();
        print!("{text}");
        if let Some(dir) = &out {
            if let Err(e) = std::fs::write(dir.join("profile.txt"), &text) {
                eprintln!("write failed: {e}");
                std::process::exit(1);
            }
        }
    }
    mps_obs::flush();
}

//! `mps-harness` — regenerate the paper's tables and figures.
//!
//! ```text
//! mps-harness <experiment> [--scale test|small|full] [--out DIR]
//!
//! experiments:
//!   table1 table2 table3 table4
//!   fig1 fig2 fig3 fig4 fig5 fig6 fig7
//!   overhead   — the §VII-A CPU-hours example
//!   guideline  — §VII decisions for every policy pair
//!   energy     — per-policy energy (the "why detailed simulation" motivation)
//!   ablation   — stratification parameter / allocation / clustering sweep
//!   dw         — d(w) distribution histograms (the stratification input)
//!   all        — every experiment, in paper order
//!
//! --out DIR writes each report as DIR/<name>.txt plus DIR/<name>.csv
//! where the report has tabular data.
//! ```

use mps_harness::experiments as exp;
use mps_harness::export::CsvExport;
use mps_harness::{Scale, StudyContext};
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut scale = Scale::small();
    let mut out: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let name = args.get(i).map(String::as_str).unwrap_or("");
                scale = Scale::parse(name).unwrap_or_else(|| {
                    eprintln!("unknown scale '{name}' (use test|small|full)");
                    std::process::exit(2);
                });
            }
            "--out" => {
                i += 1;
                let dir = args.get(i).map(String::as_str).unwrap_or("");
                if dir.is_empty() {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                }
                out = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: mps-harness <table1..table4|fig1..fig7|overhead|guideline|ablation|all> \
                     [--scale test|small|full] [--out DIR]"
                );
                return;
            }
            other => which.push(other.to_owned()),
        }
        i += 1;
    }
    if which.is_empty() {
        which.push("all".to_owned());
    }
    let all = [
        "table1", "table2", "table3", "table4", "fig1", "fig2", "fig3", "fig4", "fig5",
        "fig6", "fig7", "overhead", "guideline", "ablation", "energy", "dw",
    ];
    let selected: Vec<&str> = if which.iter().any(|w| w == "all") {
        all.to_vec()
    } else {
        which.iter().map(String::as_str).collect()
    };
    for s in &selected {
        if !all.contains(s) {
            eprintln!("unknown experiment '{s}'");
            std::process::exit(2);
        }
    }
    if let Some(dir) = &out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir:?}: {e}");
            std::process::exit(1);
        }
    }

    let mut ctx = StudyContext::new(scale.clone());
    eprintln!(
        "# scale: trace_len={} pop4={} samples={}",
        scale.trace_len, scale.pop_4core, scale.confidence_samples
    );
    let mut speeds: Option<exp::SpeedReport> = None;
    for name in selected {
        let t0 = Instant::now();
        eprintln!("# running {name} ...");
        let (text, csv): (String, Option<String>) = match name {
            "table1" => (exp::table1(), None),
            "table2" => (exp::table2(), None),
            "table3" => {
                let r = exp::table3(&mut ctx);
                let pair = (r.to_string(), Some(r.csv()));
                speeds = Some(r);
                pair
            }
            "table4" => {
                let r = exp::table4(&mut ctx);
                (r.to_string(), Some(r.csv()))
            }
            "fig1" => {
                let r = exp::fig1();
                (r.to_string(), Some(r.csv()))
            }
            "fig2" => {
                let r = exp::fig2(&mut ctx);
                (r.to_string(), Some(r.csv()))
            }
            "fig3" => {
                let r = exp::fig3(&mut ctx);
                (r.to_string(), Some(r.csv()))
            }
            "fig4" => {
                let r = exp::fig4(&mut ctx);
                (r.to_string(), Some(r.csv()))
            }
            "fig5" => {
                let r = exp::fig5(&mut ctx);
                (r.to_string(), Some(r.csv()))
            }
            "fig6" => {
                let r = exp::fig6(&mut ctx);
                (r.to_string(), Some(r.csv()))
            }
            "fig7" => {
                let r = exp::fig7(&mut ctx);
                (r.to_string(), Some(r.csv()))
            }
            "dw" => {
                let r = exp::dw(&mut ctx);
                (r.to_string(), None)
            }
            "energy" => {
                let r = exp::energy(&mut ctx);
                (r.to_string(), None)
            }
            "guideline" => {
                let r = exp::guideline(&mut ctx);
                (r.to_string(), Some(r.csv()))
            }
            "ablation" => {
                let r = exp::ablation(&mut ctx);
                (r.to_string(), Some(r.csv()))
            }
            "overhead" => {
                let s = match &speeds {
                    Some(s) => s.clone(),
                    None => {
                        let s = exp::table3(&mut ctx);
                        speeds = Some(s.clone());
                        s
                    }
                };
                (exp::overhead(&mut ctx, &s).to_string(), None)
            }
            _ => unreachable!("validated above"),
        };
        print!("{text}");
        if let Some(dir) = &out {
            if let Err(e) = std::fs::write(dir.join(format!("{name}.txt")), &text) {
                eprintln!("write failed: {e}");
                std::process::exit(1);
            }
            if let Some(c) = csv {
                if let Err(e) = std::fs::write(dir.join(format!("{name}.csv")), c) {
                    eprintln!("write failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        eprintln!("# {name} done in {:.1?}", t0.elapsed());
        println!();
    }
}

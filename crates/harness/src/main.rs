//! `mps-harness` — regenerate the paper's tables and figures.
//!
//! ```text
//! mps-harness [run] <experiment...> [--scale test|small|full] [--out DIR]
//!                   [--jobs N] [--store DIR] [--resume] [--no-store]
//!                   [--timeout SECS] [--retries N] [--profile] [--trace FILE]
//!                   [--metrics-addr HOST:PORT]
//! mps-harness trace <FILE> [--folded]
//! mps-harness trace diff <BASELINE> <CONTENDER> [--fail-on-regress PCT] [--json]
//! mps-harness runs list|show <N|last> [--ledger FILE] [--store DIR]
//! mps-harness report [--ledger FILE] [--store DIR] [--out FILE]
//! mps-harness validate [--scale test|small|full] [--jobs N] [--store DIR]
//!                      [--resume] [--no-store] [--out DIR]
//!                      [--fail-on THRESHOLDS] [--baseline FILE]
//!                      [--write-baseline FILE] [--perturb FACTOR]
//!                      [--metrics-addr HOST:PORT]
//!
//! experiments:
//!   table1 table2 table3 table4
//!   fig1 fig2 fig3 fig4 fig5 fig6 fig7
//!   overhead   — the §VII-A CPU-hours example
//!   guideline  — §VII decisions for every policy pair
//!   energy     — per-policy energy (the "why detailed simulation" motivation)
//!   ablation   — stratification parameter / allocation / clustering sweep
//!   dw         — d(w) distribution histograms (the stratification input)
//!   profile    — run the representative pipeline and print the per-phase
//!                profile report (see docs/observability.md)
//!   all        — every experiment, in paper order
//!
//! --out DIR writes each report as DIR/<name>.txt plus DIR/<name>.csv
//! where the report has tabular data.
//! --jobs N sets the worker-thread count for parallel simulation grids.
//! N = 0 means "auto": the MPS_JOBS environment variable, else all
//! available cores (the same default as omitting the flag). Results are
//! bit-identical for every N.
//! --store DIR (or MPS_STORE=DIR) persists expensive artifacts — BADCO
//! models, populations, throughput tables, traces, rendered reports — so
//! reruns and other processes load instead of recompute; experiment
//! grids additionally checkpoint per-cell progress there.
//! --resume continues a killed run from the store's checkpoints,
//! bit-identically to an uninterrupted run (requires --store/MPS_STORE).
//! --no-store ignores MPS_STORE and runs fully in memory.
//! --timeout SECS bounds each experiment's wall-clock; --retries N
//! re-attempts an experiment that panicked. A failing experiment is
//! reported and skipped; the exit code is nonzero if any failed.
//! --profile appends the profile pipeline + report after the experiments.
//! --trace FILE streams structured JSONL span/event records to FILE
//! (equivalent to MPS_OBS_OUT=FILE). Both need the `obs` feature (on by
//! default).
//! --metrics-addr HOST:PORT (or MPS_METRICS_ADDR) serves live
//! OpenMetrics-style text — counters, gauges, histogram quantiles, run
//! metadata — on a background thread for the run's lifetime; port 0
//! picks an ephemeral port (printed to stderr). Needs the `obs` feature.
//!
//! The `trace` subcommand analyzes a JSONL file offline: a span-tree
//! summary with inclusive/exclusive times (or folded flamegraph stacks
//! with --folded), and `trace diff` compares two runs, flagging span
//! wall-time and counter-total regressions beyond PCT percent growth
//! (default 10). With --fail-on-regress, regressions exit with code 3
//! for CI gating; `par.*` scheduling counters are reported but never
//! gate (they legitimately vary with --jobs). --json emits the diff as
//! machine-readable JSON instead of the table.
//!
//! The `validate` subcommand sweeps a seeded grid of workload
//! combinations through both the detailed simulator and BADCO, reports
//! per-thread IPC error, throughput-rank inversions and per-MPKI-stratum
//! error, and emits a schema-versioned JSONL report. --fail-on gates the
//! report's *drift against a pinned baseline* (`mean-abs-err=5%` allows
//! 5 % relative growth of the mean absolute IPC error;
//! `rank-inversions=3` allows 3 new inversions); breaches exit with code
//! 4 for CI, mirroring `trace diff --fail-on-regress`. The baseline is
//! `--baseline FILE`, else the one embedded for the default test-scale
//! sweep; --write-baseline FILE records a new baseline after an
//! intentional model change (see docs/validation.md). --perturb FACTOR
//! (or MPS_VALIDATE_PERTURB) scales the BADCO model coefficients to
//! prove the gate fires; --out DIR writes validate.txt/.csv/.jsonl.
//!
//! Every completed run with a store appends one record to the store's
//! run ledger (`ledger.jsonl`): config hash, kernel revision, scale,
//! per-experiment durations, store hit ratio and the final convergence
//! summary. `runs list` tabulates past runs, `runs show N` (or `last`)
//! dumps one record's fields, and `report` renders the whole ledger into
//! a self-contained HTML dashboard (inline SVG, no scripts, byte-
//! deterministic for a given ledger). The ledger is found via --ledger
//! FILE, or <store>/ledger.jsonl from --store/MPS_STORE.
//!
//! deprecated aliases (one release of grace): --threads (use --jobs),
//! --output (use --out), --store-dir (use --store).
//! ```

use mps_harness::experiments as exp;
use mps_harness::export::{Artifact, CsvExport};
use mps_harness::{run_isolated, Error, IsolateOptions, Scale, StudyContext};
use mps_store::ArtifactKey;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Loads and summarizes one JSONL trace file.
fn load_trace(path: &str) -> Result<mps_obs::analyze::TraceSummary, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let records = mps_obs::jsonl::parse_all(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok(mps_obs::analyze::summarize(&records))
}

/// The `trace` subcommand: offline analysis of `--trace` output. Returns
/// the process exit code (0 ok, 2 usage, 1 unreadable input, 3 when
/// `--fail-on-regress` found regressions).
fn trace_cli(args: &[String]) -> i32 {
    const USAGE: &str = "usage: mps-harness trace <FILE> [--folded]\n\
                         \x20      mps-harness trace diff <BASELINE> <CONTENDER> [--fail-on-regress PCT] [--json]";
    match args.first().map(String::as_str) {
        Some("diff") => {
            let mut files: Vec<&str> = Vec::new();
            let mut threshold = 10.0f64;
            let mut fail_on_regress = false;
            let mut json = false;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--fail-on-regress" => {
                        fail_on_regress = true;
                        // PCT is optional: a bare flag keeps the default.
                        if let Some(p) = args.get(i + 1).and_then(|v| v.parse::<f64>().ok()) {
                            threshold = p;
                            i += 1;
                        }
                    }
                    "--json" => json = true,
                    flag if flag.starts_with('-') => {
                        eprintln!("unknown trace diff flag '{flag}'\n{USAGE}");
                        return 2;
                    }
                    file => files.push(file),
                }
                i += 1;
            }
            let &[a, b] = files.as_slice() else {
                eprintln!("trace diff needs exactly two trace files\n{USAGE}");
                return 2;
            };
            let (before, after) = match (load_trace(a), load_trace(b)) {
                (Ok(x), Ok(y)) => (x, y),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("error: {e}");
                    return 1;
                }
            };
            let d = mps_obs::analyze::diff(&before, &after, threshold);
            if json {
                println!("{}", d.to_json());
            } else {
                print!("{}", d.render());
            }
            if fail_on_regress && !d.regressions().is_empty() {
                eprintln!(
                    "trace diff: failing on {} regression(s)",
                    d.regressions().len()
                );
                return 3;
            }
            0
        }
        Some(file) if !file.starts_with('-') => {
            let folded = args[1..].iter().any(|a| a == "--folded");
            match load_trace(file) {
                Ok(s) => {
                    if folded {
                        print!("{}", s.folded());
                    } else {
                        print!("{}", s.render());
                    }
                    0
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    1
                }
            }
        }
        _ => {
            eprintln!("{USAGE}");
            2
        }
    }
}

/// Resolves the run-ledger path from `--ledger FILE`, else `--store DIR`
/// or `MPS_STORE` joined with `ledger.jsonl`. Consumes those flags from
/// `args`, leaving the rest for the caller.
fn resolve_ledger(args: &mut Vec<String>) -> Result<mps_store::Ledger, String> {
    let mut ledger: Option<PathBuf> = None;
    let mut store: Option<PathBuf> = std::env::var_os("MPS_STORE").map(PathBuf::from);
    let mut rest = Vec::with_capacity(args.len());
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--ledger" => {
                i += 1;
                match args.get(i) {
                    Some(f) if !f.is_empty() => ledger = Some(PathBuf::from(f)),
                    _ => return Err("--ledger needs a file path".to_owned()),
                }
            }
            "--store" => {
                i += 1;
                match args.get(i) {
                    Some(d) if !d.is_empty() => store = Some(PathBuf::from(d)),
                    _ => return Err("--store needs a directory".to_owned()),
                }
            }
            other => rest.push(other.to_owned()),
        }
        i += 1;
    }
    *args = rest;
    let path = ledger
        .or_else(|| store.map(|d| d.join("ledger.jsonl")))
        .ok_or("no ledger: pass --ledger FILE, or --store DIR / MPS_STORE".to_owned())?;
    Ok(mps_store::Ledger::at_path(path))
}

/// The `runs` subcommand: list or inspect the run ledger. Returns the
/// process exit code.
fn runs_cli(args: &[String]) -> i32 {
    const USAGE: &str = "usage: mps-harness runs list|show <N|last> [--ledger FILE] [--store DIR]";
    let mut args = args.to_vec();
    let ledger = match resolve_ledger(&mut args) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return 2;
        }
    };
    let records = match ledger.read_all() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    match args.first().map(String::as_str) {
        Some("list") => {
            println!(
                "{:>4} {:>9} {:>5} {:>9} {:>6} {:>5}  experiments",
                "run", "wall s", "jobs", "hitratio", "fails", "conv"
            );
            for (i, r) in records.iter().enumerate() {
                let conv = r
                    .fields
                    .keys()
                    .filter(|k| k.starts_with("conv.") && k.ends_with(".cv"))
                    .count();
                println!(
                    "{:>4} {:>9} {:>5} {:>9} {:>6} {:>5}  {}",
                    i + 1,
                    r.f64("wall_ms")
                        .map_or_else(|| "-".to_owned(), |ms| format!("{:.1}", ms / 1000.0)),
                    r.get("jobs").unwrap_or("-"),
                    r.f64("store.hit_ratio")
                        .map_or_else(|| "-".to_owned(), |v| format!("{v:.3}")),
                    r.get("failures").unwrap_or("0"),
                    conv,
                    r.get("experiments").unwrap_or("-"),
                );
            }
            println!("{} run(s) in {}", records.len(), ledger.path().display());
            0
        }
        Some("show") => {
            let which = args.get(1).map(String::as_str).unwrap_or("last");
            let idx = if which == "last" {
                records.len().checked_sub(1)
            } else {
                which.parse::<usize>().ok().and_then(|n| n.checked_sub(1))
            };
            let Some(rec) = idx.and_then(|i| records.get(i)) else {
                eprintln!(
                    "no run '{which}' in {} ({} recorded)\n{USAGE}",
                    ledger.path().display(),
                    records.len()
                );
                return if records.is_empty() { 1 } else { 2 };
            };
            for (k, v) in &rec.fields {
                println!("{k} = {v}");
            }
            0
        }
        _ => {
            eprintln!("{USAGE}");
            2
        }
    }
}

/// The `report` subcommand: render the ledger as a self-contained HTML
/// dashboard. Returns the process exit code.
fn report_cli(args: &[String]) -> i32 {
    const USAGE: &str = "usage: mps-harness report [--ledger FILE] [--store DIR] [--out FILE]";
    let mut args = args.to_vec();
    let ledger = match resolve_ledger(&mut args) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return 2;
        }
    };
    let mut out = PathBuf::from("report.html");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(f) if !f.is_empty() => out = PathBuf::from(f),
                    _ => {
                        eprintln!("--out needs a file path\n{USAGE}");
                        return 2;
                    }
                }
            }
            other => {
                eprintln!("unknown report argument '{other}'\n{USAGE}");
                return 2;
            }
        }
        i += 1;
    }
    let records = match ledger.read_all() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let html = mps_harness::report_html::render_dashboard(&records);
    if let Err(e) = std::fs::write(&out, html) {
        eprintln!("error: write {}: {e}", out.display());
        return 1;
    }
    eprintln!(
        "report: {} run(s) from {} -> {}",
        records.len(),
        ledger.path().display(),
        out.display()
    );
    0
}

/// The `validate` subcommand: the BADCO-vs-detailed error-bound sweep
/// with optional baseline-drift gating. Returns the process exit code
/// (0 ok, 1 error, 2 usage, 4 when `--fail-on` thresholds are breached).
fn validate_cli(args: &[String]) -> i32 {
    const USAGE: &str = "usage: mps-harness validate [--scale test|small|full] [--jobs N] \
                         [--store DIR] [--resume] [--no-store] [--out DIR] \
                         [--fail-on mean-abs-err=PCT%,max-abs-err=PCT%,rank-inversions=N] \
                         [--baseline FILE] [--write-baseline FILE] [--perturb FACTOR] \
                         [--metrics-addr HOST:PORT]";
    // Validation defaults to the fast deterministic test scale — it is a
    // model-consistency gate, not a paper-scale experiment.
    let mut scale = Scale::test();
    let mut jobs: Option<usize> = None;
    let mut store: Option<PathBuf> = std::env::var_os("MPS_STORE").map(PathBuf::from);
    let mut resume = false;
    let mut out: Option<PathBuf> = None;
    let mut fail_on: Option<mps_harness::FailOn> = None;
    let mut baseline_file: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut perturb: Option<f64> = std::env::var("MPS_VALIDATE_PERTURB")
        .ok()
        .and_then(|v| v.parse().ok());
    let mut metrics_addr: Option<String> = std::env::var("MPS_METRICS_ADDR").ok();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| -> Option<&str> {
            args.get(i).map(String::as_str).filter(|v| !v.is_empty())
        };
        match args[i].as_str() {
            "--resume" => resume = true,
            "--no-store" => store = None,
            "--scale" => {
                i += 1;
                let name = need(i).unwrap_or("");
                match Scale::parse(name) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale '{name}' (use test|small|full)\n{USAGE}");
                        return 2;
                    }
                }
            }
            "--jobs" => {
                i += 1;
                match need(i).and_then(|n| n.parse::<usize>().ok()) {
                    Some(0) => jobs = None,
                    Some(n) => jobs = Some(n),
                    None => {
                        eprintln!("--jobs needs a non-negative integer (0 = auto)\n{USAGE}");
                        return 2;
                    }
                }
            }
            "--store" => {
                i += 1;
                match need(i) {
                    Some(d) => store = Some(PathBuf::from(d)),
                    None => {
                        eprintln!("--store needs a directory\n{USAGE}");
                        return 2;
                    }
                }
            }
            "--out" => {
                i += 1;
                match need(i) {
                    Some(d) => out = Some(PathBuf::from(d)),
                    None => {
                        eprintln!("--out needs a directory\n{USAGE}");
                        return 2;
                    }
                }
            }
            "--fail-on" => {
                i += 1;
                match need(i).map(mps_harness::FailOn::parse) {
                    Some(Ok(f)) => fail_on = Some(f),
                    Some(Err(e)) => {
                        eprintln!("--fail-on: {e}\n{USAGE}");
                        return 2;
                    }
                    None => {
                        eprintln!("--fail-on needs thresholds\n{USAGE}");
                        return 2;
                    }
                }
            }
            "--baseline" => {
                i += 1;
                match need(i) {
                    Some(f) => baseline_file = Some(PathBuf::from(f)),
                    None => {
                        eprintln!("--baseline needs a file path\n{USAGE}");
                        return 2;
                    }
                }
            }
            "--write-baseline" => {
                i += 1;
                match need(i) {
                    Some(f) => write_baseline = Some(PathBuf::from(f)),
                    None => {
                        eprintln!("--write-baseline needs a file path\n{USAGE}");
                        return 2;
                    }
                }
            }
            "--perturb" => {
                i += 1;
                match need(i).and_then(|v| v.parse::<f64>().ok()) {
                    Some(f) if f.is_finite() && f > 0.0 => perturb = Some(f),
                    _ => {
                        eprintln!("--perturb needs a finite positive factor\n{USAGE}");
                        return 2;
                    }
                }
            }
            "--metrics-addr" => {
                i += 1;
                match need(i) {
                    Some(a) => metrics_addr = Some(a.to_owned()),
                    None => {
                        eprintln!("--metrics-addr needs HOST:PORT\n{USAGE}");
                        return 2;
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return 0;
            }
            other => {
                eprintln!("unknown validate argument '{other}'\n{USAGE}");
                return 2;
            }
        }
        i += 1;
    }

    let jobs = mps_par::resolve_jobs(jobs);
    let mut builder = StudyContext::builder().scale(scale.clone()).jobs(jobs);
    if let Some(dir) = &store {
        builder = builder.store(dir);
    }
    let ctx = match builder.resume(resume).build() {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    mps_obs::set_meta("schema", mps_store::SCHEMA.to_string());
    mps_obs::set_meta("kernel_rev", mps_store::KERNEL_REV.to_string());
    mps_obs::set_meta("jobs", jobs.to_string());
    mps_obs::set_meta("scale", scale.spec_string());
    if let Some(addr) = &metrics_addr {
        match mps_obs::serve_metrics(addr) {
            Ok(bound) => eprintln!("metrics: serving http://{bound}/metrics"),
            Err(e) => eprintln!("note: metrics server disabled ({e})"),
        }
    }

    let opts = mps_harness::ValidateOptions {
        perturb: perturb.unwrap_or(1.0),
        ..mps_harness::ValidateOptions::default()
    };
    let t0 = Instant::now();
    let report = match mps_harness::validate::run(&ctx, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: validate failed: {e}");
            return 1;
        }
    };
    print!("{report}");
    let jsonl = report.to_jsonl();

    if let Some(dir) = &out {
        let write = |name: &str, body: &str| -> Result<(), String> {
            std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(dir.join(name), body))
                .map_err(|e| format!("write {}: {e}", dir.join(name).display()))
        };
        let res = write("validate.txt", &report.to_string())
            .and_then(|()| write("validate.csv", &report.csv()))
            .and_then(|()| write("validate.jsonl", &jsonl));
        if let Err(e) = res {
            eprintln!("error: {e}");
            return 1;
        }
    }
    if let Some(file) = &write_baseline {
        if let Err(e) = std::fs::write(file, &jsonl) {
            eprintln!("error: write baseline {}: {e}", file.display());
            return 1;
        }
        eprintln!("validate: baseline written to {}", file.display());
    }

    // One durable ledger record per sweep, like experiment runs.
    if let Some(s) = ctx.store() {
        let ledger = mps_store::Ledger::in_store(s);
        let mut rec = mps_store::RunRecord::new();
        rec.set("wall_ms", t0.elapsed().as_millis().to_string());
        rec.set("schema", mps_store::SCHEMA.to_string());
        rec.set("kernel_rev", mps_store::KERNEL_REV.to_string());
        rec.set("jobs", jobs.to_string());
        rec.set("scale", scale.spec_string());
        rec.set("experiments", "validate".to_owned());
        rec.set(
            "validate.mean_abs_err",
            format!("{}", report.summary.ipc_err.mean_abs),
        );
        rec.set(
            "validate.max_abs_err",
            format!("{}", report.summary.ipc_err.max_abs),
        );
        rec.set(
            "validate.rank_inversions",
            report.summary.rank_inversions.to_string(),
        );
        rec.set("validate.perturb", format!("{}", opts.perturb));
        if let Some(stats) = ctx.store_stats() {
            rec.set("store.hits", stats.hits.to_string());
            rec.set("store.misses", stats.misses.to_string());
            rec.set("store.puts", stats.puts.to_string());
            if stats.hits + stats.misses > 0 {
                rec.set(
                    "store.hit_ratio",
                    format!(
                        "{:.3}",
                        stats.hits as f64 / (stats.hits + stats.misses) as f64
                    ),
                );
            }
        }
        for e in mps_obs::estimators_snapshot() {
            let c = &e.stats;
            if c.count == 0 {
                continue;
            }
            rec.set(&format!("conv.{}.n", e.name), c.count.to_string());
            rec.set(&format!("conv.{}.cv", e.name), format!("{}", c.cv));
            rec.set(
                &format!("conv.{}.confidence", e.name),
                format!("{}", c.confidence),
            );
        }
        if let Err(e) = ledger.append(&rec) {
            eprintln!("warning: could not append run ledger: {e}");
        }
    }
    mps_obs::flush();

    let Some(gate) = fail_on else { return 0 };
    let baseline = match &baseline_file {
        Some(file) => match std::fs::read_to_string(file) {
            Ok(text) => match mps_harness::Baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("error: baseline {}: {e}", file.display());
                    return 2;
                }
            },
            Err(e) => {
                eprintln!("error: read baseline {}: {e}", file.display());
                return 2;
            }
        },
        None => match mps_harness::Baseline::embedded(&report.spec) {
            Some(b) => b,
            None => {
                eprintln!(
                    "error: no embedded baseline for spec '{}'; pass --baseline FILE \
                     (generate one with --write-baseline, see docs/validation.md)",
                    report.spec
                );
                return 2;
            }
        },
    };
    let breaches = gate.breaches(&report, &baseline);
    if breaches.is_empty() {
        eprintln!("validate: within baseline drift thresholds");
        return 0;
    }
    eprintln!("validate: failing on {} drift breach(es):", breaches.len());
    for b in &breaches {
        eprintln!("  {b}");
    }
    4
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "trace") {
        std::process::exit(trace_cli(&args[1..]));
    }
    if args.first().is_some_and(|a| a == "validate") {
        mps_obs::init_from_env();
        std::process::exit(validate_cli(&args[1..]));
    }
    if args.first().is_some_and(|a| a == "runs") {
        std::process::exit(runs_cli(&args[1..]));
    }
    if args.first().is_some_and(|a| a == "report") {
        std::process::exit(report_cli(&args[1..]));
    }
    let mut which: Vec<String> = Vec::new();
    let mut scale = Scale::small();
    let mut out: Option<PathBuf> = None;
    let mut profile = false;
    let mut jobs: Option<usize> = None;
    let mut store: Option<PathBuf> = std::env::var_os("MPS_STORE").map(PathBuf::from);
    let mut resume = false;
    let mut timeout: Option<Duration> = None;
    let mut retries = 0u32;
    let mut metrics_addr: Option<String> = std::env::var("MPS_METRICS_ADDR").ok();
    let mut i = 0;
    mps_obs::init_from_env();
    while i < args.len() {
        let arg = args[i].as_str();
        // Deprecated aliases keep working for one release.
        let arg = match arg {
            "--threads" => {
                eprintln!("note: --threads is deprecated, use --jobs");
                "--jobs"
            }
            "--output" => {
                eprintln!("note: --output is deprecated, use --out");
                "--out"
            }
            "--store-dir" => {
                eprintln!("note: --store-dir is deprecated, use --store");
                "--store"
            }
            other => other,
        };
        match arg {
            "--profile" => profile = true,
            "--resume" => resume = true,
            "--no-store" => store = None,
            "--jobs" => {
                i += 1;
                let n = args.get(i).map(String::as_str).unwrap_or("");
                match n.parse::<usize>() {
                    // 0 means "auto": resolve from MPS_JOBS, else all
                    // available cores — same as omitting the flag.
                    Ok(0) => jobs = None,
                    Ok(n) => jobs = Some(n),
                    Err(_) => {
                        eprintln!("--jobs needs a non-negative integer (got '{n}'; 0 = auto)");
                        std::process::exit(2);
                    }
                }
            }
            "--store" => {
                i += 1;
                let dir = args.get(i).map(String::as_str).unwrap_or("");
                if dir.is_empty() {
                    eprintln!("--store needs a directory");
                    std::process::exit(2);
                }
                store = Some(PathBuf::from(dir));
            }
            "--timeout" => {
                i += 1;
                let n = args.get(i).map(String::as_str).unwrap_or("");
                match n.parse::<u64>() {
                    Ok(secs) if secs > 0 => timeout = Some(Duration::from_secs(secs)),
                    _ => {
                        eprintln!("--timeout needs a positive number of seconds (got '{n}')");
                        std::process::exit(2);
                    }
                }
            }
            "--retries" => {
                i += 1;
                let n = args.get(i).map(String::as_str).unwrap_or("");
                match n.parse::<u32>() {
                    Ok(n) => retries = n,
                    Err(_) => {
                        eprintln!("--retries needs a non-negative integer (got '{n}')");
                        std::process::exit(2);
                    }
                }
            }
            "--trace" => {
                i += 1;
                let file = args.get(i).map(String::as_str).unwrap_or("");
                if file.is_empty() {
                    eprintln!("--trace needs a file path");
                    std::process::exit(2);
                }
                if !mps_obs::enabled() {
                    eprintln!("note: built without the `obs` feature; --trace will record nothing");
                }
                if let Err(e) = mps_obs::set_sink_path(file) {
                    eprintln!("cannot open trace file {file}: {e}");
                    std::process::exit(1);
                }
            }
            "--metrics-addr" => {
                i += 1;
                let addr = args.get(i).map(String::as_str).unwrap_or("");
                if addr.is_empty() {
                    eprintln!("--metrics-addr needs HOST:PORT (port 0 = ephemeral)");
                    std::process::exit(2);
                }
                metrics_addr = Some(addr.to_owned());
            }
            "--scale" => {
                i += 1;
                let name = args.get(i).map(String::as_str).unwrap_or("");
                scale = Scale::parse(name).unwrap_or_else(|| {
                    eprintln!("unknown scale '{name}' (use test|small|full)");
                    std::process::exit(2);
                });
            }
            "--out" => {
                i += 1;
                let dir = args.get(i).map(String::as_str).unwrap_or("");
                if dir.is_empty() {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                }
                out = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: mps-harness [run] <table1..table4|fig1..fig7|overhead|guideline|ablation|profile|all> \
                     [--scale test|small|full] [--out DIR] [--jobs N] [--store DIR] [--resume] \
                     [--no-store] [--timeout SECS] [--retries N] [--profile] [--trace FILE] \
                     [--metrics-addr HOST:PORT]\n\
                     \x20      mps-harness trace <FILE> [--folded]\n\
                     \x20      mps-harness trace diff <BASELINE> <CONTENDER> [--fail-on-regress PCT] [--json]\n\
                     \x20      mps-harness runs list|show <N|last> [--ledger FILE] [--store DIR]\n\
                     \x20      mps-harness report [--ledger FILE] [--store DIR] [--out FILE]\n\
                     \x20      mps-harness validate [--fail-on mean-abs-err=5%,rank-inversions=3] \
                     [--baseline FILE] [--write-baseline FILE] [--perturb FACTOR] (see validate --help)\n\
                     --metrics-addr (or MPS_METRICS_ADDR) serves live /metrics; \
                     MPS_HEARTBEAT_SECS tunes progress heartbeats (0 = off)\n\
                     --jobs 0 (or omitting the flag) means auto: MPS_JOBS, else all available cores\n\
                     --store DIR (or MPS_STORE=DIR) persists artifacts and checkpoints; --resume \
                     continues a killed run; --no-store overrides MPS_STORE\n\
                     deprecated: --threads (use --jobs), --output (use --out), --store-dir (use --store)"
                );
                return;
            }
            // `run` is the explicit subcommand form (`mps-harness run
            // --resume`); the bare form stays equivalent.
            "run" => {}
            other => which.push(other.to_owned()),
        }
        i += 1;
    }
    if which.is_empty() {
        which.push("all".to_owned());
    }
    let all = [
        "table1",
        "table2",
        "table3",
        "table4",
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "overhead",
        "guideline",
        "ablation",
        "energy",
        "dw",
    ];
    // Experiment names come from the static list so each can also name a
    // `phase.<experiment>` observability span (which wants 'static strs).
    let selected: Vec<&'static str> = if which.iter().any(|w| w == "all") {
        all.to_vec()
    } else {
        which
            .iter()
            .filter_map(|w| {
                if w == "profile" {
                    profile = true;
                    return None;
                }
                match all.iter().find(|a| *a == w) {
                    Some(&a) => Some(a),
                    None => {
                        eprintln!("unknown experiment '{w}'");
                        std::process::exit(2);
                    }
                }
            })
            .collect()
    };
    if let Some(dir) = &out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir:?}: {e}");
            std::process::exit(1);
        }
    }

    let jobs = mps_par::resolve_jobs(jobs);
    let mut builder = StudyContext::builder().scale(scale.clone()).jobs(jobs);
    if let Some(dir) = &store {
        builder = builder.store(dir);
    }
    let ctx = match builder.resume(resume).build() {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    // Run metadata for the /metrics `mps_run_info` line.
    mps_obs::set_meta("schema", mps_store::SCHEMA.to_string());
    mps_obs::set_meta("kernel_rev", mps_store::KERNEL_REV.to_string());
    mps_obs::set_meta("jobs", jobs.to_string());
    mps_obs::set_meta("scale", scale.spec_string());
    mps_obs::set_meta("store", store.is_some().to_string());
    mps_obs::set_meta("resume", resume.to_string());
    if let Some(addr) = &metrics_addr {
        match mps_obs::serve_metrics(addr) {
            Ok(bound) => eprintln!("metrics: serving http://{bound}/metrics"),
            Err(e) => eprintln!("note: metrics server disabled ({e})"),
        }
    }
    let heartbeat_secs = std::env::var("MPS_HEARTBEAT_SECS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(5);
    if heartbeat_secs > 0 {
        mps_harness::heartbeat::start(Duration::from_secs(heartbeat_secs));
    }
    mps_obs::event(
        "harness.start",
        &[
            ("trace_len", scale.trace_len.to_string()),
            ("pop_4core", scale.pop_4core.to_string()),
            ("confidence_samples", scale.confidence_samples.to_string()),
            ("jobs", jobs.to_string()),
            ("store", store.is_some().to_string()),
            ("resume", resume.to_string()),
        ],
    );
    let opts = IsolateOptions { timeout, retries };
    // Table III speeds feed `overhead`; behind a Mutex because the
    // isolated experiment closures are shared with a worker thread.
    let speeds: Mutex<Option<exp::SpeedReport>> = Mutex::new(None);
    let mut failures: Vec<(&'static str, Error)> = Vec::new();
    let run_t0 = Instant::now();
    let mut durations: Vec<(&'static str, u128)> = Vec::new();
    for name in selected.iter().copied() {
        let t0 = Instant::now();
        let span = mps_obs::span(name);
        mps_obs::event("harness.experiment.start", &[("name", name.to_string())]);

        // Rendered-report cache: a warm store serves the whole report
        // without touching the simulators. Table III is wall-clock speed
        // measurement — always re-measured — and `overhead` derives from
        // it, so neither is served from cache.
        let report_key = ArtifactKey::new("report", ctx.artifact_spec(&format!("exp={name}")));
        let cacheable = !matches!(name, "table3" | "overhead");
        let cached: Option<Artifact> = match (cacheable, ctx.store()) {
            (true, Some(s)) => s.get(&report_key).and_then(|bytes| {
                Artifact::from_bytes(&bytes)
                    .map_err(|e| s.quarantine_key(&report_key, &e))
                    .ok()
            }),
            _ => None,
        };

        let result: Result<(String, Option<String>), Error> = match cached {
            Some(a) => Ok((a.text, (!a.csv.is_empty()).then_some(a.csv))),
            None => run_isolated(name, opts, || match name {
                "table1" => Ok((exp::table1(), None)),
                "table2" => Ok((exp::table2(), None)),
                "table3" => {
                    let r = exp::table3(&ctx)?;
                    let pair = (r.to_string(), Some(r.csv()));
                    *speeds.lock().unwrap() = Some(r);
                    Ok(pair)
                }
                "table4" => {
                    let r = exp::table4(&ctx)?;
                    Ok((r.to_string(), Some(r.csv())))
                }
                "fig1" => {
                    let r = exp::fig1();
                    Ok((r.to_string(), Some(r.csv())))
                }
                "fig2" => {
                    let r = exp::fig2(&ctx)?;
                    Ok((r.to_string(), Some(r.csv())))
                }
                "fig3" => {
                    let r = exp::fig3(&ctx)?;
                    Ok((r.to_string(), Some(r.csv())))
                }
                "fig4" => {
                    let r = exp::fig4(&ctx)?;
                    Ok((r.to_string(), Some(r.csv())))
                }
                "fig5" => {
                    let r = exp::fig5(&ctx)?;
                    Ok((r.to_string(), Some(r.csv())))
                }
                "fig6" => {
                    let r = exp::fig6(&ctx)?;
                    Ok((r.to_string(), Some(r.csv())))
                }
                "fig7" => {
                    let r = exp::fig7(&ctx)?;
                    Ok((r.to_string(), Some(r.csv())))
                }
                "dw" => Ok((exp::dw(&ctx)?.to_string(), None)),
                "energy" => Ok((exp::energy(&ctx)?.to_string(), None)),
                "guideline" => {
                    let r = exp::guideline(&ctx)?;
                    Ok((r.to_string(), Some(r.csv())))
                }
                "ablation" => {
                    let r = exp::ablation(&ctx)?;
                    Ok((r.to_string(), Some(r.csv())))
                }
                "overhead" => {
                    let s = {
                        let cached = speeds.lock().unwrap().clone();
                        match cached {
                            Some(s) => s,
                            None => {
                                let s = exp::table3(&ctx)?;
                                *speeds.lock().unwrap() = Some(s.clone());
                                s
                            }
                        }
                    };
                    Ok((exp::overhead(&ctx, &s).to_string(), None))
                }
                _ => unreachable!("validated above"),
            })
            .inspect(|(text, csv)| {
                if cacheable {
                    if let Some(s) = ctx.store() {
                        let a = Artifact {
                            name: name.to_owned(),
                            text: text.clone(),
                            csv: csv.clone().unwrap_or_default(),
                        };
                        if let Err(e) = s.put(&report_key, &a.to_bytes()) {
                            eprintln!("warning: could not persist report {name}: {e}");
                        }
                    }
                }
            }),
        };

        let (text, csv) = match result {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("error: {name} failed: {e}");
                mps_obs::event(
                    "harness.experiment.failed",
                    &[("name", name.to_string()), ("error", e.to_string())],
                );
                failures.push((name, e));
                durations.push((name, t0.elapsed().as_millis()));
                span.finish();
                continue;
            }
        };
        print!("{text}");
        if let Some(dir) = &out {
            if let Err(e) = std::fs::write(dir.join(format!("{name}.txt")), &text) {
                eprintln!("write failed: {e}");
                std::process::exit(1);
            }
            if let Some(c) = csv {
                if let Err(e) = std::fs::write(dir.join(format!("{name}.csv")), c) {
                    eprintln!("write failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        span.finish();
        durations.push((name, t0.elapsed().as_millis()));
        mps_obs::event(
            "harness.experiment.done",
            &[
                ("name", name.to_string()),
                ("wall_ms", t0.elapsed().as_millis().to_string()),
            ],
        );
        println!();
    }

    if profile {
        match exp::profile(&ctx) {
            Ok(report) => {
                let text = report.to_string();
                print!("{text}");
                if let Some(dir) = &out {
                    if let Err(e) = std::fs::write(dir.join("profile.txt"), &text) {
                        eprintln!("write failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
            Err(e) => {
                eprintln!("error: profile failed: {e}");
                failures.push(("profile", e));
            }
        }
    }
    // Terminate the `\r` progress line (with a final summary) before any
    // closing stderr output lands mid-line.
    mps_harness::heartbeat::finish();
    if let Some(stats) = ctx.store_stats() {
        eprintln!(
            "store: {} hits, {} misses, {} puts, {} corrupt, {} evicted",
            stats.hits, stats.misses, stats.puts, stats.corrupt, stats.evicted
        );
        // The same summary as a structured record, so trace consumers
        // don't have to scrape stderr.
        mps_obs::event(
            "store.summary",
            &[
                ("hits", stats.hits.to_string()),
                ("misses", stats.misses.to_string()),
                ("puts", stats.puts.to_string()),
                ("corrupt", stats.corrupt.to_string()),
                ("evicted", stats.evicted.to_string()),
            ],
        );
    }
    // One durable ledger record per completed run (stores only: the
    // ledger lives at the store root).
    if let Some(s) = ctx.store() {
        let ledger = mps_store::Ledger::in_store(s);
        let mut rec = mps_store::RunRecord::new();
        rec.set(
            "started_at_unix",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| {
                    d.as_secs().saturating_sub(run_t0.elapsed().as_secs())
                })
                .to_string(),
        );
        rec.set("wall_ms", run_t0.elapsed().as_millis().to_string());
        rec.set("schema", mps_store::SCHEMA.to_string());
        rec.set("kernel_rev", mps_store::KERNEL_REV.to_string());
        rec.set("jobs", jobs.to_string());
        rec.set("scale", scale.spec_string());
        rec.set(
            "config_hash",
            ArtifactKey::new("run", ctx.artifact_spec("run")).hash_hex(),
        );
        rec.set("experiments", selected.join(","));
        rec.set("failures", failures.len().to_string());
        for (name, ms) in &durations {
            rec.set(&format!("exp.{name}.ms"), ms.to_string());
        }
        if let Some(stats) = ctx.store_stats() {
            rec.set("store.hits", stats.hits.to_string());
            rec.set("store.misses", stats.misses.to_string());
            rec.set("store.puts", stats.puts.to_string());
            if stats.hits + stats.misses > 0 {
                rec.set(
                    "store.hit_ratio",
                    format!(
                        "{:.3}",
                        stats.hits as f64 / (stats.hits + stats.misses) as f64
                    ),
                );
            }
        }
        for e in mps_obs::estimators_snapshot() {
            let c = &e.stats;
            if c.count == 0 {
                continue;
            }
            rec.set(&format!("conv.{}.n", e.name), c.count.to_string());
            rec.set(&format!("conv.{}.cv", e.name), format!("{}", c.cv));
            if c.required_w != usize::MAX {
                rec.set(
                    &format!("conv.{}.required_w", e.name),
                    c.required_w.to_string(),
                );
            }
            rec.set(
                &format!("conv.{}.confidence", e.name),
                format!("{}", c.confidence),
            );
        }
        if let Some(h) = mps_obs::histograms_snapshot()
            .into_iter()
            .find(|h| h.name == mps_harness::heartbeat::CELL_LATENCY_HIST)
        {
            let sparse: Vec<String> = h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, c)| format!("{i}:{c}"))
                .collect();
            if !sparse.is_empty() {
                rec.set("hist.grid.cell.latency_us", sparse.join(","));
            }
        }
        match ledger.append(&rec) {
            Ok(()) => eprintln!("ledger: run recorded in {}", ledger.path().display()),
            Err(e) => eprintln!("warning: could not append run ledger: {e}"),
        }
    }
    mps_obs::flush();
    if !failures.is_empty() {
        eprintln!("{} experiment(s) failed:", failures.len());
        for (name, e) in &failures {
            eprintln!("  {name}: {e}");
        }
        std::process::exit(1);
    }
}
